"""Grid primitives shared by the serial and parallel experiment engines.

A figure is a **grid** of simulation cells.  Each cell is a
:class:`RunSpec` — the complete value-typed description of one
simulation (workload, layout, prefetcher spec, perfect-I-cache flag,
CGHC variant, optional SimConfig override).  Engines take a list of
specs and return a :class:`GridResult`: the stats for every cell that
succeeded plus a :class:`CellFailure` per cell that did not, so one bad
cell degrades a figure instead of aborting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Failure kinds recorded on a CellFailure.
FAIL_ERROR = "error"
FAIL_TIMEOUT = "timeout"
FAIL_CRASH = "worker-crash"
FAIL_CACHE = "cache-corruption"


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell, by value (hashable, picklable, cacheable)."""

    suite: str
    layout: str
    prefetcher: tuple | None = None
    perfect: bool = False
    cghc: str = "CGHC-2K+32K"
    sim_config: object = None  # SimConfig override or None for the runner's

    def label(self):
        parts = [self.suite, self.layout]
        if self.prefetcher is not None:
            parts.append("-".join(str(p) for p in self.prefetcher))
        if self.perfect:
            parts.append("perfect")
        return "/".join(parts)


@dataclass(frozen=True)
class CellFailure:
    """Why one cell produced no stats."""

    key: object  # the RunSpec (or task label) that failed
    kind: str  # FAIL_ERROR | FAIL_TIMEOUT | FAIL_CRASH | FAIL_CACHE
    error: str
    attempts: int = 1

    def describe(self):
        key = self.key.label() if isinstance(self.key, RunSpec) else self.key
        return f"{key}: {self.kind} after {self.attempts} attempt(s): {self.error}"


class GridResult:
    """Per-cell results of one grid submission (possibly partial)."""

    def __init__(self):
        self.cells = {}  # RunSpec (or task label) -> result
        self.failures = []  # list[CellFailure]

    def set(self, key, value):
        self.cells[key] = value

    def get(self, key, default=None):
        return self.cells.get(key, default)

    def __getitem__(self, key):
        try:
            return self.cells[key]
        except KeyError:
            for failure in self.failures:
                if failure.key == key:
                    raise KeyError(failure.describe()) from None
            raise

    def __len__(self):
        return len(self.cells)

    def __contains__(self, key):
        return key in self.cells

    @property
    def ok(self):
        return not self.failures

    def failed_keys(self):
        return [failure.key for failure in self.failures]

    def failure_report(self):
        """Human-readable one-liner per failed cell."""
        return [failure.describe() for failure in self.failures]

    def raise_if_failed(self):
        if self.failures:
            from repro.errors import ReproError

            raise ReproError(
                "grid had failing cells:\n  "
                + "\n  ".join(self.failure_report())
            )
