"""Run telemetry: a JSONL journal plus live progress reporting.

Every grid submitted through the experiment engine can stream one JSON
object per line to a **run journal**.  The journal is the ground truth
for benchmarking and post-mortems: it records, per simulation cell, the
wall time, which worker process ran it, whether the durable cache hit,
and the run's ``SimStats.summary()``.

Journal record kinds (the ``event`` field):

* ``grid-start`` — ``{grid, cells, max_workers}``
* ``run`` — one cell finished:
  ``{grid, key, suite, layout, prefetcher, perfect, cghc, status,
  cache, wall_s, worker, attempt, summary | error}``
  where ``status`` is ``ok`` / ``error`` / ``timeout`` / ``crash`` and
  ``cache`` is ``hit`` / ``miss``.
* ``grid-end`` — ``{grid, ok, failed, cached, wall_s}``
* ``interval`` — one windowed time-series sample from the simulator
  observability layer (see :mod:`repro.obsv.interval`)
* ``workload-build`` — a suite was traced from scratch (cache miss),
  with the buffer pool's access statistics for the build
* ``bench`` — one ``scripts/bench_sim.py`` phase timing

All events additionally carry ``ts`` (UNIX seconds), ``pid`` (the
writer, i.e. the coordinating process), and ``schema_version`` so
readers of mixed-generation journals can dispatch on record layout.
"""

from __future__ import annotations

import json
import os
import sys
import time

#: Version stamped into every journal record by :meth:`RunJournal.write`.
JOURNAL_SCHEMA_VERSION = 1


class RunJournal:
    """Append-only JSONL journal; one instance per coordinating process.

    Safe to point several sequential grids at the same file; the
    ``grid`` field disambiguates.  Opened lazily and flushed per line so
    a crash loses at most the in-flight record.
    """

    def __init__(self, path):
        self.path = path
        self._fh = None

    def _handle(self):
        if self._fh is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def write(self, event, **fields):
        """Append one record and flush it.

        **Single-writer contract:** a journal file has exactly one
        writing ``RunJournal`` (one coordinating process) at a time.
        Worker processes never write — they return results to the
        coordinator, which journals them.  Appends from two handles
        would interleave partial lines on some platforms; nothing here
        locks the file.  Concurrent *readers* are fine (and should use
        :func:`read_journal`, which tolerates a trailing partial line
        from a live writer or a crash).
        """
        record = {"ts": round(time.time(), 3), "pid": os.getpid(),
                  "schema_version": JOURNAL_SCHEMA_VERSION, "event": event}
        record.update(fields)
        fh = self._handle()
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()
        return record

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    @staticmethod
    def read(path):
        """Parse a journal back into a list of records.

        Strict: raises on any malformed line.  Use :func:`read_journal`
        for journals that may carry truncated lines (live writer,
        crashed run, filesystem hiccup).
        """
        records = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records


def read_journal(path):
    """Parse a journal, skipping corrupt lines instead of raising.

    Returns ``(records, corrupt)`` where ``corrupt`` counts lines that
    were not valid JSON objects — typically a record truncated by a
    crash mid-``write``, which the append-only format confines to the
    end of the file (but any interior damage is skipped and counted the
    same way).
    """
    records = []
    corrupt = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                corrupt += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                corrupt += 1
    return records, corrupt


def progress_printer(stream=None):
    """A progress callback that renders one line per completed cell.

    Wire it into an engine:  ``ParallelRunner(..., progress=progress_printer())``.
    ``scripts/bench_parallel.py`` and ``scripts/run_benchmarks.sh`` use
    this for live output under long grid runs.
    """
    out = stream if stream is not None else sys.stderr

    def callback(event):
        kind = event.get("event")
        if kind == "grid-start":
            out.write(
                f"[grid {event.get('grid', '?')}] "
                f"{event['cells']} cells, "
                f"max_workers={event.get('max_workers', 1)}\n"
            )
        elif kind == "run":
            done = event.get("done", "?")
            total = event.get("cells", "?")
            status = event["status"]
            cell = event.get("label") or event.get("key", "")[:12]
            extra = (
                f"{event.get('wall_s', 0):.2f}s {event.get('cache', '')}"
                if status == "ok"
                else str(event.get("error", ""))[:80]
            )
            out.write(f"  [{done}/{total}] {cell}: {status} {extra}\n")
        elif kind == "workload-build":
            pool = event.get("buffer_pool") or {}
            out.write(
                f"[build {event.get('suite', '?')}] "
                f"scale={event.get('scale', '?')} "
                f"pool: {pool.get('hits', 0)} hits / "
                f"{pool.get('misses', 0)} misses / "
                f"{pool.get('evictions', 0)} evictions "
                f"(hit rate {pool.get('hit_rate', 0.0):.3f})\n"
            )
        elif kind == "grid-end":
            out.write(
                f"[grid {event.get('grid', '?')}] done: "
                f"{event['ok']} ok, {event['failed']} failed, "
                f"{event['cached']} cached, {event['wall_s']:.2f}s\n"
            )
        out.flush()

    return callback


def journal_grid_summary(records, grid=None):
    """Aggregate journal records into per-grid timing/cache statistics."""
    summary = {}
    for record in records:
        if record.get("event") != "run":
            continue
        name = record.get("grid", "?")
        if grid is not None and name != grid:
            continue
        bucket = summary.setdefault(
            name,
            {"runs": 0, "ok": 0, "failed": 0, "cache_hits": 0,
             "wall_s": 0.0, "workers": set()},
        )
        bucket["runs"] += 1
        bucket["wall_s"] += record.get("wall_s", 0.0)
        if record.get("status") == "ok":
            bucket["ok"] += 1
        else:
            bucket["failed"] += 1
        if record.get("cache") == "hit":
            bucket["cache_hits"] += 1
        if "worker" in record:
            bucket["workers"].add(record["worker"])
    for bucket in summary.values():
        bucket["workers"] = sorted(bucket["workers"])
    return summary
