"""Report rendering: text tables and the EXPERIMENTS.md generator."""

from __future__ import annotations

import io


def _format_value(value):
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def render_table(result, columns=None, label_header="workload"):
    """Render one ExperimentResult as a text table."""
    columns = list(columns or result.columns)
    headers = [label_header] + columns
    rows = [
        [label] + [_format_value(values.get(column, "")) for column in columns]
        for label, values in result.rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    out = io.StringIO()
    out.write("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    out.write("\n")
    out.write("  ".join("-" * w for w in widths))
    out.write("\n")
    for row in rows:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        out.write("\n")
    return out.getvalue()


def render_markdown_table(result, columns=None, label_header="workload"):
    columns = list(columns or result.columns)
    lines = ["| " + " | ".join([label_header] + columns) + " |"]
    lines.append("|" + "---|" * (len(columns) + 1))
    for label, values in result.rows:
        cells = [label] + [
            _format_value(values.get(column, "")) for column in columns
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def render_experiment(result, markdown=False, columns=None,
                      label_header="workload"):
    """Full block: title, paper claim, table, notes."""
    out = io.StringIO()
    if markdown:
        out.write(f"### {result.exp_id}: {result.title}\n\n")
        out.write(f"**Paper claim.** {result.paper_claim}\n\n")
        out.write(
            render_markdown_table(result, columns=columns,
                                  label_header=label_header)
        )
        if result.notes:
            out.write(f"\n{result.notes}\n")
    else:
        out.write(f"== {result.exp_id}: {result.title} ==\n")
        out.write(f"Paper: {result.paper_claim}\n\n")
        out.write(
            render_table(result, columns=columns, label_header=label_header)
        )
        if result.notes:
            out.write(f"\n{result.notes}\n")
    return out.getvalue()


def render_bars(result, column, width=50, label_header="workload",
                fmt="{:,.0f}"):
    """ASCII bar chart of one column — the textual analog of the paper's
    figure bars.  Bars are scaled to the column maximum."""
    values = [(label, values.get(column, 0)) for label, values in result.rows]
    if not values:
        return "(no data)\n"
    peak = max(value for _label, value in values) or 1
    label_width = max(len(label_header), *(len(l) for l, _v in values))
    out = io.StringIO()
    out.write(f"{column} by {label_header}:\n")
    for label, value in values:
        bar = "#" * max(1, round(width * value / peak)) if value else ""
        out.write(
            f"  {label.ljust(label_width)}  {bar.ljust(width)}  "
            f"{fmt.format(value)}\n"
        )
    return out.getvalue()


def render_grouped_bars(result, columns, width=40, label_header="workload",
                        fmt="{:,.0f}"):
    """Grouped ASCII bars: several columns per row label (e.g. the O5 /
    OM / NL / CGP bars of Figure 6)."""
    out = io.StringIO()
    peak = max(
        (values.get(column, 0) for _l, values in result.rows
         for column in columns),
        default=1,
    ) or 1
    column_width = max(len(c) for c in columns)
    for label, values in result.rows:
        out.write(f"{label}:\n")
        for column in columns:
            value = values.get(column, 0)
            bar = "#" * max(1, round(width * value / peak)) if value else ""
            out.write(
                f"  {column.ljust(column_width)}  {bar.ljust(width)}  "
                f"{fmt.format(value)}\n"
            )
    return out.getvalue()
