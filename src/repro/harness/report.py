"""Report rendering: text tables and the EXPERIMENTS.md generator."""

from __future__ import annotations

import io


def _format_value(value):
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def render_table(result, columns=None, label_header="workload"):
    """Render one ExperimentResult as a text table."""
    columns = list(columns or result.columns)
    headers = [label_header] + columns
    rows = [
        [label] + [_format_value(values.get(column, "")) for column in columns]
        for label, values in result.rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    out = io.StringIO()
    out.write("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    out.write("\n")
    out.write("  ".join("-" * w for w in widths))
    out.write("\n")
    for row in rows:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        out.write("\n")
    return out.getvalue()


def render_markdown_table(result, columns=None, label_header="workload"):
    columns = list(columns or result.columns)
    lines = ["| " + " | ".join([label_header] + columns) + " |"]
    lines.append("|" + "---|" * (len(columns) + 1))
    for label, values in result.rows:
        cells = [label] + [
            _format_value(values.get(column, "")) for column in columns
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def render_experiment(result, markdown=False, columns=None,
                      label_header="workload"):
    """Full block: title, paper claim, table, notes."""
    out = io.StringIO()
    if markdown:
        out.write(f"### {result.exp_id}: {result.title}\n\n")
        out.write(f"**Paper claim.** {result.paper_claim}\n\n")
        out.write(
            render_markdown_table(result, columns=columns,
                                  label_header=label_header)
        )
        if result.notes:
            out.write(f"\n{result.notes}\n")
    else:
        out.write(f"== {result.exp_id}: {result.title} ==\n")
        out.write(f"Paper: {result.paper_claim}\n\n")
        out.write(
            render_table(result, columns=columns, label_header=label_header)
        )
        if result.notes:
            out.write(f"\n{result.notes}\n")
    return out.getvalue()


def render_bars(result, column, width=50, label_header="workload",
                fmt="{:,.0f}"):
    """ASCII bar chart of one column — the textual analog of the paper's
    figure bars.  Bars are scaled to the column maximum."""
    values = [(label, values.get(column, 0)) for label, values in result.rows]
    if not values:
        return "(no data)\n"
    peak = max(value for _label, value in values) or 1
    label_width = max(len(label_header), *(len(l) for l, _v in values))
    out = io.StringIO()
    out.write(f"{column} by {label_header}:\n")
    for label, value in values:
        bar = "#" * max(1, round(width * value / peak)) if value else ""
        out.write(
            f"  {label.ljust(label_width)}  {bar.ljust(width)}  "
            f"{fmt.format(value)}\n"
        )
    return out.getvalue()


def attribution_totals(payload):
    """Sum an attribution payload's per-function counters into one dict."""
    totals = {}
    for entry in payload["functions"].values():
        for counter, value in entry.items():
            if isinstance(value, int):
                totals[counter] = totals.get(counter, 0) + value
    return totals


def render_usefulness_stack(rows, width=50):
    """Figure-7-style stacked usefulness bars, one per configuration.

    ``rows`` is ``[(label, totals)]`` where ``totals`` carries
    ``pref_hits`` / ``delayed_hits`` / ``useless`` (e.g. from
    :func:`attribution_totals`).  Each bar is one run's issued
    prefetches, split into ``#`` pref hits, ``+`` delayed hits and
    ``.`` useless, scaled to the largest run.
    """
    if not rows:
        return "(no data)\n"
    issued = {
        label: t.get("pref_hits", 0) + t.get("delayed_hits", 0)
        + t.get("useless", 0)
        for label, t in rows
    }
    peak = max(issued.values()) or 1
    label_width = max(len(label) for label, _t in rows)
    out = io.StringIO()
    out.write("prefetch usefulness (# pref hit, + delayed hit, . useless):\n")
    for label, totals in rows:
        total = issued[label]
        scale = width * total / peak
        segments = ""
        remaining = round(scale)
        for counter, char in (("pref_hits", "#"), ("delayed_hits", "+"),
                              ("useless", ".")):
            value = totals.get(counter, 0)
            length = round(scale * value / total) if total else 0
            length = min(length, remaining)
            segments += char * length
            remaining -= length
        useful = totals.get("pref_hits", 0) + totals.get("delayed_hits", 0)
        ratio = useful / total if total else 0.0
        out.write(
            f"  {label.ljust(label_width)}  {segments.ljust(width)}  "
            f"{total:,} issued, {ratio:.1%} useful\n"
        )
    return out.getvalue()


_LAYER_COLUMNS = (
    "demand_misses", "memory_fetches", "pref_hits", "delayed_hits",
    "useless", "cghc_l1_hits", "cghc_l2_hits", "cghc_misses",
)


def render_layer_markdown(payload, columns=_LAYER_COLUMNS):
    """Markdown table of per-DBMS-layer attribution counters."""
    lines = ["| layer | " + " | ".join(columns) + " |"]
    lines.append("|" + "---|" * (len(columns) + 1))
    for layer, entry in payload["layers"].items():
        cells = [layer] + [_format_value(entry.get(c, 0)) for c in columns]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def render_top_functions_markdown(payload, k=10, by="demand_misses"):
    """Markdown table of the k hottest functions by one counter."""
    ranked = sorted(
        payload["functions"].items(),
        key=lambda kv: (-kv[1].get(by, 0), int(kv[0])),
    )
    columns = ("layer", by, "pref_hits", "delayed_hits", "useless")
    lines = ["| function | " + " | ".join(columns) + " |"]
    lines.append("|" + "---|" * (len(columns) + 1))
    for fid, entry in ranked[:k]:
        if entry.get(by, 0) == 0:
            break
        name = entry.get("name") or f"fid {fid}"
        cells = [f"`{name}`", str(entry.get("layer", "?"))] + [
            _format_value(entry.get(c, 0)) for c in columns[1:]
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def render_grouped_bars(result, columns, width=40, label_header="workload",
                        fmt="{:,.0f}"):
    """Grouped ASCII bars: several columns per row label (e.g. the O5 /
    OM / NL / CGP bars of Figure 6)."""
    out = io.StringIO()
    peak = max(
        (values.get(column, 0) for _l, values in result.rows
         for column in columns),
        default=1,
    ) or 1
    column_width = max(len(c) for c in columns)
    for label, values in result.rows:
        out.write(f"{label}:\n")
        for column in columns:
            value = values.get(column, 0)
            bar = "#" * max(1, round(width * value / peak)) if value else ""
            out.write(
                f"  {column.ljust(column_width)}  {bar.ljust(width)}  "
                f"{fmt.format(value)}\n"
            )
    return out.getvalue()
