"""One driver per paper artifact (figures 4-10, §3.2/§5.4 statistics).

Every driver returns an :class:`ExperimentResult` whose rows carry the
same series the paper's figure plots, plus the paper's headline claim so
reports can show paper-vs-measured side by side.

Drivers submit their full (workload x configuration) grid through the
experiment engine (``runner.run_grid`` / ``runner.run_tasks``) instead
of simulating cell by cell, so the same driver code runs serially on a
plain :class:`~repro.harness.runner.ExperimentRunner` and fanned out
over processes on a :class:`~repro.harness.parallel.ParallelRunner`.
Failed cells never abort a figure: their rows carry whatever values
survived and the failures land in ``ExperimentResult.failures``.
"""

from __future__ import annotations

import functools

from dataclasses import dataclass, field, replace

from repro.harness.grid import RunSpec
from repro.layout import om_layout, profile_of
from repro.uarch import TABLE_1, simulate
from repro.core import CgpPrefetcher
from repro.uarch.config import cghc_variant
from repro.uarch.prefetch import NextNLinePrefetcher
from repro.workloads import cpu2000
from repro.workloads.suites import SUITE_NAMES

DB_WORKLOADS = SUITE_NAMES


@dataclass
class ExperimentResult:
    exp_id: str
    title: str
    paper_claim: str
    columns: list
    rows: list = field(default_factory=list)  # (label, {column: value})
    notes: str = ""
    failures: list = field(default_factory=list)  # failed grid cells

    def add_row(self, label, values):
        self.rows.append((label, values))

    def row(self, label):
        for row_label, values in self.rows:
            if row_label == label:
                return values
        raise KeyError(label)

    def geomean(self, column):
        """Geometric mean of one column across rows (speedup summaries)."""
        values = [v[column] for _l, v in self.rows if v.get(column)]
        if not values:
            return 0.0
        product = 1.0
        for value in values:
            product *= value
        return product ** (1.0 / len(values))


# ----------------------------------------------------------------------
# Figure 4: O5 / OM / CGP_2 / CGP_4 execution cycles
# ----------------------------------------------------------------------

FIG4_CONFIGS = [
    ("O5", "O5", None),
    ("O5+OM", "OM", None),
    ("O5+CGP_2", "O5", ("cgp", 2)),
    ("O5+CGP_4", "O5", ("cgp", 4)),
    ("O5+OM+CGP_2", "OM", ("cgp", 2)),
    ("O5+OM+CGP_4", "OM", ("cgp", 4)),
]


def fig4(runner, workloads=DB_WORKLOADS):
    result = ExperimentResult(
        "fig4",
        "Performance comparison of O5, OM and CGP (execution cycles)",
        "OM gives ~11% speedup over O5; CGP_4 alone ~40%; OM+CGP_4 ~45% "
        "over O5 and ~30% over OM; CGP alone outperforms OM alone.",
        [name for name, _l, _p in FIG4_CONFIGS]
        + [f"speedup:{name}" for name, _l, _p in FIG4_CONFIGS[1:]],
    )
    grid = runner.run_grid(
        [RunSpec(workload, layout_name, spec)
         for workload in workloads
         for _name, layout_name, spec in FIG4_CONFIGS],
        grid="fig4",
    )
    for workload in workloads:
        values = {}
        for name, layout_name, spec in FIG4_CONFIGS:
            stats = grid.get(RunSpec(workload, layout_name, spec))
            if stats is not None:
                values[name] = stats.cycles
        base = values.get("O5")
        for name, _layout, _spec in FIG4_CONFIGS[1:]:
            if base and name in values:
                values[f"speedup:{name}"] = base / values[name]
        result.add_row(workload, values)
    result.failures = grid.failure_report()
    return result


# ----------------------------------------------------------------------
# Figure 5: CGHC design space
# ----------------------------------------------------------------------

FIG5_VARIANTS = ["CGHC-1K", "CGHC-32K", "CGHC-1K+16K", "CGHC-2K+32K", "CGHC-Inf"]


def fig5(runner, workloads=DB_WORKLOADS):
    result = ExperimentResult(
        "fig5",
        "Performance of five CGHC configurations (OM + CGP_4)",
        "CGHC-1K is ~12% slower than infinite; 2K+32K and 32K are close "
        "to infinite; on wisc+tpch the infinite CGHC is slightly worse "
        "than most finite ones (more useless prefetches).",
        FIG5_VARIANTS + [f"vs_inf:{v}" for v in FIG5_VARIANTS[:-1]],
    )
    grid = runner.run_grid(
        [RunSpec(workload, "OM", ("cgp", 4), cghc=variant)
         for workload in workloads for variant in FIG5_VARIANTS],
        grid="fig5",
    )
    for workload in workloads:
        values = {}
        for variant in FIG5_VARIANTS:
            stats = grid.get(RunSpec(workload, "OM", ("cgp", 4), cghc=variant))
            if stats is not None:
                values[variant] = stats.cycles
        infinite = values.get("CGHC-Inf")
        for variant in FIG5_VARIANTS[:-1]:
            if infinite and variant in values:
                values[f"vs_inf:{variant}"] = values[variant] / infinite
        result.add_row(workload, values)
    result.failures = grid.failure_report()
    return result


# ----------------------------------------------------------------------
# Figure 6: NL vs CGP (and the perfect I-cache bound)
# ----------------------------------------------------------------------

FIG6_CONFIGS = [
    ("O5", "O5", None, False),
    ("O5+OM", "OM", None, False),
    ("OM+NL_2", "OM", ("nl", 2), False),
    ("OM+NL_4", "OM", ("nl", 4), False),
    ("OM+CGP_2", "OM", ("cgp", 2), False),
    ("OM+CGP_4", "OM", ("cgp", 4), False),
    ("perf-Icache", "OM", None, True),
]


def fig6(runner, workloads=DB_WORKLOADS):
    result = ExperimentResult(
        "fig6",
        "Performance comparison of O5, OM, NL and CGP",
        "CGP outperforms NL by ~7% and comes within ~19% of a perfect "
        "I-cache.",
        [name for name, *_rest in FIG6_CONFIGS]
        + ["speedup:CGP4_over_NL4", "gap:CGP4_to_perfect"],
    )
    grid = runner.run_grid(
        [RunSpec(workload, layout_name, spec, perfect=perfect)
         for workload in workloads
         for _name, layout_name, spec, perfect in FIG6_CONFIGS],
        grid="fig6",
    )
    for workload in workloads:
        values = {}
        for name, layout_name, spec, perfect in FIG6_CONFIGS:
            stats = grid.get(
                RunSpec(workload, layout_name, spec, perfect=perfect))
            if stats is not None:
                values[name] = stats.cycles
        if {"OM+NL_4", "OM+CGP_4", "perf-Icache"} <= values.keys():
            values["speedup:CGP4_over_NL4"] = (
                values["OM+NL_4"] / values["OM+CGP_4"]
            )
            values["gap:CGP4_to_perfect"] = (
                values["OM+CGP_4"] / values["perf-Icache"] - 1.0
            )
        result.add_row(workload, values)
    result.failures = grid.failure_report()
    return result


# ----------------------------------------------------------------------
# Figure 7: I-cache misses
# ----------------------------------------------------------------------

FIG7_CONFIGS = [
    ("O5", "O5", None),
    ("O5+OM", "OM", None),
    ("OM+NL_4", "OM", ("nl", 4)),
    ("OM+CGP_4", "OM", ("cgp", 4)),
]


def fig7(runner, workloads=DB_WORKLOADS):
    result = ExperimentResult(
        "fig7",
        "I-cache miss comparison of O5, OM, NL and CGP",
        "Relative to O5, OM removes ~21% of I-cache misses, OM+NL ~77%, "
        "OM+CGP ~87%.",
        [name for name, *_rest in FIG7_CONFIGS]
        + ["reduction:OM", "reduction:NL", "reduction:CGP"],
    )
    grid = runner.run_grid(
        [RunSpec(workload, layout_name, spec)
         for workload in workloads
         for _name, layout_name, spec in FIG7_CONFIGS],
        grid="fig7",
    )
    for workload in workloads:
        values = {}
        for name, layout_name, spec in FIG7_CONFIGS:
            stats = grid.get(RunSpec(workload, layout_name, spec))
            if stats is not None:
                values[name] = stats.demand_misses
        if len(values) == len(FIG7_CONFIGS):
            base = values["O5"] or 1
            values["reduction:OM"] = 1.0 - values["O5+OM"] / base
            values["reduction:NL"] = 1.0 - values["OM+NL_4"] / base
            values["reduction:CGP"] = 1.0 - values["OM+CGP_4"] / base
        result.add_row(workload, values)
    result.failures = grid.failure_report()
    return result


# ----------------------------------------------------------------------
# Figure 8: prefetch effectiveness (pref hits / delayed hits / useless)
# ----------------------------------------------------------------------

FIG8_CONFIGS = [
    ("NL_2", ("nl", 2)),
    ("NL_4", ("nl", 4)),
    ("CGP_2", ("cgp", 2)),
    ("CGP_4", ("cgp", 4)),
]


def fig8(runner, workloads=DB_WORKLOADS):
    result = ExperimentResult(
        "fig8",
        "Prefetch effectiveness and bus traffic (OM binaries)",
        "CGP issues ~3% more useful prefetches than NL with comparable "
        "useless prefetches; CGP_4 has fewer delayed hits than NL_4 "
        "(more timely).",
        [f"{name}:{kind}" for name, _s in FIG8_CONFIGS
         for kind in ("pref_hits", "delayed_hits", "useless", "issued")],
    )
    grid = runner.run_grid(
        [RunSpec(workload, "OM", spec)
         for workload in workloads for _name, spec in FIG8_CONFIGS],
        grid="fig8",
    )
    for workload in workloads:
        values = {}
        for name, spec in FIG8_CONFIGS:
            stats = grid.get(RunSpec(workload, "OM", spec))
            if stats is None:
                continue
            hits = delayed = useless = issued = 0
            for p in stats.prefetch.values():
                hits += p.pref_hits
                delayed += p.delayed_hits
                useless += p.useless
                issued += p.issued
            values[f"{name}:pref_hits"] = hits
            values[f"{name}:delayed_hits"] = delayed
            values[f"{name}:useless"] = useless
            values[f"{name}:issued"] = issued
        result.add_row(workload, values)
    result.failures = grid.failure_report()
    return result


# ----------------------------------------------------------------------
# Figure 9: CGP_4 prefetches split by origin (NL part vs CGHC part)
# ----------------------------------------------------------------------


def fig9(runner, workloads=DB_WORKLOADS):
    result = ExperimentResult(
        "fig9",
        "CGP_4 prefetches due to NL vs CGHC",
        "~40% of the NL-portion prefetches are useful versus ~77% of the "
        "CGHC-portion prefetches.",
        ["nl:useful_fraction", "cghc:useful_fraction",
         "nl:pref_hits", "nl:delayed_hits", "nl:useless",
         "cghc:pref_hits", "cghc:delayed_hits", "cghc:useless"],
    )
    grid = runner.run_grid(
        [RunSpec(workload, "OM", ("cgp", 4)) for workload in workloads],
        grid="fig9",
    )
    for workload in workloads:
        stats = grid.get(RunSpec(workload, "OM", ("cgp", 4)))
        if stats is None:
            result.add_row(workload, {})
            continue
        values = {}
        for origin in ("nl", "cghc"):
            p = stats.prefetch_origin(origin)
            values[f"{origin}:pref_hits"] = p.pref_hits
            values[f"{origin}:delayed_hits"] = p.delayed_hits
            values[f"{origin}:useless"] = p.useless
            accounted = p.accounted() or 1
            values[f"{origin}:useful_fraction"] = p.useful() / accounted
        result.add_row(workload, values)
    result.failures = grid.failure_report()
    return result


# ----------------------------------------------------------------------
# Figure 10: CPU2000
# ----------------------------------------------------------------------

FIG10_CONFIGS = [
    ("O5+OM", None, False),
    ("OM+NL_4", ("nl", 4), False),
    ("OM+CGP_4", ("cgp", 4), False),
    ("perf-Icache", None, True),
]


def _fig10_cell(benchmark, target_instructions, sim_config):
    """All FIG10 configs for one CPU2000 benchmark (one engine task:
    the trace and layout are built once per benchmark)."""
    image, trace = cpu2000.build_benchmark(
        benchmark, target_instructions=target_instructions
    )
    profile = profile_of(trace)
    layout = om_layout(image, profile, instr_scale=1.0)
    values = {}
    for name, spec, perfect in FIG10_CONFIGS:
        config = (
            replace(sim_config, perfect_icache=True) if perfect else sim_config
        )
        prefetcher = None
        if spec is not None and spec[0] == "nl":
            prefetcher = NextNLinePrefetcher(spec[1])
        elif spec is not None and spec[0] == "cgp":
            prefetcher = CgpPrefetcher(
                spec[1], cghc_variant("CGHC-2K+32K"), layout
            )
        stats = simulate(trace, layout, config, prefetcher=prefetcher)
        values[name] = stats.cycles
        if name == "O5+OM":
            values["miss_ratio"] = stats.miss_rate
    values["gap_to_perfect"] = values["O5+OM"] / values["perf-Icache"] - 1.0
    values["nl_vs_cgp"] = values["OM+NL_4"] / values["OM+CGP_4"]
    return values


def fig10(benchmarks=cpu2000.BENCHMARK_NAMES, target_instructions=2_000_000,
          sim_config=TABLE_1, engine=None):
    """CPU2000 figure.  ``engine`` is any runner exposing ``run_tasks``
    (the benchmarks carry their own artifacts, so they go through the
    engine's generic task lane rather than the RunSpec grid)."""
    result = ExperimentResult(
        "fig10",
        "Effectiveness of CGP on CPU2000 applications",
        "With a 32KB I-cache the gap to a perfect I-cache is ~17% for "
        "gcc, ~9% for crafty, ~2% for gap and <1% elsewhere; where misses "
        "exist NL_4 performs about as well as CGP_4.",
        [name for name, _s, _p in FIG10_CONFIGS]
        + ["miss_ratio", "gap_to_perfect", "nl_vs_cgp"],
    )
    tasks = [
        (benchmark,
         functools.partial(_fig10_cell, benchmark, target_instructions,
                           sim_config))
        for benchmark in benchmarks
    ]
    if engine is None:
        from repro.harness.runner import ExperimentRunner

        engine = ExperimentRunner(sim_config=sim_config)
    grid = engine.run_tasks(tasks, grid="fig10")
    for benchmark in benchmarks:
        values = grid.get(benchmark)
        if values is not None:
            result.add_row(benchmark, values)
    result.failures = grid.failure_report()
    return result


# ----------------------------------------------------------------------
# §5.6: run-ahead NL ablation
# ----------------------------------------------------------------------


def runahead_ablation(runner, workloads=DB_WORKLOADS, run_ahead=4):
    result = ExperimentResult(
        "runahead",
        "Run-ahead NL prefetching (rejected design, §5.6)",
        "Run-ahead NL is much worse than plain NL: with ~43 instructions "
        "between calls it prefetches too many useless lines from too far "
        "ahead.",
        ["OM+NL_4", "OM+RA-NL_4", "OM+CGP_4", "ra_slowdown_vs_nl",
         "ra_useless", "nl_useless"],
    )
    specs = {
        "OM+NL_4": ("nl", 4),
        "OM+RA-NL_4": ("ra-nl", 4, run_ahead),
        "OM+CGP_4": ("cgp", 4),
    }
    grid = runner.run_grid(
        [RunSpec(workload, "OM", spec)
         for workload in workloads for spec in specs.values()],
        grid="runahead",
    )
    for workload in workloads:
        nl = grid.get(RunSpec(workload, "OM", specs["OM+NL_4"]))
        ra = grid.get(RunSpec(workload, "OM", specs["OM+RA-NL_4"]))
        cgp = grid.get(RunSpec(workload, "OM", specs["OM+CGP_4"]))
        values = {}
        if nl is not None:
            values["OM+NL_4"] = nl.cycles
            values["nl_useless"] = sum(
                p.useless for p in nl.prefetch.values())
        if ra is not None:
            values["OM+RA-NL_4"] = ra.cycles
            values["ra_useless"] = sum(
                p.useless for p in ra.prefetch.values())
        if cgp is not None:
            values["OM+CGP_4"] = cgp.cycles
        if nl is not None and ra is not None:
            values["ra_slowdown_vs_nl"] = ra.cycles / nl.cycles
        result.add_row(workload, values)
    result.failures = grid.failure_report()
    return result


# ----------------------------------------------------------------------
# §3.2 / §5.4 statistics
# ----------------------------------------------------------------------


def workload_statistics(runner, workloads=DB_WORKLOADS):
    result = ExperimentResult(
        "stats",
        "Workload statistics (§3.2 fanout, §5.4 call spacing)",
        "80% of functions call fewer than 8 distinct functions; on "
        "average ~43 instructions execute between successive calls.",
        ["instructions", "calls", "instrs_between_calls",
         "fanout_below_8", "code_footprint_kb", "max_call_depth"],
    )
    from repro.instrument.trace import validate_trace

    for workload in workloads:
        artifacts = runner.artifacts(workload)
        trace = artifacts.trace
        instructions = trace.total_instructions()
        calls = trace.call_count()
        values = {
            "instructions": instructions,
            "calls": calls,
            "instrs_between_calls": instructions / max(1, calls),
            "fanout_below_8": artifacts.profile.fraction_with_fanout_below(8),
            "code_footprint_kb": artifacts.layouts["OM"].footprint_bytes() // 1024,
            "max_call_depth": validate_trace(trace, artifacts.image),
        }
        result.add_row(workload, values)
    return result


# ----------------------------------------------------------------------
# §4: database-size insensitivity
# ----------------------------------------------------------------------


def scale_sensitivity(runner_small, runner_large, workload="wisc-large-2"):
    result = ExperimentResult(
        "scale",
        "CGP benefit vs database size (§4)",
        "CGP improvements at a larger database size are quite similar to "
        "those at the small size.",
        ["scale", "speedup:OM+CGP_4_over_OM"],
    )
    for label, runner in (("small", runner_small), ("large", runner_large)):
        grid = runner.run_grid(
            [RunSpec(workload, "OM", None), RunSpec(workload, "OM", ("cgp", 4))],
            grid=f"scale-{label}",
        )
        om = grid.get(RunSpec(workload, "OM", None))
        cgp = grid.get(RunSpec(workload, "OM", ("cgp", 4)))
        values = {"scale": runner.scales[workload]}
        if om is not None and cgp is not None:
            values["speedup:OM+CGP_4_over_OM"] = om.cycles / cgp.cycles
        result.add_row(label, values)
        result.failures.extend(grid.failure_report())
    return result


# ----------------------------------------------------------------------
# Extension: the traced crash-recovery workload
# ----------------------------------------------------------------------


def recovery_experiment(runner, workload="recovery"):
    """CGP vs next-N-line on restart recovery (extension, not a figure).

    The ``recovery`` workload traces the storage manager's restart path
    over a deterministically crashed volume (see
    :mod:`repro.workloads.recovery`): ARIES-lite redo/undo, torn-tail
    truncation, B+-tree rebuild, verification scan.  That call graph is
    deep, data-dependent, and cold — the shape §3 argues favors
    call-graph prediction over straight-line prefetching.
    """
    result = ExperimentResult(
        "recovery",
        "CGP on the crash-recovery path (extension)",
        "Recovery's deep cold call graph should favor CGP over "
        "next-N-line even more than steady-state query execution does.",
        ["O5", "OM+NL_4", "OM+CGP_4", "speedup:CGP4_over_NL4",
         "mpki:NL_4", "mpki:CGP_4"],
    )
    specs = [
        RunSpec(workload, "O5", None),
        RunSpec(workload, "OM", ("nl", 4)),
        RunSpec(workload, "OM", ("cgp", 4)),
    ]
    grid = runner.run_grid(specs, grid="recovery")
    base = grid.get(specs[0])
    nl = grid.get(specs[1])
    cgp = grid.get(specs[2])
    values = {}
    if base is not None:
        values["O5"] = base.cycles
    if nl is not None:
        values["OM+NL_4"] = nl.cycles
        values["mpki:NL_4"] = nl.mpki
    if cgp is not None:
        values["OM+CGP_4"] = cgp.cycles
        values["mpki:CGP_4"] = cgp.mpki
    if nl is not None and cgp is not None:
        values["speedup:CGP4_over_NL4"] = nl.cycles / cgp.cycles
    result.add_row(workload, values)
    result.failures = grid.failure_report()
    return result


# ----------------------------------------------------------------------
# Extension: CGP vs NL on the storage scale-out workload
# ----------------------------------------------------------------------


def storage_scale_experiment(runner, workload="wisc-scale"):
    """CGP vs next-N-line when the database outgrows the buffer pool.

    The ``wisc-scale`` workload builds Wisconsin relations 10-100x
    larger than wisc-large through the streaming bulk loader (group
    commit, hash index on unique3), then traces only selective probes: a
    1% clustered range, a clustered point select, and a hash-index
    equality probe the planner picks from incremental statistics.  The
    traced call graph is index-descent-heavy — deep, data-dependent
    chains through btree/hash search, buffer pool, and disk — the shape
    §3 argues favors call-graph prediction, measured here at a scale
    where the heap no longer fits the pool.
    """
    result = ExperimentResult(
        "storage-scale",
        "CGP on the scaled-out storage engine (extension)",
        "Selective index probes on a 100x database keep CGP's advantage "
        "over next-N-line: the descent call chain is predictable from "
        "the call graph but not from straight-line order.",
        ["O5", "OM+NL_4", "OM+CGP_4", "speedup:CGP4_over_NL4",
         "mpki:NL_4", "mpki:CGP_4"],
    )
    specs = [
        RunSpec(workload, "O5", None),
        RunSpec(workload, "OM", ("nl", 4)),
        RunSpec(workload, "OM", ("cgp", 4)),
    ]
    grid = runner.run_grid(specs, grid="storage-scale")
    base = grid.get(specs[0])
    nl = grid.get(specs[1])
    cgp = grid.get(specs[2])
    values = {}
    if base is not None:
        values["O5"] = base.cycles
    if nl is not None:
        values["OM+NL_4"] = nl.cycles
        values["mpki:NL_4"] = nl.mpki
    if cgp is not None:
        values["OM+CGP_4"] = cgp.cycles
        values["mpki:CGP_4"] = cgp.mpki
    if nl is not None and cgp is not None:
        values["speedup:CGP4_over_NL4"] = nl.cycles / cgp.cycles
    result.add_row(workload, values)
    result.failures = grid.failure_report()
    return result


# ----------------------------------------------------------------------
# Extension: CGP vs NL on the multi-tenant serving front end
# ----------------------------------------------------------------------


def serving_experiment(runner, workload="serving"):
    """CGP vs next-N-line on the multi-tenant SQL server (extension).

    The ``serving`` workload (see :mod:`repro.workloads.serving`) runs
    the real server front end in deterministic mode: four client
    streams across three tenants -- OLTP transactions, cached point
    lookups, deadline-armed scans, a streaming bulk load --
    interleaved one scheduling quantum at a time by deficit-weighted
    dispatch.  That is the paper's own scenario (§1-2): a threaded
    server whose interleaved query streams destroy instruction
    locality, with admission control, the prepared-statement cache,
    and conflict-retry paths layered on top of query execution.
    """
    result = ExperimentResult(
        "serving",
        "CGP on the multi-tenant serving path (extension)",
        "Quantum-interleaved client streams through the server front "
        "end are the paper's motivating workload shape; CGP should "
        "keep its advantage over next-N-line with the dispatch and "
        "session layers in the loop.",
        ["O5", "OM+NL_4", "OM+CGP_4", "speedup:CGP4_over_NL4",
         "mpki:NL_4", "mpki:CGP_4"],
    )
    specs = [
        RunSpec(workload, "O5", None),
        RunSpec(workload, "OM", ("nl", 4)),
        RunSpec(workload, "OM", ("cgp", 4)),
    ]
    grid = runner.run_grid(specs, grid="serving")
    base = grid.get(specs[0])
    nl = grid.get(specs[1])
    cgp = grid.get(specs[2])
    values = {}
    if base is not None:
        values["O5"] = base.cycles
    if nl is not None:
        values["OM+NL_4"] = nl.cycles
        values["mpki:NL_4"] = nl.mpki
    if cgp is not None:
        values["OM+CGP_4"] = cgp.cycles
        values["mpki:CGP_4"] = cgp.mpki
    if nl is not None and cgp is not None:
        values["speedup:CGP4_over_NL4"] = nl.cycles / cgp.cycles
    result.add_row(workload, values)
    result.failures = grid.failure_report()
    return result
