"""Multiprogrammed CPU2000 mixes (context-switch interference).

§2 of the paper notes that database code "suffer[s] from frequent
context switches, causing significant increases in the instruction
cache miss rates".  This experiment makes the same effect visible on
the CPU2000 side: two benchmarks time-share one core via
:func:`repro.instrument.interleave.interleave`, and the combined miss
rate exceeds the sum of the solo runs because each quantum evicts the
other program's code.

The two programs' code images are concatenated into one address space
(two processes resident in one physically-indexed cache).
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.harness.experiments import ExperimentResult
from repro.instrument.codeimage import FrozenImage
from repro.instrument.interleave import interleave
from repro.instrument.trace import EXEC, SWITCH, Trace
from repro.layout import om_layout, profile_of
from repro.uarch import TABLE_1, simulate
from repro.workloads import cpu2000


def combine_images(image_a, image_b):
    """Concatenate two code images; returns (image, fid offset of b)."""
    names = [info.name for info in image_a.functions()]
    sizes = [info.size_instrs for info in image_a.functions()]
    offset = len(names)
    names += [f"p1::{info.name}" for info in image_b.functions()]
    sizes += [info.size_instrs for info in image_b.functions()]
    return FrozenImage(names, sizes), offset


def shift_fids(trace, offset):
    """Re-home a trace's function ids into the combined image.

    EXEC events carry (fid, from-offset, to-offset): only the fid moves.
    CALL/RET events carry (fid, caller fid, offset): both fids move.
    """
    out = Trace()
    for kind, a, b, c in trace.events():
        if kind == SWITCH:
            out.add_switch(a)
            continue
        out.kinds.append(kind)
        out.a.append(a + offset)
        if kind == EXEC:
            out.b.append(b)
        else:
            out.b.append(b + offset if b >= 0 else b)
        out.c.append(c)
    return out


def multiprogram_mix(name_a, name_b, quantum=20000,
                     target_instructions=1_000_000, sim_config=TABLE_1):
    """Run name_a and name_b solo and time-shared; returns an
    :class:`ExperimentResult` with miss rates for all three runs."""
    image_a, trace_a = cpu2000.build_benchmark(
        name_a, target_instructions=target_instructions
    )
    image_b, trace_b = cpu2000.build_benchmark(
        name_b, target_instructions=target_instructions
    )
    combined_image, offset = combine_images(image_a, image_b)
    mixed = interleave([trace_a, shift_fids(trace_b, offset)], quantum=quantum)

    result = ExperimentResult(
        "multiprog",
        f"Multiprogrammed mix: {name_a} + {name_b} (quantum {quantum})",
        "Context switches between programs sharing an I-cache increase "
        "miss rates beyond the solo runs (§2).",
        ["misses", "miss_rate", "mpki"],
    )

    def run(image, trace, label):
        layout = om_layout(image, profile_of(trace), instr_scale=1.0)
        stats = simulate(trace, layout, sim_config)
        result.add_row(label, {
            "misses": stats.demand_misses,
            "miss_rate": stats.miss_rate,
            "mpki": stats.mpki,
        })
        return stats

    run(image_a, trace_a, f"{name_a} solo")
    run(image_b, trace_b, f"{name_b} solo")
    run(combined_image, mixed, "time-shared")
    return result


def merge_with_background(db_trace, bg_trace, bg_tid, quantum=20000,
                          call_overhead=2):
    """Time-share a DBMS trace with a background program's trace.

    DB traces already contain SWITCH events (the cooperative scheduler
    interleaves queries inside one trace), so :func:`interleave` refuses
    them.  This merge round-robins quantum-sized bursts instead: DB
    bursts are copied verbatim — internal switches included — and each
    one is preceded by a SWITCH back to whichever DB thread was running
    when the previous burst was cut; background bursts run as thread
    ``bg_tid``, which must not collide with any DB thread id.
    """
    merged = Trace()
    cursors = [0, 0]
    db_tid = 0  # the DB thread to resume; traces open with SWITCH 0
    sources = [db_trace, bg_trace]
    while any(cursors[i] < len(sources[i]) for i in (0, 1)):
        for which in (0, 1):
            trace = sources[which]
            index = cursors[which]
            if index >= len(trace):
                continue
            merged.add_switch(db_tid if which == 0 else bg_tid)
            budget = quantum
            kinds, a, b, c = trace.kinds, trace.a, trace.b, trace.c
            while index < len(kinds) and budget > 0:
                kind = kinds[index]
                if kind == SWITCH:
                    if which == 1:
                        raise TraceError(
                            "background trace must not contain SWITCH"
                        )
                    db_tid = a[index]
                merged.kinds.append(kind)
                merged.a.append(a[index])
                merged.b.append(b[index])
                merged.c.append(c[index])
                if kind == EXEC:
                    budget -= abs(c[index] - b[index]) + 1
                elif kind != SWITCH:
                    budget -= call_overhead
                index += 1
            cursors[which] = index
    return merged


def database_mix(runner, suite="serving", benchmark="gcc", quantum=20000,
                 target_instructions=1_000_000, sim_config=TABLE_1):
    """Time-share a traced database workload with a CPU2000 program.

    The paper's §2 interference argument, with the DBMS itself in the
    mix: the multi-tenant ``serving`` trace (or any suite) shares one
    I-cache with a compute benchmark, and the combined miss rate
    exceeds both solo runs.
    """
    art = runner.artifacts(suite)
    db_image, db_trace = art.image, art.trace
    bench_image, bench_trace = cpu2000.build_benchmark(
        benchmark, target_instructions=target_instructions
    )
    combined_image, offset = combine_images(db_image, bench_image)
    db_tids = {a for kind, a, _b, _c in db_trace.events() if kind == SWITCH}
    bg_tid = max(db_tids, default=0) + 1
    mixed = merge_with_background(
        db_trace, shift_fids(bench_trace, offset), bg_tid, quantum=quantum
    )

    result = ExperimentResult(
        "database-mix",
        f"Database mix: {suite} + {benchmark} (quantum {quantum})",
        "A database serving workload time-shared with a compute "
        "program loses instruction locality at every context switch "
        "(§2) — on top of the query interleaving it already suffers.",
        ["misses", "miss_rate", "mpki"],
    )

    def run(image, trace, label):
        layout = om_layout(image, profile_of(trace), instr_scale=1.0)
        stats = simulate(trace, layout, sim_config)
        result.add_row(label, {
            "misses": stats.demand_misses,
            "miss_rate": stats.miss_rate,
            "mpki": stats.mpki,
        })
        return stats

    run(db_image, db_trace, f"{suite} solo")
    run(bench_image, bench_trace, f"{benchmark} solo")
    run(combined_image, mixed, "time-shared")
    return result
