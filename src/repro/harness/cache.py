"""Durable simulation-result cache keyed by content hashes.

The old ``ExperimentRunner`` kept results in a per-process dict keyed in
part by ``id(sim_config)`` — unsound (ids are recycled after GC, so a
*different* config could silently return a stale result) and useless
across processes.  This module replaces it with:

* :func:`config_fingerprint` — a stable SHA-256 over the *values* of the
  full configuration (workload, pipeline geometry, layout, prefetcher
  spec, CGHC variant, every ``SimConfig`` field).  Two configs with equal
  values share a key no matter where they were allocated; two configs
  differing in any field never collide.
* :class:`ResultCache` — one JSON file per fingerprint under a cache
  directory.  Writes are atomic (temp file + ``os.replace``) so parallel
  workers and concurrent harness invocations can share a directory;
  unreadable or truncated entries raise :class:`CacheCorruptionError`
  instead of returning garbage.

Cache layout on disk::

    <dir>/<fingerprint>.json
        {"version": 2,
         "config": { ...human-readable echo of the keyed values... },
         "stats": SimStats.to_dict()}
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile

from repro.errors import CacheCorruptionError, ReproError
from repro.uarch.stats import SimStats

CACHE_FORMAT_VERSION = 2

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheCorruptionError",
    "ResultCache",
    "config_fingerprint",
]


def _freeze(value):
    """Canonical JSON-able form of configuration values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__class__": type(value).__name__,
            **{
                f.name: _freeze(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(k): _freeze(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_freeze(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ReproError(f"unhashable config value {value!r}")


def config_fingerprint(**fields):
    """Stable hex digest of a configuration, keyed by field *values*."""
    frozen = _freeze(fields)
    blob = json.dumps(frozen, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Durable SimStats store, one atomic JSON file per fingerprint."""

    def __init__(self, directory):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def path(self, fingerprint):
        return os.path.join(self.directory, f"{fingerprint}.json")

    def get(self, fingerprint):
        """Return cached SimStats, or None if absent.

        Raises CacheCorruptionError if the entry exists but is
        unreadable — callers surface that as a failed cell rather than
        silently recomputing, so operators learn their cache is bad.
        """
        path = self.path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise CacheCorruptionError(
                f"unreadable cache entry {path}: {exc}"
            ) from exc
        try:
            if payload["version"] != CACHE_FORMAT_VERSION:
                raise CacheCorruptionError(
                    f"cache entry {path} has format version "
                    f"{payload.get('version')!r}, expected "
                    f"{CACHE_FORMAT_VERSION}"
                )
            return SimStats.from_dict(payload["stats"])
        except CacheCorruptionError:
            raise
        except (KeyError, TypeError) as exc:
            raise CacheCorruptionError(
                f"malformed cache entry {path}: {exc!r}"
            ) from exc

    def put(self, fingerprint, stats, config_echo=None):
        """Atomically persist one result."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "config": _freeze(config_echo) if config_echo else None,
            "stats": stats.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, fingerprint):
        return os.path.exists(self.path(fingerprint))

    def __len__(self):
        return sum(
            1 for name in os.listdir(self.directory)
            if name.endswith(".json") and not name.startswith(".tmp-")
        )
