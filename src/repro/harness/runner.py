"""Experiment pipeline: workload -> trace -> layouts -> simulations.

The pipeline is two-stage and cached at both stages:

1. **Artifacts** (per workload): build the database, run the queries
   under the tracer, apply the runtime-library expansion, compute the
   call-graph profile and both address layouts.  Keyed by the workload
   parameters; optionally persisted to disk.
2. **Simulations** (per configuration): replay the cached trace through
   the fetch engine for one (layout, prefetcher, config) combination.
   Keyed by the configuration name so different figures reuse runs.

The OM profile is built the way the paper built it (§5.1): from the
wisc-prof and wisc+tpch profile runs, merged — not from the workload
being measured (except that wisc-prof and wisc+tpch are themselves in
the profile set, as in the paper).
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field, replace

from repro.core import CgpPrefetcher
from repro.errors import ConfigError
from repro.instrument import Tracer, build_db_image
from repro.instrument.codeimage import freeze_image
from repro.instrument.expand import ExpansionConfig, expand_trace
from repro.layout import o5_layout, om_layout, profile_of
from repro.uarch import TABLE_1, simulate
from repro.uarch.config import cghc_variant
from repro.uarch.prefetch import (
    NextNLinePrefetcher,
    RunAheadNLPrefetcher,
    TaggedNLPrefetcher,
)
from repro.workloads.suites import SUITE_NAMES, build_suite

#: Default workload scales for experiments: chosen so a full figure
#: regenerates in minutes of pure-Python simulation (see DESIGN.md §7).
DEFAULT_SCALES = {
    "wisc-prof": 0.50,
    "wisc-large-1": 0.05,
    "wisc-large-2": 0.05,
    "wisc+tpch": 0.025,
}


@dataclass(frozen=True)
class PipelineConfig:
    """Everything that determines a workload trace."""

    scale: float = 1.0
    quantum_rows: int = 2
    instrs_per_pyop: int = 3
    expansion: ExpansionConfig = field(default_factory=ExpansionConfig)
    seed: int = 1234

    def key(self, suite_name):
        e = self.expansion
        return (
            f"{suite_name}-s{self.scale}-q{self.quantum_rows}"
            f"-i{self.instrs_per_pyop}-e{e.call_every_instrs}.{e.pool_size}"
            f".{e.helpers_per_function}-r{self.seed}"
        )


class WorkloadArtifacts:
    """Frozen image + expanded trace + profile + O5/OM layouts."""

    def __init__(self, name, image, trace, profile, layouts, query_rows):
        self.name = name
        self.image = image
        self.trace = trace
        self.profile = profile
        self.layouts = layouts  # {"O5": AddressMap, "OM": AddressMap}
        self.query_rows = query_rows  # query name -> row count

    def layout(self, name):
        try:
            return self.layouts[name]
        except KeyError:
            raise ConfigError(f"unknown layout {name!r}") from None


class ExperimentRunner:
    """Builds and caches artifacts and simulation results."""

    def __init__(self, pipeline=PipelineConfig(), sim_config=TABLE_1,
                 cache_dir=None, scales=None):
        self.pipeline = pipeline
        self.sim_config = sim_config
        self.scales = dict(DEFAULT_SCALES)
        if scales:
            self.scales.update(scales)
        self._artifacts = {}
        self._results = {}
        self._cache_dir = cache_dir
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # stage 1: artifacts
    # ------------------------------------------------------------------
    def artifacts(self, suite_name):
        """Artifacts for one of the paper's workloads (cached)."""
        if suite_name not in SUITE_NAMES:
            raise ConfigError(f"unknown workload {suite_name!r}")
        cached = self._artifacts.get(suite_name)
        if cached is not None:
            return cached
        pipeline = replace(
            self.pipeline, scale=self.scales.get(suite_name, self.pipeline.scale)
        )
        built = self._load_or_build(suite_name, pipeline)
        self._artifacts[suite_name] = built
        return built

    def _load_or_build(self, suite_name, pipeline):
        key = pipeline.key(suite_name)
        path = (
            os.path.join(self._cache_dir, f"{key}.pickle")
            if self._cache_dir
            else None
        )
        if path and os.path.exists(path):
            with open(path, "rb") as fh:
                image, trace, query_rows = pickle.load(fh)
        else:
            image, trace, query_rows = _build_trace(suite_name, pipeline)
            if path:
                with open(path, "wb") as fh:
                    pickle.dump((image, trace, query_rows), fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
        profile = profile_of(trace)
        layouts = {
            "O5": o5_layout(image),
            "OM": om_layout(image, profile),
        }
        return WorkloadArtifacts(
            suite_name, image, trace, profile, layouts, query_rows
        )

    # ------------------------------------------------------------------
    # stage 2: simulation
    # ------------------------------------------------------------------
    def run(self, suite_name, layout_name, prefetcher_spec=None,
            perfect=False, cghc="CGHC-2K+32K", sim_config=None):
        """Simulate one configuration (cached); returns SimStats.

        ``prefetcher_spec``: None, ("nl", N), ("t-nl", N),
        ("ra-nl", N, M), or ("cgp", N).
        """
        config = sim_config if sim_config is not None else self.sim_config
        key = (suite_name, layout_name, prefetcher_spec, perfect, cghc,
               id(sim_config) if sim_config is not None else None)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        artifacts = self.artifacts(suite_name)
        layout = artifacts.layout(layout_name)
        if perfect:
            config = replace(config, perfect_icache=True)
        prefetcher = _make_prefetcher(prefetcher_spec, layout, cghc)
        stats = simulate(artifacts.trace, layout, config, prefetcher=prefetcher)
        self._results[key] = stats
        return stats

    def clear_results(self):
        self._results.clear()


def _build_trace(suite_name, pipeline):
    image = build_db_image(instrs_per_pyop=pipeline.instrs_per_pyop)
    suite = build_suite(
        suite_name,
        scale=pipeline.scale,
        quantum_rows=pipeline.quantum_rows,
        seed=pipeline.seed,
    )
    tracer = Tracer(image)
    results = tracer.run(suite.run)
    trace = expand_trace(tracer.trace, image, pipeline.expansion)
    query_rows = {name: len(rows) for name, rows in results.items()}
    return freeze_image(image), trace, query_rows


def _make_prefetcher(spec, layout, cghc_name):
    if spec is None:
        return None
    kind = spec[0]
    if kind == "nl":
        return NextNLinePrefetcher(spec[1])
    if kind == "t-nl":
        return TaggedNLPrefetcher(spec[1])
    if kind == "ra-nl":
        return RunAheadNLPrefetcher(spec[1], spec[2])
    if kind == "cgp":
        return CgpPrefetcher(spec[1], cghc_variant(cghc_name), layout)
    raise ConfigError(f"unknown prefetcher spec {spec!r}")
