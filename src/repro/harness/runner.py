"""Experiment pipeline: workload -> trace -> layouts -> simulations.

The pipeline is two-stage and cached at both stages:

1. **Artifacts** (per workload): build the database, run the queries
   under the tracer, apply the runtime-library expansion, compute the
   call-graph profile and both address layouts.  Keyed by the workload
   parameters; optionally persisted to disk.
2. **Simulations** (per configuration): replay the cached trace through
   the fetch engine for one (layout, prefetcher, config) combination.
   Keyed by the configuration name so different figures reuse runs.

The OM profile is built the way the paper built it (§5.1): from the
wisc-prof and wisc+tpch profile runs, merged — not from the workload
being measured (except that wisc-prof and wisc+tpch are themselves in
the profile set, as in the paper).
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field, replace

from repro.core import CgpPrefetcher
from repro.errors import CacheCorruptionError, ConfigError
from repro.harness.cache import ResultCache, config_fingerprint
from repro.harness.grid import FAIL_CACHE, FAIL_ERROR, CellFailure, GridResult, RunSpec
from repro.harness.telemetry import RunJournal
from repro.instrument import Tracer, build_db_image
from repro.instrument.codeimage import freeze_image
from repro.instrument.expand import ExpansionConfig, expand_trace
from repro.instrument.trace import TRACE_FORMAT_VERSION, Trace
from repro.layout import o5_layout, om_layout, profile_of
from repro.uarch import TABLE_1, simulate
from repro.uarch.config import cghc_variant
from repro.uarch.prefetch import (
    NextNLinePrefetcher,
    RunAheadNLPrefetcher,
    TaggedNLPrefetcher,
)
from repro.workloads.suites import ALL_SUITE_NAMES, build_suite

#: Default workload scales for experiments: chosen so a full figure
#: regenerates in minutes of pure-Python simulation (see DESIGN.md §7).
DEFAULT_SCALES = {
    "wisc-prof": 0.50,
    "wisc-large-1": 0.05,
    "wisc-large-2": 0.05,
    "wisc+tpch": 0.025,
    "recovery": 1.0,
    # scale 1.0 here = 100,000-tuple relations (10x wisc-large's full
    # size): the bulk loader makes the build cheap, and the traced
    # queries are selective probes, so the default stays minutes-scale
    "wisc-scale": 1.0,
    "serving": 1.0,
}


@dataclass(frozen=True)
class PipelineConfig:
    """Everything that determines a workload trace."""

    scale: float = 1.0
    quantum_rows: int = 2
    instrs_per_pyop: int = 3
    expansion: ExpansionConfig = field(default_factory=ExpansionConfig)
    seed: int = 1234

    def key(self, suite_name):
        e = self.expansion
        return (
            f"{suite_name}-s{self.scale}-q{self.quantum_rows}"
            f"-i{self.instrs_per_pyop}-e{e.call_every_instrs}.{e.pool_size}"
            f".{e.helpers_per_function}-r{self.seed}"
        )


class WorkloadArtifacts:
    """Frozen image + expanded trace + profile + O5/OM layouts."""

    def __init__(self, name, image, trace, profile, layouts, query_rows):
        self.name = name
        self.image = image
        self.trace = trace
        self.profile = profile
        self.layouts = layouts  # {"O5": AddressMap, "OM": AddressMap}
        self.query_rows = query_rows  # query name -> row count

    def layout(self, name):
        try:
            return self.layouts[name]
        except KeyError:
            raise ConfigError(f"unknown layout {name!r}") from None


class ExperimentRunner:
    """Builds and caches artifacts and simulation results.

    Results are cached at two levels: an in-memory dict for this
    process, and (when ``cache_dir`` or ``results_dir`` is given) a
    durable on-disk :class:`~repro.harness.cache.ResultCache` shared
    across processes and invocations.  Both are keyed by a content hash
    of the *full* configuration (workload, effective pipeline, layout,
    prefetcher spec, perfect flag, CGHC variant, SimConfig) — never by
    object identity.
    """

    def __init__(self, pipeline=PipelineConfig(), sim_config=TABLE_1,
                 cache_dir=None, scales=None, results_dir=None,
                 journal=None, progress=None):
        self.pipeline = pipeline
        self.sim_config = sim_config
        self.scales = dict(DEFAULT_SCALES)
        if scales:
            self.scales.update(scales)
        self._artifacts = {}
        self._results = {}
        self._cache_dir = cache_dir
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)
        if results_dir is None and cache_dir is not None:
            results_dir = os.path.join(cache_dir, "results")
        self.result_cache = ResultCache(results_dir) if results_dir else None
        if isinstance(journal, str):
            journal = RunJournal(journal)
        self.journal = journal
        self.progress = progress

    # ------------------------------------------------------------------
    # stage 1: artifacts
    # ------------------------------------------------------------------
    def artifacts(self, suite_name):
        """Artifacts for one of the paper's workloads (cached)."""
        if suite_name not in ALL_SUITE_NAMES:
            raise ConfigError(f"unknown workload {suite_name!r}")
        cached = self._artifacts.get(suite_name)
        if cached is not None:
            return cached
        pipeline = replace(
            self.pipeline, scale=self.scales.get(suite_name, self.pipeline.scale)
        )
        built = self._load_or_build(suite_name, pipeline)
        self._artifacts[suite_name] = built
        return built

    def _load_or_build(self, suite_name, pipeline):
        # the trace rides in its own versioned binary file (integrity
        # checked on load; see Trace.save) next to a small pickle for
        # the image and rows; the format version is part of the key so
        # a format bump can never misread an old artifact
        key = f"{pipeline.key(suite_name)}-tf{TRACE_FORMAT_VERSION}"
        meta_path = trace_path = None
        if self._cache_dir:
            meta_path = os.path.join(self._cache_dir, f"{key}.meta.pickle")
            trace_path = os.path.join(self._cache_dir, f"{key}.trace")
        if (
            meta_path
            and os.path.exists(meta_path)
            and os.path.exists(trace_path)
        ):
            with open(meta_path, "rb") as fh:
                image, query_rows = pickle.load(fh)
            trace = Trace.load(trace_path)
        else:
            image, trace, query_rows, pool_stats = _build_trace(
                suite_name, pipeline
            )
            self._emit("workload-build", suite=suite_name,
                       scale=pipeline.scale, query_rows=query_rows,
                       buffer_pool=pool_stats)
            if meta_path:
                trace.save(trace_path)
                with open(meta_path, "wb") as fh:
                    pickle.dump((image, query_rows), fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
        profile = profile_of(trace)
        layouts = {
            "O5": o5_layout(image),
            "OM": om_layout(image, profile),
        }
        return WorkloadArtifacts(
            suite_name, image, trace, profile, layouts, query_rows
        )

    # ------------------------------------------------------------------
    # stage 2: simulation
    # ------------------------------------------------------------------
    def run(self, suite_name, layout_name, prefetcher_spec=None,
            perfect=False, cghc="CGHC-2K+32K", sim_config=None):
        """Simulate one configuration (cached); returns SimStats.

        ``prefetcher_spec``: None, ("nl", N), ("t-nl", N),
        ("ra-nl", N, M), or ("cgp", N).
        """
        return self.run_spec(
            RunSpec(suite_name, layout_name, prefetcher_spec, perfect,
                    cghc, sim_config)
        )

    def effective_pipeline(self, suite_name):
        """The pipeline actually used for one suite (per-suite scale)."""
        return replace(
            self.pipeline,
            scale=self.scales.get(suite_name, self.pipeline.scale),
        )

    def fingerprint(self, spec):
        """Stable content hash of everything that determines one result."""
        config = spec.sim_config if spec.sim_config is not None else self.sim_config
        return config_fingerprint(
            suite=spec.suite,
            pipeline=self.effective_pipeline(spec.suite),
            layout=spec.layout,
            prefetcher=spec.prefetcher,
            perfect=spec.perfect,
            cghc=spec.cghc,
            sim_config=config,
        )

    def lookup_cached(self, spec, fingerprint=None):
        """Cached stats for a spec, or None.  May raise
        CacheCorruptionError if the durable entry is unreadable."""
        key = fingerprint or self.fingerprint(spec)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        if self.result_cache is not None:
            stats = self.result_cache.get(key)
            if stats is not None:
                self._results[key] = stats
                return stats
        return None

    def run_spec(self, spec):
        """Simulate one RunSpec (memory + durable cache); returns SimStats."""
        key = self.fingerprint(spec)
        cached = self.lookup_cached(spec, fingerprint=key)
        if cached is not None:
            return cached
        stats = self.compute_spec(spec)
        self._results[key] = stats
        if self.result_cache is not None:
            self.result_cache.put(key, stats, config_echo={
                "suite": spec.suite, "layout": spec.layout,
                "prefetcher": spec.prefetcher, "perfect": spec.perfect,
                "cghc": spec.cghc,
                "pipeline": self.effective_pipeline(spec.suite),
            })
        return stats

    def compute_spec(self, spec):
        """Uncached simulation of one RunSpec."""
        config = spec.sim_config if spec.sim_config is not None else self.sim_config
        artifacts = self.artifacts(spec.suite)
        layout = artifacts.layout(spec.layout)
        if spec.perfect:
            config = replace(config, perfect_icache=True)
        prefetcher = _make_prefetcher(spec.prefetcher, layout, spec.cghc)
        return simulate(artifacts.trace, layout, config, prefetcher=prefetcher)

    def clear_results(self):
        self._results.clear()

    # ------------------------------------------------------------------
    # grid engine (serial reference implementation; ParallelRunner
    # overrides run_grid / run_tasks with process fan-out)
    # ------------------------------------------------------------------
    @property
    def max_workers(self):
        return 1

    def _emit(self, event, **fields):
        record = {"event": event, **fields}
        if self.journal is not None:
            record = self.journal.write(event, **fields)
        if self.progress is not None:
            self.progress(record)

    def run_grid(self, specs, grid="grid"):
        """Run every RunSpec in ``specs`` serially; never aborts the
        grid — failing cells are reported in ``GridResult.failures``."""
        specs = list(dict.fromkeys(specs))
        result = GridResult()
        started = time.perf_counter()
        cached_cells = 0
        self._emit("grid-start", grid=grid, cells=len(specs),
                   max_workers=self.max_workers)
        for done, spec in enumerate(specs, 1):
            key = self.fingerprint(spec)
            cell_started = time.perf_counter()
            try:
                hit = self.lookup_cached(spec, fingerprint=key) is not None
                stats = self.run_spec(spec)
            except CacheCorruptionError as exc:
                result.failures.append(
                    CellFailure(spec, FAIL_CACHE, str(exc)))
                self._emit("run", grid=grid, key=key, label=spec.label(),
                           status="error", cache="corrupt",
                           error=str(exc), done=done, cells=len(specs))
                continue
            except Exception as exc:  # never abort the whole figure
                result.failures.append(
                    CellFailure(spec, FAIL_ERROR,
                                f"{type(exc).__name__}: {exc}"))
                self._emit("run", grid=grid, key=key, label=spec.label(),
                           status="error",
                           error=f"{type(exc).__name__}: {exc}",
                           done=done, cells=len(specs))
                continue
            result.set(spec, stats)
            cached_cells += hit
            self._emit("run", grid=grid, key=key, label=spec.label(),
                       suite=spec.suite, layout=spec.layout,
                       prefetcher=list(spec.prefetcher or ()) or None,
                       perfect=spec.perfect, cghc=spec.cghc,
                       status="ok", cache="hit" if hit else "miss",
                       wall_s=round(time.perf_counter() - cell_started, 4),
                       worker=os.getpid(), attempt=1,
                       summary=stats.summary(), done=done, cells=len(specs))
        self._emit("grid-end", grid=grid, ok=len(result.cells),
                   failed=len(result.failures), cached=cached_cells,
                   wall_s=round(time.perf_counter() - started, 4))
        return result

    def run_tasks(self, tasks, grid="tasks"):
        """Run (label, callable) pairs serially with per-cell error
        capture; the parallel engine fans these out over processes."""
        result = GridResult()
        started = time.perf_counter()
        self._emit("grid-start", grid=grid, cells=len(tasks),
                   max_workers=self.max_workers)
        for done, (label, fn) in enumerate(tasks, 1):
            cell_started = time.perf_counter()
            try:
                value = fn()
            except Exception as exc:  # tasks are arbitrary user code
                result.failures.append(
                    CellFailure(label, FAIL_ERROR,
                                f"{type(exc).__name__}: {exc}"))
                self._emit("run", grid=grid, label=label, status="error",
                           error=f"{type(exc).__name__}: {exc}",
                           done=done, cells=len(tasks))
                continue
            result.set(label, value)
            self._emit("run", grid=grid, label=label, status="ok",
                       cache="miss",
                       wall_s=round(time.perf_counter() - cell_started, 4),
                       worker=os.getpid(), attempt=1,
                       done=done, cells=len(tasks))
        self._emit("grid-end", grid=grid, ok=len(result.cells),
                   failed=len(result.failures), cached=0,
                   wall_s=round(time.perf_counter() - started, 4))
        return result


def _build_trace(suite_name, pipeline):
    image = build_db_image(instrs_per_pyop=pipeline.instrs_per_pyop)
    suite = build_suite(
        suite_name,
        scale=pipeline.scale,
        quantum_rows=pipeline.quantum_rows,
        seed=pipeline.seed,
    )
    tracer = Tracer(image)
    results = tracer.run(suite.run)
    trace = expand_trace(tracer.trace, image, pipeline.expansion)
    query_rows = {name: len(rows) for name, rows in results.items()}
    pool_stats = suite.database.storage.pool.stats()
    return freeze_image(image), trace, query_rows, pool_stats


def _make_prefetcher(spec, layout, cghc_name):
    if spec is None:
        return None
    kind = spec[0]
    if kind == "nl":
        return NextNLinePrefetcher(spec[1])
    if kind == "t-nl":
        return TaggedNLPrefetcher(spec[1])
    if kind == "ra-nl":
        return RunAheadNLPrefetcher(spec[1], spec[2])
    if kind == "cgp":
        return CgpPrefetcher(spec[1], cghc_variant(cghc_name), layout)
    raise ConfigError(f"unknown prefetcher spec {spec!r}")
