"""Parallel experiment engine: process fan-out over simulation grids.

:class:`ParallelRunner` extends :class:`ExperimentRunner` with a
``concurrent.futures.ProcessPoolExecutor`` back end.  A figure's grid of
:class:`~repro.harness.grid.RunSpec` cells is deduplicated, resolved
against the durable result cache in the coordinating process, and the
remaining cells are fanned out over worker processes.  Each worker keeps
a per-process :class:`ExperimentRunner` so workload artifacts are built
(or loaded from the shared artifact cache) once per process, not once
per cell.

Robustness:

* **per-run timeout** — enforced inside the worker with ``SIGALRM``
  (``setitimer``), so a runaway simulation yields a reported
  ``timeout`` cell, never a hung grid;
* **worker crash** — a cell whose worker process dies (pool breakage)
  is retried once in a fresh pool, then reported as ``worker-crash``;
* **partial grids** — every failure mode ends up as a
  :class:`~repro.harness.grid.CellFailure` on the returned
  :class:`~repro.harness.grid.GridResult`; the surviving cells are
  always usable.

``max_workers=1`` is the serial degenerate case: cells run in-process,
through the very same execution path the workers use (including the
timeout and fault hooks), which is what the serial/parallel equivalence
suite pins down.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.errors import CacheCorruptionError, RunTimeoutError
from repro.harness.grid import (
    FAIL_CACHE,
    FAIL_CRASH,
    FAIL_ERROR,
    FAIL_TIMEOUT,
    CellFailure,
    GridResult,
)
from repro.harness.runner import ExperimentRunner
from repro.uarch.stats import SimStats

#: attempts per cell = 1 + _CRASH_RETRIES (crashes only; plain errors
#: and timeouts are deterministic and not retried).
_CRASH_RETRIES = 1


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: Per-worker-process runner cache: artifacts survive across cells.
_WORKER_RUNNERS = {}


def _worker_runner(pipeline, sim_config, scales, cache_dir):
    key = (pipeline, sim_config, tuple(sorted(scales.items())), cache_dir)
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = ExperimentRunner(
            pipeline=pipeline, sim_config=sim_config, scales=scales,
            cache_dir=cache_dir,
            # workers return stats to the coordinator, which owns the
            # durable cache writes — keep a single writer.
            results_dir=None,
        )
        _WORKER_RUNNERS[key] = runner
    return runner


def _raise_timeout(signum, frame):
    raise RunTimeoutError("per-run timeout expired")


class _deadline:
    """SIGALRM-based timeout; a no-op when unsupported or disabled."""

    def __init__(self, seconds):
        self.seconds = seconds
        self.armed = False

    def __enter__(self):
        if self.seconds and hasattr(signal, "SIGALRM"):
            self._previous = signal.signal(signal.SIGALRM, _raise_timeout)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
            self.armed = True
        return self

    def __exit__(self, *exc_info):
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
        return False


def _execute_cell(payload):
    """Run one RunSpec in a worker (or in-process for max_workers=1).

    Always returns a result dict — failures travel as data, not as
    exceptions, so the pool never breaks on a mere simulation error.
    """
    spec = payload["spec"]
    started = time.perf_counter()
    base = {"key": payload["key"], "worker": os.getpid()}
    try:
        with _deadline(payload["timeout"]):
            fault_hook = payload["fault_hook"]
            if fault_hook is not None:
                fault_hook(spec)
            runner = _worker_runner(
                payload["pipeline"], payload["sim_config"],
                payload["scales"], payload["cache_dir"],
            )
            stats = runner.compute_spec(spec)
    except RunTimeoutError as exc:
        base.update(status="timeout", error=str(exc),
                    wall_s=round(time.perf_counter() - started, 4))
        return base
    except Exception as exc:
        base.update(status="error",
                    error=f"{type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(limit=8),
                    wall_s=round(time.perf_counter() - started, 4))
        return base
    base.update(status="ok", stats=stats.to_dict(),
                wall_s=round(time.perf_counter() - started, 4))
    return base


def _execute_task(payload):
    """Run one opaque (label, callable) task in a worker."""
    started = time.perf_counter()
    base = {"key": payload["key"], "worker": os.getpid()}
    try:
        with _deadline(payload["timeout"]):
            fault_hook = payload["fault_hook"]
            if fault_hook is not None:
                fault_hook(payload["key"])
            value = payload["fn"]()
    except RunTimeoutError as exc:
        base.update(status="timeout", error=str(exc),
                    wall_s=round(time.perf_counter() - started, 4))
        return base
    except Exception as exc:
        base.update(status="error",
                    error=f"{type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(limit=8),
                    wall_s=round(time.perf_counter() - started, 4))
        return base
    base.update(status="ok", value=value,
                wall_s=round(time.perf_counter() - started, 4))
    return base


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------


class ParallelRunner(ExperimentRunner):
    """ExperimentRunner with a process-pool grid engine.

    Parameters beyond :class:`ExperimentRunner`'s:

    ``max_workers``
        Process fan-out.  ``1`` runs cells in-process (serial degenerate
        case) through the identical execution path.
    ``timeout``
        Per-run wall-clock budget in seconds (None = unlimited),
        enforced inside the worker.
    ``fault_hook``
        Picklable callable invoked with each spec before it runs, in the
        worker.  Exists for fault-injection tests and chaos drills.
    """

    def __init__(self, *args, max_workers=None, timeout=None,
                 fault_hook=None, **kwargs):
        super().__init__(*args, **kwargs)
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._max_workers = max_workers
        self.timeout = timeout
        self.fault_hook = fault_hook

    @property
    def max_workers(self):
        return self._max_workers

    # -- payload construction ------------------------------------------
    def _cell_payload(self, spec, key):
        return {
            "spec": spec,
            "key": key,
            "pipeline": self.pipeline,
            "sim_config": self.sim_config,
            "scales": self.scales,
            "cache_dir": self._cache_dir,
            "timeout": self.timeout,
            "fault_hook": self.fault_hook,
        }

    def _task_payload(self, label, fn):
        return {
            "key": label,
            "fn": fn,
            "timeout": self.timeout,
            "fault_hook": self.fault_hook,
        }

    # -- the engine ----------------------------------------------------
    def run_grid(self, specs, grid="grid"):
        specs = list(dict.fromkeys(specs))
        result = GridResult()
        started = time.perf_counter()
        total = len(specs)
        self._emit("grid-start", grid=grid, cells=total,
                   max_workers=self.max_workers)
        done = 0
        cached_cells = 0
        pending = []  # (spec, fingerprint) still to compute
        for spec in specs:
            key = self.fingerprint(spec)
            try:
                stats = self.lookup_cached(spec, fingerprint=key)
            except CacheCorruptionError as exc:
                done += 1
                result.failures.append(CellFailure(spec, FAIL_CACHE, str(exc)))
                self._emit_cell(grid, spec, key, done, total,
                                {"status": "error", "error": str(exc),
                                 "wall_s": 0.0, "worker": os.getpid()},
                                cache="corrupt", attempt=1)
                continue
            if stats is not None:
                done += 1
                cached_cells += 1
                result.set(spec, stats)
                self._emit_cell(grid, spec, key, done, total,
                                {"status": "ok", "wall_s": 0.0,
                                 "worker": os.getpid(),
                                 "summary": stats.summary()},
                                cache="hit", attempt=1)
                continue
            pending.append((spec, key))

        if pending and self._cache_dir:
            # stage-1 artifacts are built once here (and persisted) so
            # workers only pay a pickle load, not a full trace rebuild.
            for suite in dict.fromkeys(spec.suite for spec, _k in pending):
                self.artifacts(suite)

        def on_cell(item, outcome, attempt):
            nonlocal done
            spec, key = item
            done += 1
            status = outcome["status"]
            if status == "ok":
                stats = SimStats.from_dict(outcome["stats"])
                self._results[key] = stats
                if self.result_cache is not None:
                    self.result_cache.put(key, stats)
                result.set(spec, stats)
                outcome = dict(outcome, summary=stats.summary())
                outcome.pop("stats")
            elif status == "timeout":
                result.failures.append(
                    CellFailure(spec, FAIL_TIMEOUT, outcome["error"], attempt))
            elif status == "crash":
                result.failures.append(
                    CellFailure(spec, FAIL_CRASH, outcome["error"], attempt))
            else:
                result.failures.append(
                    CellFailure(spec, FAIL_ERROR, outcome["error"], attempt))
            self._emit_cell(grid, spec, key, done, total, outcome,
                            cache="miss", attempt=attempt)

        self._drive(pending, lambda item: self._cell_payload(*item),
                    _execute_cell, on_cell)
        self._emit("grid-end", grid=grid, ok=len(result.cells),
                   failed=len(result.failures), cached=cached_cells,
                   wall_s=round(time.perf_counter() - started, 4))
        return result

    def run_tasks(self, tasks, grid="tasks"):
        result = GridResult()
        started = time.perf_counter()
        total = len(tasks)
        self._emit("grid-start", grid=grid, cells=total,
                   max_workers=self.max_workers)
        done = 0

        def on_task(item, outcome, attempt):
            nonlocal done
            label, _fn = item
            done += 1
            status = outcome["status"]
            if status == "ok":
                result.set(label, outcome["value"])
            else:
                kind = {"timeout": FAIL_TIMEOUT, "crash": FAIL_CRASH}.get(
                    status, FAIL_ERROR)
                result.failures.append(
                    CellFailure(label, kind, outcome["error"], attempt))
            self._emit("run", grid=grid, label=label, status=status,
                       cache="miss", wall_s=outcome.get("wall_s", 0.0),
                       worker=outcome.get("worker"), attempt=attempt,
                       error=outcome.get("error"), done=done, cells=total)

        self._drive(list(tasks),
                    lambda item: self._task_payload(*item),
                    _execute_task, on_task)
        self._emit("grid-end", grid=grid, ok=len(result.cells),
                   failed=len(result.failures), cached=0,
                   wall_s=round(time.perf_counter() - started, 4))
        return result

    # -- shared submission/retry loop ----------------------------------
    def _drive(self, items, make_payload, execute, on_done):
        """Execute ``items`` with crash-retry; calls ``on_done(item,
        outcome_dict, attempt)`` exactly once per item."""
        if not items:
            return
        payloads = {id(item): make_payload(item) for item in items}

        if self.max_workers == 1:
            for item in items:
                on_done(item, execute(payloads[id(item)]), 1)
            return

        attempts = {id(item): 0 for item in items}
        queue = list(items)
        isolate = False  # after any crash, quarantine cells one per pool
        while queue:
            for item in queue:
                attempts[id(item)] += 1
            if isolate:
                # one single-worker pool per suspect cell: a poisoned
                # cell that kills its process cannot take innocent
                # cells (or the whole grid) down with it.
                batches = [[item] for item in queue]
            else:
                batches = [queue]
            crashed = []
            for batch in batches:
                crashed.extend(self._run_batch(batch, payloads, execute,
                                               on_done, attempts))
            queue = []
            for item in crashed:
                if attempts[id(item)] > _CRASH_RETRIES:
                    on_done(item,
                            {"status": "crash",
                             "error": "worker process died "
                                      f"({attempts[id(item)]} attempts)",
                             "wall_s": 0.0},
                            attempts[id(item)])
                else:
                    queue.append(item)
            isolate = True

    def _run_batch(self, batch, payloads, execute, on_done, attempts):
        """Run one batch in one pool; returns the cells that crashed
        (pool breakage makes every unfinished future suspect)."""
        executor = ProcessPoolExecutor(
            max_workers=min(self.max_workers, len(batch)))
        futures = {}
        crashed = []
        try:
            for item in batch:
                futures[executor.submit(execute, payloads[id(item)])] = item
            not_done = set(futures)
            while not_done:
                finished, not_done = wait(
                    not_done, return_when=FIRST_COMPLETED)
                for future in finished:
                    item = futures[future]
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        crashed.append(item)
                    else:
                        on_done(item, outcome, attempts[id(item)])
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
        return crashed

    # -- telemetry -----------------------------------------------------
    def _emit_cell(self, grid, spec, key, done, total, outcome, cache,
                   attempt):
        self._emit(
            "run", grid=grid, key=key, label=spec.label(),
            suite=spec.suite, layout=spec.layout,
            prefetcher=list(spec.prefetcher or ()) or None,
            perfect=spec.perfect, cghc=spec.cghc,
            status=outcome["status"], cache=cache,
            wall_s=outcome.get("wall_s", 0.0),
            worker=outcome.get("worker"), attempt=attempt,
            error=outcome.get("error"),
            summary=outcome.get("summary"),
            done=done, cells=total,
        )
