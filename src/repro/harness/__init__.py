"""Experiment harness: runners, per-figure drivers, report rendering."""

from repro.harness.cache import ResultCache, config_fingerprint
from repro.harness.experiments import (
    DB_WORKLOADS,
    ExperimentResult,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    runahead_ablation,
    scale_sensitivity,
    workload_statistics,
)
from repro.harness.grid import CellFailure, GridResult, RunSpec
from repro.harness.multiprog import multiprogram_mix
from repro.harness.parallel import ParallelRunner
from repro.harness.report import (
    render_bars,
    render_experiment,
    render_grouped_bars,
    render_table,
)
from repro.harness.runner import (
    DEFAULT_SCALES,
    ExperimentRunner,
    PipelineConfig,
    WorkloadArtifacts,
)
from repro.harness.telemetry import (
    RunJournal,
    journal_grid_summary,
    progress_printer,
)

__all__ = [
    "CellFailure",
    "DB_WORKLOADS",
    "DEFAULT_SCALES",
    "ExperimentResult",
    "ExperimentRunner",
    "GridResult",
    "ParallelRunner",
    "PipelineConfig",
    "ResultCache",
    "RunJournal",
    "RunSpec",
    "WorkloadArtifacts",
    "config_fingerprint",
    "journal_grid_summary",
    "progress_printer",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "multiprogram_mix",
    "render_bars",
    "render_experiment",
    "render_grouped_bars",
    "render_table",
    "runahead_ablation",
    "scale_sensitivity",
    "workload_statistics",
]
