"""Top-level Database facade: the full layered DBMS of Figure 1.

Query parser -> query optimizer -> query scheduler -> relational
operators -> storage manager, each as its own module, so that the traced
dynamic call graph has the layered shape the paper exploits.
"""

from __future__ import annotations

from repro.db.exec.schema import Schema
from repro.db.exec.table import Catalog, Table
from repro.db.optimizer.planner import Planner, Scope
from repro.db.optimizer.stats import analyze
from repro.db.parser import ast_nodes as ast
from repro.db.parser.parser import parse
from repro.db.scheduler import RoundRobinScheduler
from repro.db.storage.storage_manager import StorageManager
from repro.errors import PlanError


class QueryResult:
    """Rows plus column names from one executed query."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns, rows):
        self.columns = tuple(columns)
        self.rows = list(rows)

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self):
        return f"QueryResult({self.columns}, {len(self.rows)} rows)"


class Database:
    """A complete in-process database instance."""

    def __init__(self, pool_pages=512, btree_max_keys=None,
                 wal_group_size=1, wal_group_window=0, hash_buckets=None):
        kwargs = {
            "pool_pages": pool_pages,
            "wal_group_size": wal_group_size,
            "wal_group_window": wal_group_window,
        }
        if btree_max_keys is not None:
            kwargs["btree_max_keys"] = btree_max_keys
        if hash_buckets is not None:
            kwargs["hash_buckets"] = hash_buckets
        self.storage = StorageManager(**kwargs)
        self.catalog = Catalog()

    # ------------------------------------------------------------------
    # DDL / loading
    # ------------------------------------------------------------------
    def create_table(self, name, columns):
        """Create a table from ``(name, type_spec)`` column pairs."""
        table = Table(name, Schema(columns), self.storage)
        self.catalog.register(table)
        return table

    def load_rows(self, table_name, rows):
        """Bulk-insert ``rows`` in one transaction."""
        table = self.catalog.table(table_name)
        with self.storage.begin() as txn:
            return table.bulk_load(txn, rows)

    def create_index(self, table_name, column, clustered=False, kind="btree"):
        """Create an index (``"btree"`` or ``"hash"``) and backfill it."""
        return self.catalog.table(table_name).create_index(
            column, clustered=clustered, kind=kind
        )

    def analyze_table(self, table_name):
        """Collect optimizer statistics for one table."""
        table = self.catalog.table(table_name)
        with self.storage.begin() as txn:
            table.stats = analyze(table, txn)
        return table.stats

    def analyze_all(self):
        for name in self.catalog.table_names():
            self.analyze_table(name)

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def plan(self, sql, txn=None, hints=None):
        """Parse + optimize a SELECT; returns a PhysicalPlan."""
        stmt = parse(sql)
        if not isinstance(stmt, ast.SelectStmt):
            raise PlanError("plan() takes a SELECT; use execute() for DML")
        if txn is None:
            txn = self.storage.begin()
        planner = Planner(self.catalog, self.storage, txn)
        return planner.plan(stmt, hints=hints)

    def execute(self, sql, hints=None):
        """Run one statement to completion; returns a :class:`QueryResult`.

        SELECT returns its rows; INSERT/UPDATE/DELETE return a single
        ``(rows_affected,)`` row.
        """
        stmt = parse(sql)
        txn = self.storage.begin()
        try:
            if isinstance(stmt, ast.SelectStmt):
                planner = Planner(self.catalog, self.storage, txn)
                plan = planner.plan(stmt, hints=hints)
                rows = list(plan.rows())
                txn.commit()
                return QueryResult(plan.columns, rows)
            if isinstance(stmt, ast.InsertStmt):
                affected = self._execute_insert(txn, stmt)
            elif isinstance(stmt, ast.UpdateStmt):
                affected = self._execute_update(txn, stmt)
            elif isinstance(stmt, ast.DeleteStmt):
                affected = self._execute_delete(txn, stmt)
            elif isinstance(stmt, ast.CreateTableStmt):
                self.create_table(stmt.table, stmt.columns)
                txn.commit()
                return QueryResult(("status",), [(f"created table {stmt.table}",)])
            elif isinstance(stmt, ast.CreateIndexStmt):
                self.create_index(stmt.table, stmt.column,
                                  clustered=stmt.clustered)
                txn.commit()
                return QueryResult(
                    ("status",),
                    [(f"created index on {stmt.table}.{stmt.column}",)],
                )
            elif isinstance(stmt, ast.DropTableStmt):
                self.catalog.table(stmt.table)  # raises if unknown
                self.catalog.drop(stmt.table)
                txn.commit()
                return QueryResult(("status",), [(f"dropped table {stmt.table}",)])
            else:
                raise PlanError(f"unsupported statement {type(stmt).__name__}")
            txn.commit()
            return QueryResult(("rows_affected",), [(affected,)])
        except BaseException:
            if txn.is_active:
                txn.abort()
            raise

    # ------------------------------------------------------------------
    # DML execution
    # ------------------------------------------------------------------
    def _execute_insert(self, txn, stmt):
        table = self.catalog.table(stmt.table)
        schema = table.schema
        if stmt.columns:
            if sorted(stmt.columns) != sorted(schema.names):
                raise PlanError(
                    "INSERT must provide every column (no NULL support); "
                    f"expected {schema.names}"
                )
            order = [stmt.columns.index(name) for name in schema.names]
        else:
            order = None
        planner = Planner(self.catalog, self.storage, txn)
        empty_scope = Scope()
        count = 0
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(schema):
                raise PlanError(
                    f"INSERT row has {len(row_exprs)} values, table has "
                    f"{len(schema)} columns"
                )
            values = tuple(
                planner.bind(expr, empty_scope).eval(()) for expr in row_exprs
            )
            if order is not None:
                values = tuple(values[i] for i in order)
            table.insert(txn, values)
            count += 1
        return count

    def _match_rows(self, txn, table, where, planner):
        scope = Scope()
        scope.extend(table.name, table.schema.names)
        predicate = None if where is None else planner.bind(where, scope)
        return [
            (rid, row)
            for rid, row in table.scan(txn)
            if predicate is None or predicate.eval(row)
        ]

    def _execute_update(self, txn, stmt):
        table = self.catalog.table(stmt.table)
        planner = Planner(self.catalog, self.storage, txn)
        scope = Scope()
        scope.extend(table.name, table.schema.names)
        assignments = [
            (table.schema.index_of(column), planner.bind(expr, scope))
            for column, expr in stmt.assignments
        ]
        matches = self._match_rows(txn, table, stmt.where, planner)
        for rid, row in matches:
            new_row = list(row)
            for position, expr in assignments:
                new_row[position] = expr.eval(row)
            table.update(txn, rid, tuple(new_row))
        return len(matches)

    def _execute_delete(self, txn, stmt):
        table = self.catalog.table(stmt.table)
        planner = Planner(self.catalog, self.storage, txn)
        matches = self._match_rows(txn, table, stmt.where, planner)
        for rid, _row in matches:
            table.delete(txn, rid)
        return len(matches)

    def explain(self, sql, hints=None):
        """Plan the query and return its textual plan tree."""
        txn = self.storage.begin()
        try:
            return self.plan(sql, txn=txn, hints=hints).explain()
        finally:
            if txn.is_active:
                txn.commit()

    def run_concurrent(self, queries, quantum_rows=16, hints=None):
        """Run many queries concurrently (the paper's workload mode).

        ``queries`` is a list of (name, sql).  Returns dict name -> rows.
        """
        hints = hints or {}
        txn = self.storage.begin()
        try:
            plans = [
                (name, self.plan(sql, txn=txn, hints=hints.get(name)))
                for name, sql in queries
            ]
            scheduler = RoundRobinScheduler(quantum_rows=quantum_rows)
            results = scheduler.run(plans)
            txn.commit()
            return results
        except BaseException:
            if txn.is_active:
                txn.abort()
            raise
