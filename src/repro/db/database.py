"""Top-level Database facade: the full layered DBMS of Figure 1.

Query parser -> query optimizer -> query scheduler -> relational
operators -> storage manager, each as its own module, so that the traced
dynamic call graph has the layered shape the paper exploits.
"""

from __future__ import annotations

from repro.db.exec.schema import Schema
from repro.db.exec.table import Catalog, Table
from repro.db.optimizer.planner import Planner, Scope
from repro.db.optimizer.stats import analyze
from repro.db.parser import ast_nodes as ast
from repro.db.parser.parser import parse
from repro.db.scheduler import RoundRobinScheduler
from repro.db.storage.storage_manager import StorageManager
from repro.errors import PlanError


class QueryResult:
    """Rows plus column names from one executed query."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns, rows):
        self.columns = tuple(columns)
        self.rows = list(rows)

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self):
        return f"QueryResult({self.columns}, {len(self.rows)} rows)"


class Database:
    """A complete in-process database instance."""

    def __init__(self, pool_pages=512, btree_max_keys=None,
                 wal_group_size=1, wal_group_window=0, hash_buckets=None):
        kwargs = {
            "pool_pages": pool_pages,
            "wal_group_size": wal_group_size,
            "wal_group_window": wal_group_window,
        }
        if btree_max_keys is not None:
            kwargs["btree_max_keys"] = btree_max_keys
        if hash_buckets is not None:
            kwargs["hash_buckets"] = hash_buckets
        self.storage = StorageManager(**kwargs)
        self.catalog = Catalog()

    # ------------------------------------------------------------------
    # DDL / loading
    # ------------------------------------------------------------------
    def create_table(self, name, columns):
        """Create a table from ``(name, type_spec)`` column pairs."""
        table = Table(name, Schema(columns), self.storage)
        self.catalog.register(table)
        return table

    def load_rows(self, table_name, rows):
        """Bulk-insert ``rows`` in one transaction."""
        table = self.catalog.table(table_name)
        with self.storage.begin() as txn:
            return table.bulk_load(txn, rows)

    def create_index(self, table_name, column, clustered=False, kind="btree"):
        """Create an index (``"btree"`` or ``"hash"``) and backfill it."""
        return self.catalog.table(table_name).create_index(
            column, clustered=clustered, kind=kind
        )

    def analyze_table(self, table_name):
        """Collect optimizer statistics for one table."""
        table = self.catalog.table(table_name)
        with self.storage.begin() as txn:
            table.stats = analyze(table, txn)
        return table.stats

    def analyze_all(self):
        for name in self.catalog.table_names():
            self.analyze_table(name)

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def plan(self, sql, txn=None, hints=None):
        """Parse + optimize a SELECT; returns a PhysicalPlan."""
        stmt = parse(sql)
        if not isinstance(stmt, ast.SelectStmt):
            raise PlanError("plan() takes a SELECT; use execute() for DML")
        if txn is None:
            txn = self.storage.begin()
        return self.plan_statement(stmt, txn, hints=hints)

    def plan_statement(self, stmt, txn, hints=None):
        """Optimize an already-parsed SELECT inside ``txn``.

        The server's prepared-statement path: the parse is cached per
        session, but plans bind to a transaction and are rebuilt per
        execution.
        """
        if not isinstance(stmt, ast.SelectStmt):
            raise PlanError("plan_statement() takes a parsed SELECT")
        planner = Planner(self.catalog, self.storage, txn)
        return planner.plan(stmt, hints=hints)

    def execute(self, sql, hints=None):
        """Run one statement to completion; returns a :class:`QueryResult`.

        SELECT returns its rows; INSERT/UPDATE/DELETE return a single
        ``(rows_affected,)`` row.
        """
        return self.execute_statement(parse(sql), hints=hints)

    def execute_statement(self, stmt, hints=None, txn=None):
        """Execute one parsed statement; returns a :class:`QueryResult`.

        With ``txn=None`` (the default) the statement autocommits in a
        fresh transaction.  With a caller-provided ``txn`` the statement
        runs inside it and the caller owns commit/abort — the server's
        session-transaction path.  On an exception the statement's own
        transaction is aborted; a caller-provided one is left to the
        caller (the server aborts it and surfaces a retryable error).
        """
        owns_txn = txn is None
        if owns_txn:
            txn = self.storage.begin()
        try:
            result = self._apply_statement(stmt, txn, hints)
            if owns_txn:
                txn.commit()
            return result
        except BaseException:
            if owns_txn and txn.is_active:
                txn.abort()
            raise

    def _apply_statement(self, stmt, txn, hints=None):
        """Dispatch one parsed statement inside ``txn`` (no commit)."""
        if isinstance(stmt, ast.SelectStmt):
            plan = self.plan_statement(stmt, txn, hints=hints)
            return QueryResult(plan.columns, list(plan.rows()))
        if isinstance(stmt, ast.InsertStmt):
            affected = self._execute_insert(txn, stmt)
        elif isinstance(stmt, ast.UpdateStmt):
            affected = self._execute_update(txn, stmt)
        elif isinstance(stmt, ast.DeleteStmt):
            affected = self._execute_delete(txn, stmt)
        elif isinstance(stmt, ast.CreateTableStmt):
            self.create_table(stmt.table, stmt.columns)
            return QueryResult(("status",), [(f"created table {stmt.table}",)])
        elif isinstance(stmt, ast.CreateIndexStmt):
            self.create_index(stmt.table, stmt.column,
                              clustered=stmt.clustered)
            return QueryResult(
                ("status",),
                [(f"created index on {stmt.table}.{stmt.column}",)],
            )
        elif isinstance(stmt, ast.DropTableStmt):
            self.catalog.table(stmt.table)  # raises if unknown
            self.catalog.drop(stmt.table)
            return QueryResult(("status",), [(f"dropped table {stmt.table}",)])
        else:
            raise PlanError(f"unsupported statement {type(stmt).__name__}")
        return QueryResult(("rows_affected",), [(affected,)])

    # ------------------------------------------------------------------
    # DML execution
    # ------------------------------------------------------------------
    def _execute_insert(self, txn, stmt):
        table = self.catalog.table(stmt.table)
        schema = table.schema
        if stmt.columns:
            if sorted(stmt.columns) != sorted(schema.names):
                raise PlanError(
                    "INSERT must provide every column (no NULL support); "
                    f"expected {schema.names}"
                )
            order = [stmt.columns.index(name) for name in schema.names]
        else:
            order = None
        planner = Planner(self.catalog, self.storage, txn)
        empty_scope = Scope()
        count = 0
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(schema):
                raise PlanError(
                    f"INSERT row has {len(row_exprs)} values, table has "
                    f"{len(schema)} columns"
                )
            values = tuple(
                planner.bind(expr, empty_scope).eval(()) for expr in row_exprs
            )
            if order is not None:
                values = tuple(values[i] for i in order)
            table.insert(txn, values)
            count += 1
        return count

    def _match_rows(self, txn, table, where, planner):
        scope = Scope()
        scope.extend(table.name, table.schema.names)
        predicate = None if where is None else planner.bind(where, scope)
        return [
            (rid, row)
            for rid, row in table.scan(txn)
            if predicate is None or predicate.eval(row)
        ]

    def _execute_update(self, txn, stmt):
        table = self.catalog.table(stmt.table)
        planner = Planner(self.catalog, self.storage, txn)
        scope = Scope()
        scope.extend(table.name, table.schema.names)
        assignments = [
            (table.schema.index_of(column), planner.bind(expr, scope))
            for column, expr in stmt.assignments
        ]
        matches = self._match_rows(txn, table, stmt.where, planner)
        for rid, row in matches:
            new_row = list(row)
            for position, expr in assignments:
                new_row[position] = expr.eval(row)
            table.update(txn, rid, tuple(new_row))
        return len(matches)

    def _execute_delete(self, txn, stmt):
        table = self.catalog.table(stmt.table)
        planner = Planner(self.catalog, self.storage, txn)
        matches = self._match_rows(txn, table, stmt.where, planner)
        for rid, _row in matches:
            table.delete(txn, rid)
        return len(matches)

    def explain(self, sql, hints=None):
        """Plan the query and return its textual plan tree."""
        txn = self.storage.begin()
        try:
            return self.plan(sql, txn=txn, hints=hints).explain()
        finally:
            if txn.is_active:
                txn.commit()

    def run_concurrent(self, queries, quantum_rows=16, hints=None):
        """Run many queries concurrently (the paper's workload mode).

        ``queries`` is a list of (name, sql).  Returns dict name -> rows.
        """
        hints = hints or {}
        txn = self.storage.begin()
        try:
            plans = [
                (name, self.plan(sql, txn=txn, hints=hints.get(name)))
                for name, sql in queries
            ]
            scheduler = RoundRobinScheduler(quantum_rows=quantum_rows)
            results = scheduler.run(plans)
            txn.commit()
            return results
        except BaseException:
            if txn.is_active:
                txn.abort()
            raise
