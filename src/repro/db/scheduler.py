"""The query scheduler: concurrent execution of multiple query plans.

The paper runs each query of a workload as a separate thread in the
database server; the resulting interleaving of different queries' code is
a large part of why DBMS I-cache behaviour is so poor.  We reproduce the
interleaving deterministically with cooperative round-robin scheduling:
each *ready* query runs for a quantum of ``quantum_rows`` output tuples,
then the next query runs, until all queries finish.

The scheduler sits exactly where Figure 1 places it: above the optimizer
output (physical plans), below nothing — it drives operator ``next()``
calls directly.
"""

from __future__ import annotations

from repro.errors import ExecutionError


class ScheduledQuery:
    """Bookkeeping for one query being driven by the scheduler."""

    __slots__ = ("name", "plan", "rows", "finished", "error")

    def __init__(self, name, plan):
        self.name = name
        self.plan = plan
        self.rows = []
        self.finished = False
        self.error = None


class RoundRobinScheduler:
    """Runs a set of physical plans concurrently, a quantum at a time."""

    def __init__(self, quantum_rows=16):
        if quantum_rows <= 0:
            raise ExecutionError("quantum must be positive")
        self._quantum = quantum_rows

    def run(self, plans):
        """Execute ``plans`` (list of (name, PhysicalPlan)) concurrently.

        Returns a dict name -> list of result rows.  A failure in one
        query aborts the whole batch (closing every open plan).
        """
        queries = [ScheduledQuery(name, plan) for name, plan in plans]
        for query in queries:
            query.plan.root.open()
        try:
            active = list(queries)
            while active:
                still_active = []
                for query in active:
                    if self._run_quantum(query):
                        still_active.append(query)
                active = still_active
        finally:
            for query in queries:
                if not query.finished:
                    query.plan.root.close()
        return {query.name: query.rows for query in queries}

    def _run_quantum(self, query):
        """Advance one query by one quantum; False when it finished."""
        root = query.plan.root
        for _ in range(self._quantum):
            row = root.next()
            if row is None:
                root.close()
                query.finished = True
                return False
            query.rows.append(row)
        return True
