"""The query scheduler: concurrent execution of multiple query plans.

The paper runs each query of a workload as a separate thread in the
database server; the resulting interleaving of different queries' code is
a large part of why DBMS I-cache behaviour is so poor.  We reproduce the
interleaving deterministically with cooperative round-robin scheduling:
each *ready* query runs for a quantum of ``quantum_rows`` output tuples,
then the next query runs, until all queries finish.

The scheduler sits exactly where Figure 1 places it: above the optimizer
output (physical plans), below nothing — it drives operator ``next()``
calls directly.
"""

from __future__ import annotations

from repro.db.storage.faults import CrashPoint
from repro.errors import ExecutionError


class ScheduledQuery:
    """Bookkeeping for one query being driven by the scheduler."""

    __slots__ = ("name", "plan", "rows", "finished", "error",
                 "close_error", "_closed")

    def __init__(self, name, plan):
        self.name = name
        self.plan = plan
        self.rows = []
        self.finished = False
        #: the exception that stopped this query, if any
        self.error = None
        #: the exception raised while closing the plan, if any
        self.close_error = None
        self._closed = False

    def close(self):
        """Close the plan exactly once; later calls are no-ops.

        A raising ``close()`` is recorded on ``close_error`` instead of
        propagating: the scheduler's cleanup loop must reach every
        sibling plan, and a close-time failure in one query must not
        leak the pins and locks of the rest.  A simulated process death
        (:class:`CrashPoint`) still propagates — nothing survives a
        crash, so there is nothing left to clean up.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.plan.root.close()
        except CrashPoint:
            raise
        except Exception as exc:
            self.close_error = exc


class RoundRobinScheduler:
    """Runs a set of physical plans concurrently, a quantum at a time."""

    def __init__(self, quantum_rows=16):
        if quantum_rows <= 0:
            raise ExecutionError("quantum must be positive")
        self._quantum = quantum_rows

    def run(self, plans, raise_on_error=True):
        """Execute ``plans`` (list of (name, PhysicalPlan)) concurrently.

        Returns a dict name -> list of result rows.  By default a failure
        in one query aborts the whole batch (closing every open plan and
        re-raising).  With ``raise_on_error=False`` the failure is
        isolated: it is recorded on the :class:`ScheduledQuery`'s
        ``error``, that plan alone is closed, and the remaining queries
        keep running to completion; the failed query contributes the rows
        it produced before dying.  Inspect per-query outcomes via the
        returned scheduler state in tests or re-raise from ``error``.
        """
        queries = [ScheduledQuery(name, plan) for name, plan in plans]
        self.last_queries = queries
        for query in queries:
            query.plan.root.open()
        try:
            active = list(queries)
            while active:
                still_active = []
                for query in active:
                    try:
                        advancing = self._run_quantum(query)
                    except Exception as exc:
                        query.error = exc
                        query.close()
                        if raise_on_error:
                            raise
                        continue
                    if advancing:
                        still_active.append(query)
                active = still_active
        finally:
            for query in queries:
                query.close()
        return {query.name: query.rows for query in queries}

    def _run_quantum(self, query):
        """Advance one query by one quantum; False when it finished."""
        root = query.plan.root
        for _ in range(self._quantum):
            row = root.next()
            if row is None:
                query.finished = True
                query.close()
                return False
            query.rows.append(row)
        return True
