"""An interactive SQL shell over the embedded database.

Run:  python -m repro.db.shell

Meta-commands (anything not starting with ``.`` is SQL):

* ``.help``                         — this list
* ``.tables``                       — list tables with row counts
* ``.schema <table>``               — columns, types, indexes
* ``.create <table> <col:type>...`` — create a table (types: int, float, strN)
* ``.index <table> <column>``       — create a B+-tree index
* ``.analyze``                      — collect optimizer statistics
* ``.explain <sql>``                — show the physical plan
* ``.demo``                         — load a small demo dataset
* ``.stats``                        — buffer-pool / WAL / lock / server counters
* ``.quit``                         — exit

The module separates command processing (:class:`ShellSession`, fully
testable) from the REPL loop.
"""

from __future__ import annotations

from repro.db import Database
from repro.errors import ReproError

_HELP = __doc__.split("Meta-commands", 1)[1]


def format_result(result, max_rows=50):
    """Render a QueryResult as an aligned text table."""
    rows = [
        tuple(
            f"{value:.4f}".rstrip("0").rstrip(".")
            if isinstance(value, float) else str(value)
            for value in row
        )
        for row in result.rows[:max_rows]
    ]
    headers = [str(c) for c in result.columns]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows) - max_rows} more rows)")
    lines.append(f"({len(result.rows)} row{'s' if len(result.rows) != 1 else ''})")
    return "\n".join(lines)


def parse_column_spec(spec):
    """Parse ``name:type`` where type is int, float, or strN."""
    name, _, kind = spec.partition(":")
    if not name or not kind:
        raise ReproError(f"bad column spec {spec!r}; use name:type")
    kind = kind.lower()
    if kind == "int":
        return name, "int"
    if kind == "float":
        return name, "float"
    if kind.startswith("str"):
        width = int(kind[3:]) if kind[3:] else 16
        return name, ("str", width)
    raise ReproError(f"unknown type {kind!r}; use int, float, or strN")


class ShellSession:
    """Processes one line at a time; returns output text."""

    def __init__(self, db=None, server=None):
        self.db = db if db is not None else Database(pool_pages=2048)
        #: optional repro.db.server.SqlServer whose admission/shed
        #: counters .stats should surface alongside the storage ones
        self.server = server
        self.done = False

    def process(self, line):
        line = line.strip()
        if not line:
            return ""
        try:
            if line.startswith("."):
                return self._meta(line)
            return format_result(self.db.execute(line))
        except ReproError as exc:
            return f"error: {exc}"

    def _meta(self, line):
        command, _, rest = line.partition(" ")
        rest = rest.strip()
        if command in (".quit", ".exit"):
            self.done = True
            return "bye"
        if command == ".help":
            return "Meta-commands" + _HELP
        if command == ".tables":
            names = self.db.catalog.table_names()
            if not names:
                return "(no tables)"
            return "\n".join(
                f"{name}  ({self.db.catalog.table(name).row_count} rows)"
                for name in names
            )
        if command == ".schema":
            table = self.db.catalog.table(rest)
            lines = [
                f"{name}: {spec if isinstance(spec, str) else f'str({spec[1]})'}"
                for name, spec in table.schema.columns
            ]
            for index in table.indexes.values():
                kind = "clustered" if index.clustered else "secondary"
                lines.append(f"index {index.name} ({kind})")
            return "\n".join(lines)
        if command == ".create":
            parts = rest.split()
            if len(parts) < 2:
                return "usage: .create <table> <col:type> ..."
            columns = [parse_column_spec(spec) for spec in parts[1:]]
            self.db.create_table(parts[0], columns)
            return f"created table {parts[0]}"
        if command == ".index":
            parts = rest.split()
            if len(parts) != 2:
                return "usage: .index <table> <column>"
            self.db.create_index(parts[0], parts[1])
            return f"created index on {parts[0]}.{parts[1]}"
        if command == ".analyze":
            self.db.analyze_all()
            return "statistics collected"
        if command == ".explain":
            return self.db.explain(rest)
        if command == ".demo":
            return self._load_demo()
        if command == ".stats":
            return self._stats()
        return f"unknown command {command}; try .help"

    def _stats(self):
        """Render storage + (when connected) server counters."""
        storage = self.db.storage
        pool = storage.pool.stats()
        log = storage.log
        lines = ["buffer pool:"]
        lines.extend(
            f"  {key}: {pool[key]:.3f}" if key == "hit_rate"
            else f"  {key}: {pool[key]}"
            for key in ("capacity", "resident", "hits", "misses",
                        "evictions", "pin_waits", "disk_retries",
                        "backoff_ticks", "hit_rate")
        )
        lines.append("wal:")
        lines.append(f"  forces: {log.forces}")
        lines.append(f"  group_forces: {log.group_forces}")
        lines.append(f"  flushed_lsn: {log.flushed_lsn}")
        locks = storage.locks
        lines.append("locks:")
        lines.append(f"  grants: {locks.grants}")
        lines.append(f"  conflicts: {locks.conflicts}")
        lines.append(f"  locked_resources: {locks.locked_resource_count}")
        lines.append(f"  txn_restarts: {storage.txn_restarts}")
        if self.server is not None:
            stats = self.server.stats()
            lines.append("server:")
            for key in ("admitted", "shed", "completed", "failed",
                        "retries", "quanta", "deadline_cancels",
                        "active_sessions"):
                lines.append(f"  {key}: {stats[key]}")
            for name, tenant in stats["tenants"].items():
                lines.append(
                    f"  tenant {name}: weight={tenant['weight']} "
                    f"admitted={tenant['admitted']} shed={tenant['shed']} "
                    f"completed={tenant['completed']} "
                    f"quanta={tenant['quanta']}"
                )
        return "\n".join(lines)

    def _load_demo(self):
        if self.db.catalog.has_table("emp"):
            return "demo already loaded"
        self.db.create_table(
            "dept", [("dno", "int"), ("dname", ("str", 16))]
        )
        self.db.create_table(
            "emp",
            [("eno", "int"), ("name", ("str", 16)), ("dno", "int"),
             ("salary", "float")],
        )
        self.db.load_rows("dept", [(1, "storage"), (2, "optimizer"),
                                   (3, "parser")])
        self.db.load_rows(
            "emp",
            [(i, f"emp{i:03d}", 1 + i % 3, 50_000.0 + 997.0 * (i % 13))
             for i in range(120)],
        )
        self.db.create_index("emp", "eno", clustered=True)
        self.db.analyze_all()
        return ("loaded demo tables dept(3) and emp(120); try:\n"
                "  SELECT dname, count(*), avg(salary) FROM emp, dept "
                "WHERE emp.dno = dept.dno GROUP BY dname")


def main():
    session = ShellSession()
    print("repro SQL shell — .help for commands, .demo for sample data")
    while not session.done:
        try:
            line = input("sql> ")
        except (EOFError, KeyboardInterrupt):
            print()
            break
        output = session.process(line)
        if output:
            print(output)


if __name__ == "__main__":
    main()
