"""Tables: heap file + schema + secondary B+-tree indexes."""

from __future__ import annotations

from repro.errors import CatalogError, ExecutionError


class Index:
    """A B+-tree index over one integer column of a table."""

    __slots__ = ("name", "column", "tree", "clustered")

    def __init__(self, name, column, tree, clustered=False):
        self.name = name
        self.column = column
        self.tree = tree
        self.clustered = clustered


class Table:
    """A named relation stored in a heap file.

    Inserting through the table keeps all registered indexes consistent.
    """

    def __init__(self, name, schema, storage):
        self.name = name.lower()
        self.schema = schema
        self.codec = schema.make_codec()
        self._storage = storage
        self.file_id = storage.create_file(self.codec.record_size)
        self.indexes = {}  # column name -> Index
        self.row_count = 0

    # ------------------------------------------------------------------
    # data manipulation
    # ------------------------------------------------------------------
    def insert(self, txn, values):
        """Insert one tuple; returns its rid."""
        raw = self.codec.encode(values)
        rid = self._storage.create_rec(txn, self.file_id, raw)
        for index in self.indexes.values():
            key = values[self.schema.index_of(index.column)]
            self._storage.index_insert(txn, index.name, key, rid)
        self.row_count += 1
        return rid

    def bulk_load(self, txn, rows):
        """Insert many tuples; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(txn, values)
            count += 1
        return count

    def delete(self, txn, rid):
        """Delete the tuple at ``rid``, maintaining indexes."""
        raw = self._storage.delete_rec(txn, self.file_id, rid)
        values = self.codec.decode(raw)
        for index in self.indexes.values():
            key = values[self.schema.index_of(index.column)]
            self._storage.index_delete(txn, index.name, key, rid)
        self.row_count -= 1
        return values

    def update(self, txn, rid, values):
        """Overwrite the tuple at ``rid``, maintaining indexes."""
        raw = self.codec.encode(values)
        old_raw = self._storage.update_rec(txn, self.file_id, rid, raw)
        old_values = self.codec.decode(old_raw)
        for index in self.indexes.values():
            pos = self.schema.index_of(index.column)
            if old_values[pos] != values[pos]:
                self._storage.index_delete(txn, index.name, old_values[pos], rid)
                self._storage.index_insert(txn, index.name, values[pos], rid)
        return old_values

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def scan(self, txn):
        """Yield ``(rid, tuple)`` for every row."""
        for rid, raw in self._storage.scan_file(txn, self.file_id):
            yield rid, self.codec.decode(raw)

    def fetch(self, txn, rid):
        """Return the tuple at ``rid``."""
        return self.codec.decode(self._storage.read_rec(txn, self.file_id, rid))

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    def create_index(self, column, clustered=False, txn=None):
        """Build a B+-tree index on an integer ``column``.

        Existing rows are loaded into the new index immediately.
        """
        column = column.lower()
        if column in self.indexes:
            raise CatalogError(f"index on {self.name}.{column} already exists")
        spec = self.schema.type_of(column)
        if spec != "int":
            raise ExecutionError(f"only int columns can be indexed, not {spec}")
        tree = self._storage.create_index(f"{self.name}.{column}")
        index = Index(f"{self.name}.{column}", column, tree, clustered=clustered)
        pos = self.schema.index_of(column)
        if txn is None:
            txn = self._storage.begin()
            own_txn = True
        else:
            own_txn = False
        try:
            # logged backfill: the entries must be in the WAL so a crash
            # after the build can rebuild the index from the log
            for rid, values in self.scan(txn):
                self._storage.index_insert(txn, index.name, values[pos], rid)
        finally:
            if own_txn:
                txn.commit()
        self.indexes[column] = index
        return index

    def index_on(self, column):
        return self.indexes.get(column.lower())

    @property
    def page_count(self):
        return self._storage.file_page_count(self.file_id)


class Catalog:
    """The set of tables known to the database, plus basic statistics."""

    def __init__(self):
        self._tables = {}

    def register(self, table):
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name):
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name):
        return name.lower() in self._tables

    def drop(self, name):
        self._tables.pop(name.lower(), None)

    def table_names(self):
        return sorted(self._tables)
