"""Tables: heap file + schema + secondary indexes (B+-tree or hash)."""

from __future__ import annotations

from repro.db.optimizer.stats import TableStatsBuilder
from repro.errors import CatalogError, ExecutionError


class Index:
    """An index over one integer column of a table.

    ``kind`` is ``"btree"`` (ordered; serves range scans) or ``"hash"``
    (equality and full scans only).
    """

    __slots__ = ("name", "column", "tree", "clustered", "kind")

    def __init__(self, name, column, tree, clustered=False, kind="btree"):
        self.name = name
        self.column = column
        self.tree = tree
        self.clustered = clustered
        self.kind = kind


class Table:
    """A named relation stored in a heap file.

    Inserting through the table keeps all registered indexes consistent.
    """

    def __init__(self, name, schema, storage):
        self.name = name.lower()
        self.schema = schema
        self.codec = schema.make_codec()
        self._storage = storage
        self.file_id = storage.create_file(self.codec.record_size)
        self.indexes = {}  # column name -> Index
        self.row_count = 0
        self.stats = None  # exact stats from the last ANALYZE, if any
        self._stats_builder = TableStatsBuilder(schema)

    # ------------------------------------------------------------------
    # data manipulation
    # ------------------------------------------------------------------
    def insert(self, txn, values):
        """Insert one tuple; returns its rid."""
        raw = self.codec.encode(values)
        rid = self._storage.create_rec(txn, self.file_id, raw)
        for index in self.indexes.values():
            key = values[self.schema.index_of(index.column)]
            self._storage.index_insert(txn, index.name, key, rid)
        self.row_count += 1
        self._stats_builder.add_row(values)
        return rid

    def bulk_load(self, txn, rows):
        """Insert many tuples through the streaming fast path.

        Rows are packed directly into fresh pages (one BULK_PAGE log
        record per page instead of one INSERT per row) and each index is
        loaded through the batched IDX_BULK path.  Returns the number of
        rows inserted.
        """
        positions = [
            (column, self.schema.index_of(column)) for column in self.indexes
        ]
        keys = {column: [] for column, _ in positions}
        builder = self._stats_builder
        encode = self.codec.encode
        chunk = []  # bounded buffer feeding the batched stats path

        def raw_stream():
            for values in rows:
                chunk.append(values)
                if len(chunk) >= 4096:
                    builder.add_rows(chunk)
                    chunk.clear()
                for column, pos in positions:
                    keys[column].append(values[pos])
                yield encode(values)

        rids = self._storage.bulk_load(txn, self.file_id, raw_stream())
        builder.add_rows(chunk)
        for column, _pos in positions:
            index = self.indexes[column]
            self._storage.index_bulk_load(
                txn, index.name, zip(keys[column], rids)
            )
        self.row_count += len(rids)
        return len(rids)

    def delete(self, txn, rid):
        """Delete the tuple at ``rid``, maintaining indexes."""
        raw = self._storage.delete_rec(txn, self.file_id, rid)
        values = self.codec.decode(raw)
        for index in self.indexes.values():
            key = values[self.schema.index_of(index.column)]
            self._storage.index_delete(txn, index.name, key, rid)
        self.row_count -= 1
        return values

    def update(self, txn, rid, values):
        """Overwrite the tuple at ``rid``, maintaining indexes."""
        raw = self.codec.encode(values)
        old_raw = self._storage.update_rec(txn, self.file_id, rid, raw)
        old_values = self.codec.decode(old_raw)
        for index in self.indexes.values():
            pos = self.schema.index_of(index.column)
            if old_values[pos] != values[pos]:
                self._storage.index_delete(txn, index.name, old_values[pos], rid)
                self._storage.index_insert(txn, index.name, values[pos], rid)
        return old_values

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def scan(self, txn):
        """Yield ``(rid, tuple)`` for every row."""
        for rid, raw in self._storage.scan_file(txn, self.file_id):
            yield rid, self.codec.decode(raw)

    def fetch(self, txn, rid):
        """Return the tuple at ``rid``."""
        return self.codec.decode(self._storage.read_rec(txn, self.file_id, rid))

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    def create_index(self, column, clustered=False, txn=None, kind="btree"):
        """Build an index on an integer ``column``.

        Existing rows are backfilled through the sorted bulk path: one
        IDX_BULK log record per batch and a bottom-up build, instead of
        one logged insert (and one descent) per row.
        """
        column = column.lower()
        if column in self.indexes:
            raise CatalogError(f"index on {self.name}.{column} already exists")
        spec = self.schema.type_of(column)
        if spec != "int":
            raise ExecutionError(f"only int columns can be indexed, not {spec}")
        tree = self._storage.create_index(f"{self.name}.{column}", kind=kind)
        index = Index(
            f"{self.name}.{column}", column, tree, clustered=clustered,
            kind=kind,
        )
        pos = self.schema.index_of(column)
        if txn is None:
            txn = self._storage.begin()
            own_txn = True
        else:
            own_txn = False
        try:
            # logged backfill: the IDX_BULK batches must be in the WAL so
            # a crash after the build can rebuild the index from the log
            entries = [(values[pos], rid) for rid, values in self.scan(txn)]
            self._storage.index_bulk_load(txn, index.name, entries)
        finally:
            if own_txn:
                txn.commit()
        self.indexes[column] = index
        return index

    def index_on(self, column):
        return self.indexes.get(column.lower())

    def statistics(self):
        """Best available :class:`TableStats`: the exact numbers from the
        last ANALYZE when present, else the live incremental snapshot."""
        if self.stats is not None:
            return self.stats
        return self._stats_builder.snapshot(self.page_count)

    @property
    def page_count(self):
        return self._storage.file_page_count(self.file_id)


class Catalog:
    """The set of tables known to the database, plus basic statistics."""

    def __init__(self):
        self._tables = {}

    def register(self, table):
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name):
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name):
        return name.lower() in self._tables

    def drop(self, name):
        self._tables.pop(name.lower(), None)

    def table_names(self):
        return sorted(self._tables)
