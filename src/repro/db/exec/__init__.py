"""Relational execution: schemas, expressions, tables, operators."""

from repro.db.exec.schema import Schema, date_to_int, int_to_date
from repro.db.exec.table import Catalog, Index, Table

__all__ = ["Catalog", "Index", "Schema", "Table", "date_to_int", "int_to_date"]
