"""Physical operators (Volcano iterator model).

Every operator implements ``open() / next() / close()``; ``next`` returns
a tuple or ``None`` at end of stream.  The explicit per-tuple call chain —
scheduler -> operator -> child operator -> storage manager -> buffer pool —
is the layered call structure whose predictability CGP exploits.

Operators carry a ``columns`` tuple naming their output for the planner.
"""

from __future__ import annotations

import zlib

from repro.db.exec.expressions import shift_columns
from repro.errors import ExecutionError


def partition_hash(value):
    """Deterministic partition hash (Python's str hash is randomized)."""
    if isinstance(value, int):
        return value & 0x7FFFFFFF
    return zlib.crc32(str(value).encode("utf-8"))


class Operator:
    """Base class for physical operators."""

    columns = ()

    def open(self):
        raise NotImplementedError

    def next(self):
        raise NotImplementedError

    def close(self):
        raise NotImplementedError

    def rows(self):
        """Drain the operator (open, iterate, close) yielding tuples."""
        self.open()
        try:
            while True:
                row = self.next()
                if row is None:
                    return
                yield row
        finally:
            self.close()


class SeqScan(Operator):
    """Full scan of a table with an optional residual predicate."""

    def __init__(self, txn, table, predicate=None, columns=None):
        self._txn = txn
        self._table = table
        self._predicate = predicate
        self._iter = None
        self.columns = columns or table.schema.names

    def open(self):
        self._iter = self._table.scan(self._txn)

    def next(self):
        predicate = self._predicate
        for _rid, row in self._iter:
            if predicate is None or predicate.eval(row):
                return row
        return None

    def close(self):
        if self._iter is not None:
            self._iter.close()
            self._iter = None


class IndexScan(Operator):
    """B+-tree range scan with rid fetches back into the heap file.

    For a *non-clustered* index this produces the scattered page accesses
    the Wisconsin non-clustered-select queries are designed to exercise;
    for a clustered index the rid order matches heap order.
    """

    def __init__(self, txn, table, column, lo, hi, predicate=None, columns=None):
        self._txn = txn
        self._table = table
        self._index = table.index_on(column)
        if self._index is None:
            raise ExecutionError(f"no index on {table.name}.{column}")
        self._lo = lo
        self._hi = hi
        self._predicate = predicate
        self._iter = None
        self.columns = columns or table.schema.names

    def open(self):
        self._iter = self._index.tree.range_scan(self._lo, self._hi)

    def next(self):
        predicate = self._predicate
        for _key, rid in self._iter:
            row = self._table.fetch(self._txn, rid)
            if predicate is None or predicate.eval(row):
                return row
        return None

    def close(self):
        if self._iter is not None:
            self._iter.close()
            self._iter = None


class Filter(Operator):
    """Drop rows failing the predicate."""

    def __init__(self, child, predicate):
        self._child = child
        self._predicate = predicate
        self.columns = child.columns

    def open(self):
        self._child.open()

    def next(self):
        while True:
            row = self._child.next()
            if row is None:
                return None
            if self._predicate.eval(row):
                return row

    def close(self):
        self._child.close()


class Project(Operator):
    """Evaluate output expressions over each input row."""

    def __init__(self, child, exprs, columns):
        self._child = child
        self._exprs = tuple(exprs)
        self.columns = tuple(columns)

    def open(self):
        self._child.open()

    def next(self):
        row = self._child.next()
        if row is None:
            return None
        return tuple(expr.eval(row) for expr in self._exprs)

    def close(self):
        self._child.close()


class NestedLoopsJoin(Operator):
    """Tuple-at-a-time nested loops join.

    The inner side is re-opened for every outer row, so the inner must be
    a factory producing a fresh operator (typically a SeqScan).
    """

    def __init__(self, outer, inner_factory, predicate=None):
        self._outer = outer
        self._inner_factory = inner_factory
        self._predicate = predicate
        self._outer_row = None
        self._inner = None
        inner_probe = inner_factory()
        self.columns = tuple(outer.columns) + tuple(inner_probe.columns)

    def open(self):
        self._outer.open()
        self._outer_row = None
        self._inner = None

    def next(self):
        while True:
            if self._outer_row is None:
                self._outer_row = self._outer.next()
                if self._outer_row is None:
                    return None
                self._inner = self._inner_factory()
                self._inner.open()
            inner_row = self._inner.next()
            if inner_row is None:
                self._inner.close()
                self._inner = None
                self._outer_row = None
                continue
            joined = self._outer_row + inner_row
            if self._predicate is None or self._predicate.eval(joined):
                return joined

    def close(self):
        if self._inner is not None:
            self._inner.close()
            self._inner = None
        self._outer.close()


class IndexNLJoin(Operator):
    """Index nested loops join: probe the inner table's B+-tree per outer
    row with the value of ``outer_key`` and fetch matching records."""

    def __init__(self, outer, txn, inner_table, inner_column, outer_key,
                 predicate=None):
        self._outer = outer
        self._txn = txn
        self._table = inner_table
        self._index = inner_table.index_on(inner_column)
        if self._index is None:
            raise ExecutionError(f"no index on {inner_table.name}.{inner_column}")
        self._outer_key = outer_key
        self._predicate = predicate
        self._outer_row = None
        self._matches = None
        self.columns = tuple(outer.columns) + tuple(inner_table.schema.names)

    def open(self):
        self._outer.open()
        self._outer_row = None
        self._matches = None

    def next(self):
        while True:
            if self._outer_row is None:
                self._outer_row = self._outer.next()
                if self._outer_row is None:
                    return None
                key = self._outer_key.eval(self._outer_row)
                self._matches = iter(self._index.tree.search(key))
            rid = next(self._matches, None)
            if rid is None:
                self._outer_row = None
                continue
            inner_row = self._table.fetch(self._txn, rid)
            joined = self._outer_row + inner_row
            if self._predicate is None or self._predicate.eval(joined):
                return joined

    def close(self):
        self._outer.close()


class GraceHashJoin(Operator):
    """Grace hash join: partition both inputs into temporary heap files,
    then build + probe a hash table per partition pair.

    The partition phase inserts every input row into a temp file through
    ``create_rec``, matching the paper's observation that joins call the
    storage manager's record-creation entry point for their partitions.
    """

    def __init__(self, left, right, left_key, right_key, storage, txn,
                 left_codec, right_codec, n_partitions=8, predicate=None):
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key
        self._storage = storage
        self._txn = txn
        self._left_codec = left_codec
        self._right_codec = right_codec
        self._n = n_partitions
        self._predicate = predicate
        self._output = None
        self.columns = tuple(left.columns) + tuple(right.columns)

    def open(self):
        left_parts = self._partition(self._left, self._left_key, self._left_codec)
        right_parts = self._partition(self._right, self._right_key, self._right_codec)
        self._output = self._join_partitions(left_parts, right_parts)

    def _partition(self, child, key_expr, codec):
        files = [self._storage.create_file(codec.record_size) for _ in range(self._n)]
        child.open()
        try:
            while True:
                row = child.next()
                if row is None:
                    break
                part = partition_hash(key_expr.eval(row)) % self._n
                self._storage.create_rec(self._txn, files[part], codec.encode(row))
        finally:
            child.close()
        return files

    def _join_partitions(self, left_parts, right_parts):
        predicate = self._predicate
        for left_file, right_file in zip(left_parts, right_parts):
            table = {}
            for _rid, raw in self._storage.scan_file(self._txn, left_file):
                row = self._left_codec.decode(raw)
                table.setdefault(self._left_key.eval(row), []).append(row)
            for _rid, raw in self._storage.scan_file(self._txn, right_file):
                right_row = self._right_codec.decode(raw)
                for left_row in table.get(self._right_key.eval(right_row), ()):
                    joined = left_row + right_row
                    if predicate is None or predicate.eval(joined):
                        yield joined

    def next(self):
        return next(self._output, None)

    def close(self):
        if self._output is not None:
            self._output.close()
            self._output = None


# aggregate function registry -------------------------------------------------


class _SumAcc:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def add(self, v):
        self.value += v

    def result(self):
        return self.value


class _CountAcc:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def add(self, _v):
        self.value += 1

    def result(self):
        return self.value


class _AvgAcc:
    __slots__ = ("total", "count")

    def __init__(self):
        self.total = 0
        self.count = 0

    def add(self, v):
        self.total += v
        self.count += 1

    def result(self):
        return self.total / self.count if self.count else None


class _MinAcc:
    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def add(self, v):
        if self.value is None or v < self.value:
            self.value = v

    def result(self):
        return self.value


class _MaxAcc:
    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def add(self, v):
        if self.value is None or v > self.value:
            self.value = v

    def result(self):
        return self.value


AGGREGATES = {
    "sum": _SumAcc,
    "count": _CountAcc,
    "avg": _AvgAcc,
    "min": _MinAcc,
    "max": _MaxAcc,
}


class HashAggregate(Operator):
    """Hash-based grouping with any mix of SUM/COUNT/AVG/MIN/MAX.

    Output rows are ``group columns + aggregate results`` in declaration
    order; with no group-by a single global row is produced.
    """

    def __init__(self, child, group_exprs, agg_specs, columns):
        self._child = child
        self._groups = tuple(group_exprs)
        self._specs = tuple(agg_specs)  # (func_name, expr)
        for func, _expr in self._specs:
            if func not in AGGREGATES:
                raise ExecutionError(f"unknown aggregate {func!r}")
        self._output = None
        self.columns = tuple(columns)

    def open(self):
        table = {}
        self._child.open()
        try:
            while True:
                row = self._child.next()
                if row is None:
                    break
                key = tuple(g.eval(row) for g in self._groups)
                accs = table.get(key)
                if accs is None:
                    accs = [AGGREGATES[func]() for func, _expr in self._specs]
                    table[key] = accs
                for acc, (_func, expr) in zip(accs, self._specs):
                    acc.add(expr.eval(row) if expr is not None else 1)
        finally:
            self._child.close()
        if not table and not self._groups:
            table[()] = [AGGREGATES[func]() for func, _expr in self._specs]
        self._output = iter(
            key + tuple(acc.result() for acc in accs) for key, accs in table.items()
        )

    def next(self):
        return next(self._output, None)

    def close(self):
        self._output = None


class Sort(Operator):
    """Materializing sort on a list of (expr, descending) keys."""

    def __init__(self, child, sort_keys):
        self._child = child
        self._keys = tuple(sort_keys)
        self._output = None
        self.columns = child.columns

    def open(self):
        rows = list(self._child.rows())
        # Stable multi-key sort: apply keys right-to-left.
        for expr, descending in reversed(self._keys):
            rows.sort(key=expr.eval, reverse=descending)
        self._output = iter(rows)

    def next(self):
        return next(self._output, None)

    def close(self):
        self._output = None


class Limit(Operator):
    """Pass through at most ``n`` rows."""

    def __init__(self, child, n):
        self._child = child
        self._n = n
        self._emitted = 0
        self.columns = child.columns

    def open(self):
        self._child.open()
        self._emitted = 0

    def next(self):
        if self._emitted >= self._n:
            return None
        row = self._child.next()
        if row is not None:
            self._emitted += 1
        return row

    def close(self):
        self._child.close()


def cross_predicate(left_columns, predicate):
    """Rebind a predicate written against the right input of a join so its
    column indexes address the concatenated row."""
    return shift_columns(predicate, len(left_columns))
