"""Schemas: ordered, typed column lists.

Types are the codec type specs: ``"int"``, ``"float"``, ``("str", n)``.
Dates are stored as ``int`` days since 1970-01-01; the SQL front end
converts ``DATE 'YYYY-MM-DD'`` literals.
"""

from __future__ import annotations

import datetime

from repro.db.storage.codec import RecordCodec
from repro.errors import CatalogError

_EPOCH = datetime.date(1970, 1, 1)


def date_to_int(text):
    """Convert ``YYYY-MM-DD`` to days since the epoch."""
    year, month, day = (int(part) for part in text.split("-"))
    return (datetime.date(year, month, day) - _EPOCH).days


def int_to_date(days):
    """Convert days since the epoch back to ``YYYY-MM-DD``."""
    return (_EPOCH + datetime.timedelta(days=days)).isoformat()


class Schema:
    """An ordered list of ``(name, type_spec)`` columns."""

    __slots__ = ("columns", "_index")

    def __init__(self, columns):
        self.columns = tuple((name.lower(), spec) for name, spec in columns)
        self._index = {}
        for i, (name, _spec) in enumerate(self.columns):
            if name in self._index:
                raise CatalogError(f"duplicate column {name!r}")
            self._index[name] = i

    @property
    def names(self):
        return tuple(name for name, _spec in self.columns)

    @property
    def type_specs(self):
        return tuple(spec for _name, spec in self.columns)

    def index_of(self, name):
        """Position of ``name`` (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}") from None

    def has_column(self, name):
        return name.lower() in self._index

    def type_of(self, name):
        return self.columns[self.index_of(name)][1]

    def make_codec(self):
        return RecordCodec(self.type_specs)

    def __len__(self):
        return len(self.columns)

    def __eq__(self, other):
        return isinstance(other, Schema) and self.columns == other.columns

    def __repr__(self):
        cols = ", ".join(f"{n}:{s}" for n, s in self.columns)
        return f"Schema({cols})"
