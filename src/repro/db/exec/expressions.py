"""Expression trees evaluated over tuples.

Expressions are *bound*: column references hold tuple positions, resolved
by the planner against an operator's output columns.  Evaluation is a
plain interpreted tree walk — one function call per node — which is both
how storage-manager-era engines evaluate predicates and exactly the kind
of small-function call pattern CGP exploits.
"""

from __future__ import annotations

from repro.errors import ExecutionError


class Expression:
    """Base class: ``eval(row) -> value``."""

    __slots__ = ()

    def eval(self, row):
        raise NotImplementedError


class Column(Expression):
    """A bound column reference (tuple position)."""

    __slots__ = ("index", "name")

    def __init__(self, index, name=""):
        self.index = index
        self.name = name

    def eval(self, row):
        return row[self.index]

    def __repr__(self):
        return f"Column({self.index}, {self.name!r})"


class Const(Expression):
    """A literal value."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def eval(self, row):
        return self.value

    def __repr__(self):
        return f"Const({self.value!r})"


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}

_COMPARE = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Arithmetic(Expression):
    """Binary arithmetic: ``left op right`` with op in + - * /."""

    __slots__ = ("op", "left", "right", "_fn")

    def __init__(self, op, left, right):
        try:
            self._fn = _ARITH[op]
        except KeyError:
            raise ExecutionError(f"unknown arithmetic operator {op!r}") from None
        self.op = op
        self.left = left
        self.right = right

    def eval(self, row):
        return self._fn(self.left.eval(row), self.right.eval(row))

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class Comparison(Expression):
    """Binary comparison producing a bool."""

    __slots__ = ("op", "left", "right", "_fn")

    def __init__(self, op, left, right):
        try:
            self._fn = _COMPARE[op]
        except KeyError:
            raise ExecutionError(f"unknown comparison operator {op!r}") from None
        self.op = op
        self.left = left
        self.right = right

    def eval(self, row):
        return self._fn(self.left.eval(row), self.right.eval(row))

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class Between(Expression):
    """``expr BETWEEN lo AND hi`` (inclusive both ends)."""

    __slots__ = ("expr", "lo", "hi")

    def __init__(self, expr, lo, hi):
        self.expr = expr
        self.lo = lo
        self.hi = hi

    def eval(self, row):
        value = self.expr.eval(row)
        return self.lo.eval(row) <= value <= self.hi.eval(row)

    def __repr__(self):
        return f"({self.expr!r} BETWEEN {self.lo!r} AND {self.hi!r})"


class And(Expression):
    """Conjunction over any number of terms (short-circuiting)."""

    __slots__ = ("terms",)

    def __init__(self, terms):
        self.terms = tuple(terms)

    def eval(self, row):
        for term in self.terms:
            if not term.eval(row):
                return False
        return True

    def __repr__(self):
        return "And(" + ", ".join(repr(t) for t in self.terms) + ")"


class Or(Expression):
    """Disjunction over any number of terms (short-circuiting)."""

    __slots__ = ("terms",)

    def __init__(self, terms):
        self.terms = tuple(terms)

    def eval(self, row):
        for term in self.terms:
            if term.eval(row):
                return True
        return False

    def __repr__(self):
        return "Or(" + ", ".join(repr(t) for t in self.terms) + ")"


class Not(Expression):
    """Logical negation."""

    __slots__ = ("term",)

    def __init__(self, term):
        self.term = term

    def eval(self, row):
        return not self.term.eval(row)

    def __repr__(self):
        return f"Not({self.term!r})"


def conjunction(terms):
    """Combine predicate terms into one expression (None if empty)."""
    terms = [t for t in terms if t is not None]
    if not terms:
        return None
    if len(terms) == 1:
        return terms[0]
    return And(terms)


def columns_used(expr):
    """Set of tuple positions referenced anywhere in ``expr``."""
    out = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if isinstance(node, Column):
            out.add(node.index)
        elif isinstance(node, (Arithmetic, Comparison)):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, Between):
            stack.extend((node.expr, node.lo, node.hi))
        elif isinstance(node, (And, Or)):
            stack.extend(node.terms)
        elif isinstance(node, Not):
            stack.append(node.term)
    return out


def shift_columns(expr, offset):
    """Return a copy of ``expr`` with every column index shifted.

    Used when an expression bound against a join's right input must be
    evaluated against the concatenated join row.
    """
    if expr is None:
        return None
    if getattr(expr, "shift_invariant", False):
        # e.g. correlated ParamRefs read the *outer* query's row, which is
        # not the row being reshaped here.
        return expr
    if isinstance(expr, Column):
        return Column(expr.index + offset, expr.name)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Arithmetic):
        return Arithmetic(
            expr.op, shift_columns(expr.left, offset), shift_columns(expr.right, offset)
        )
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op, shift_columns(expr.left, offset), shift_columns(expr.right, offset)
        )
    if isinstance(expr, Between):
        return Between(
            shift_columns(expr.expr, offset),
            shift_columns(expr.lo, offset),
            shift_columns(expr.hi, offset),
        )
    if isinstance(expr, And):
        return And([shift_columns(t, offset) for t in expr.terms])
    if isinstance(expr, Or):
        return Or([shift_columns(t, offset) for t in expr.terms])
    if isinstance(expr, Not):
        return Not(shift_columns(expr.term, offset))
    raise ExecutionError(f"cannot shift expression {expr!r}")
