"""The DBMS substrate: a miniature layered database system.

Layers (paper Figure 1): SQL parser -> optimizer -> scheduler ->
relational operators -> storage manager.
"""

from repro.db.database import Database, QueryResult

__all__ = ["Database", "QueryResult"]
