"""Query optimizer: statistics, cost model, plan construction."""

from repro.db.optimizer.planner import PhysicalPlan, Planner
from repro.db.optimizer.stats import ColumnStats, TableStats, analyze

__all__ = ["ColumnStats", "PhysicalPlan", "Planner", "TableStats", "analyze"]
