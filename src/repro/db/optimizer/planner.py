"""The query optimizer: binds a parsed SELECT and emits a physical plan.

Planning pipeline (System-R flavored, greedy join enumeration):

1. resolve FROM aliases against the catalog,
2. split WHERE into conjuncts; classify as single-table, equijoin, or
   residual (incl. subquery predicates),
3. choose an access path per table (index range scan when a usable
   B+-tree exists and the cost model favors it),
4. greedily order joins starting from the smallest filtered input,
   choosing index nested loops when the inner join column is indexed,
   grace hash join for other equijoins, plain nested loops otherwise,
5. lower aggregates / GROUP BY to a hash aggregate, then projection,
   DISTINCT, ORDER BY, LIMIT.

Scalar and IN subqueries are planned recursively; correlated references
resolve to parameters re-bound on every evaluation of the subquery, i.e.
naive nested iteration, which is how the paper-era engines executed the
"simple nested query" (TPC-H Q2).
"""

from __future__ import annotations

import struct as _struct

from repro.db.exec import expressions as ex
from repro.db.exec import operators as op
from repro.db.parser import ast_nodes as ast
from repro.errors import PlanError
from repro.db.optimizer import cost


class Scope:
    """Maps (qualifier, column) to tuple positions."""

    def __init__(self, entries=()):
        self._entries = list(entries)  # list of (alias, column)

    def extend(self, alias, columns):
        for column in columns:
            self._entries.append((alias, column))

    def concat(self, other):
        scope = Scope(self._entries)
        scope._entries.extend(other._entries)
        return scope

    def resolve(self, qualifier, name):
        """Position of the column, or None if unresolvable here."""
        if qualifier:
            for i, (alias, column) in enumerate(self._entries):
                if alias == qualifier and column == name:
                    return i
            return None
        matches = [
            i for i, (_alias, column) in enumerate(self._entries) if column == name
        ]
        if len(matches) > 1:
            raise PlanError(f"ambiguous column {name!r}")
        return matches[0] if matches else None

    def qualified_names(self):
        return tuple(f"{alias}.{column}" for alias, column in self._entries)

    def __len__(self):
        return len(self._entries)


class _ParamHolder:
    """Mutable cell carrying the current outer row into a subquery."""

    __slots__ = ("row",)

    def __init__(self):
        self.row = ()


class ParamRef(ex.Expression):
    """Correlated reference: reads a column of the *outer* row."""

    shift_invariant = True

    __slots__ = ("holder", "index", "name")

    def __init__(self, holder, index, name=""):
        self.holder = holder
        self.index = index
        self.name = name

    def eval(self, _row):
        return self.holder.row[self.index]

    def __repr__(self):
        return f"ParamRef({self.index}, {self.name!r})"


class ScalarSubqueryExpr(ex.Expression):
    """Evaluates a subplan to a single scalar (first column of first row).

    Uncorrelated subqueries are evaluated once and cached.
    """

    __slots__ = ("plan", "holder", "correlated", "_cache", "_has_cache")

    def __init__(self, plan, holder, correlated):
        self.plan = plan
        self.holder = holder
        self.correlated = correlated
        self._cache = None
        self._has_cache = False

    def eval(self, row):
        if not self.correlated and self._has_cache:
            return self._cache
        self.holder.row = row
        result = None
        operator = self.plan.root
        operator.open()
        try:
            first = operator.next()
            if first is not None:
                result = first[0]
        finally:
            operator.close()
        if not self.correlated:
            self._cache = result
            self._has_cache = True
        return result

    def __repr__(self):
        kind = "correlated" if self.correlated else "uncorrelated"
        return f"ScalarSubquery({kind})"


class InSubqueryExpr(ex.Expression):
    """``expr IN (subquery)`` — membership in the subplan's first column."""

    __slots__ = ("expr", "plan", "holder", "correlated", "_cache")

    def __init__(self, expr, plan, holder, correlated):
        self.expr = expr
        self.plan = plan
        self.holder = holder
        self.correlated = correlated
        self._cache = None

    def eval(self, row):
        if self.correlated or self._cache is None:
            self.holder.row = row
            values = set()
            operator = self.plan.root
            operator.open()
            try:
                while True:
                    sub_row = operator.next()
                    if sub_row is None:
                        break
                    values.add(sub_row[0])
            finally:
                operator.close()
            if self.correlated:
                return self.expr.eval(row) in values
            self._cache = values
        return self.expr.eval(row) in self._cache


class PhysicalPlan:
    """A runnable plan: root operator + output column names + description."""

    def __init__(self, root, columns, description):
        self.root = root
        self.columns = tuple(columns)
        self.description = description

    def rows(self):
        """Execute the plan, yielding result tuples."""
        return self.root.rows()

    def explain(self, indent=0):
        """Human-readable plan tree."""
        lines = []
        _explain_node(self.description, indent, lines)
        return "\n".join(lines)


def _explain_node(node, indent, lines):
    label, children = node
    lines.append("  " * indent + label)
    for child in children:
        _explain_node(child, indent + 1, lines)


class Planner:
    """Plans one SELECT statement into a :class:`PhysicalPlan`."""

    def __init__(self, catalog, storage, txn, outer_scope=None, outer_holder=None):
        self._catalog = catalog
        self._storage = storage
        self._txn = txn
        self._outer_scope = outer_scope
        self._outer_holder = outer_holder
        self._correlated = False  # set if any ParamRef was bound

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def plan(self, stmt, hints=None):
        hints = hints or {}
        tables = {}
        for ref in stmt.tables:
            if ref.alias in tables:
                raise PlanError(f"duplicate table alias {ref.alias!r}")
            tables[ref.alias] = self._catalog.table(ref.name)
        conjuncts = _split_conjuncts(stmt.where)
        single, equijoins, residual = self._classify(conjuncts, tables)

        plan_state = self._build_joins(tables, single, equijoins, residual, hints)
        operator, scope, description = plan_state

        operator, scope, description, order_handled = self._apply_aggregation(
            stmt, operator, scope, description
        )
        if stmt.distinct:
            operator = op.HashAggregate(operator, _identity_exprs(scope), (), scope.qualified_names())
            description = ("Distinct", [description])
        operator, description = self._apply_order_limit(
            stmt, operator, scope, description, order_handled
        )
        return PhysicalPlan(operator, _output_names(scope), description)

    # ------------------------------------------------------------------
    # predicate classification
    # ------------------------------------------------------------------
    def _classify(self, conjuncts, tables):
        single = {alias: [] for alias in tables}
        equijoins = []
        residual = []
        for conjunct in conjuncts:
            aliases = self._aliases_of(conjunct, tables)
            join_cols = _equijoin_columns(conjunct)
            if join_cols is not None:
                (q1, c1), (q2, c2) = join_cols
                a1 = self._alias_for(q1, c1, tables)
                a2 = self._alias_for(q2, c2, tables)
                if a1 is not None and a2 is not None and a1 != a2:
                    equijoins.append((a1, c1, a2, c2, conjunct))
                    continue
            if len(aliases) == 1 and not _contains_subquery(conjunct):
                single[next(iter(aliases))].append(conjunct)
            else:
                residual.append((aliases, conjunct))
        return single, equijoins, residual

    def _aliases_of(self, node, tables):
        """Aliases of *this* query's tables referenced in ``node``
        (descends into subqueries to find correlated references)."""
        out = set()
        for ref in _column_refs(node):
            alias = self._alias_for(ref.qualifier, ref.name, tables)
            if alias is not None:
                out.add(alias)
        return out

    def _alias_for(self, qualifier, name, tables):
        if qualifier:
            return qualifier if qualifier in tables else None
        owners = [
            alias for alias, table in tables.items() if table.schema.has_column(name)
        ]
        if len(owners) > 1:
            raise PlanError(f"ambiguous column {name!r}")
        return owners[0] if owners else None

    # ------------------------------------------------------------------
    # base access paths
    # ------------------------------------------------------------------
    def _base_access(self, alias, table, conjuncts, scope, hints):
        """Choose SeqScan or IndexScan for one table; returns
        (operator, est_rows, description)."""
        stats = _table_stats(table)
        row_count = max(1, table.row_count)
        bounds = _index_bounds(conjuncts, table)
        force = hints.get(("access", alias))
        chosen = None
        selectivity = 1.0
        for column, lo, hi, used in bounds:
            index = table.index_on(column)
            is_equality = lo is not None and hi is not None and lo == hi
            if getattr(index, "kind", "btree") == "hash" and not is_equality:
                continue  # a hash index cannot serve a range predicate
            column_stats = stats.columns.get(column) if stats else None
            if is_equality:
                fraction = cost.eq_selectivity(column_stats)
            else:
                fraction = cost.range_selectivity(column_stats, lo, hi)
            use = (
                force == "index"
                if force
                else cost.index_scan_is_better(
                    fraction, index.clustered,
                    row_count=stats.row_count if stats else None,
                    page_count=stats.page_count if stats else None,
                    height=getattr(index.tree, "height", 2),
                )
            )
            if use and (chosen is None or fraction < chosen[3]):
                chosen = (column, lo, hi, fraction, used)
        if force == "scan":
            chosen = None
        if chosen is not None:
            column, lo, hi, fraction, used = chosen
            remaining = [c for c in conjuncts if c not in used]
            predicate = self._bind_conjunction(remaining, scope)
            operator = op.IndexScan(
                self._txn, table, column, lo, hi, predicate=predicate,
                columns=scope.qualified_names(),
            )
            est = max(1, int(row_count * fraction * _extra_selectivity(remaining)))
            label = f"IndexScan({table.name} as {alias}, {column} in [{lo}, {hi}])"
            return operator, est, (label, [])
        predicate = self._bind_conjunction(conjuncts, scope)
        operator = op.SeqScan(
            self._txn, table, predicate=predicate, columns=scope.qualified_names()
        )
        est = max(1, int(row_count * _extra_selectivity(conjuncts)))
        label = f"SeqScan({table.name} as {alias})"
        return operator, est, (label, [])

    def _bind_conjunction(self, conjuncts, scope):
        bound = [self.bind(c, scope) for c in conjuncts]
        return ex.conjunction(bound)

    # ------------------------------------------------------------------
    # join ordering
    # ------------------------------------------------------------------
    def _build_joins(self, tables, single, equijoins, residual, hints):
        # per-alias base scans
        base = {}
        for alias, table in tables.items():
            scope = Scope()
            scope.extend(alias, table.schema.names)
            base[alias] = (table, scope, single[alias])
        remaining = set(tables)
        pending_residual = list(residual)
        pending_equijoins = list(equijoins)

        # start from the smallest estimated filtered input
        order_hint = hints.get("join_order")
        estimates = {}
        built = {}
        for alias in tables:
            table, scope, conjuncts = base[alias]
            built[alias] = self._base_access(alias, table, conjuncts, scope, hints)
            estimates[alias] = built[alias][1]
        if order_hint:
            start = order_hint[0]
        else:
            start = min(remaining, key=lambda a: (estimates[a], a))
        operator, est, description = built[start]
        scope = Scope()
        scope.extend(start, tables[start].schema.names)
        bound = {start}
        remaining.discard(start)
        operator, description = self._apply_residuals(
            pending_residual, bound, operator, scope, description
        )

        hint_pos = 1
        while remaining:
            choice = self._pick_next_join(
                bound, remaining, pending_equijoins, estimates, tables,
                order_hint, hint_pos,
            )
            hint_pos += 1
            if choice is None:
                # no equijoin connects: cross product with smallest remaining
                alias = min(remaining, key=lambda a: (estimates[a], a))
                inner_op, inner_est, inner_desc = built[alias]
                inner_factory = self._refactory(alias, tables[alias], base, hints)
                operator = op.NestedLoopsJoin(operator, inner_factory)
                description = ("NestedLoopsJoin", [description, inner_desc])
                est = est * inner_est
            else:
                alias, outer_col_ref, inner_col, conjunct = choice
                pending_equijoins = [
                    e for e in pending_equijoins if e[4] is not conjunct
                ]
                operator, description, est = self._join_with(
                    operator, scope, est, alias, tables[alias], built[alias],
                    outer_col_ref, inner_col, base, hints, description,
                )
            scope.extend(alias, tables[alias].schema.names)
            bound.add(alias)
            remaining.discard(alias)
            # equijoin predicates not consumed as a join condition but now
            # fully bound must be applied as filters (e.g. a second join
            # edge reaching the same table).
            leftover = [
                e for e in pending_equijoins if e[0] in bound and e[2] in bound
            ]
            for edge in leftover:
                pending_equijoins.remove(edge)
                predicate = self.bind(edge[4], scope)
                operator = op.Filter(operator, predicate)
                description = ("Filter(join edge)", [description])
            operator, description = self._apply_residuals(
                pending_residual, bound, operator, scope, description
            )
        if pending_residual:
            raise PlanError("unplaceable residual predicates remain")
        return operator, scope, description

    def _pick_next_join(self, bound, remaining, equijoins, estimates, tables,
                        order_hint, hint_pos):
        """Next (alias, outer column ref, inner column, conjunct) to join."""
        candidates = []
        for a1, c1, a2, c2, conjunct in equijoins:
            if a1 in bound and a2 in remaining:
                candidates.append((a2, (a1, c1), c2, conjunct))
            elif a2 in bound and a1 in remaining:
                candidates.append((a1, (a2, c2), c1, conjunct))
        if not candidates:
            return None
        if order_hint and hint_pos < len(order_hint):
            wanted = order_hint[hint_pos]
            for candidate in candidates:
                if candidate[0] == wanted:
                    return candidate
        return min(candidates, key=lambda c: (estimates[c[0]], c[0]))

    def _join_with(self, outer_op, outer_scope, outer_est, alias, table,
                   built_inner, outer_col_ref, inner_col, base, hints,
                   outer_desc):
        inner_op, inner_est, inner_desc = built_inner
        outer_alias, outer_col = outer_col_ref
        outer_pos = outer_scope.resolve(outer_alias, outer_col)
        outer_key = ex.Column(outer_pos, f"{outer_alias}.{outer_col}")
        index = table.index_on(inner_col)
        method = hints.get(("join", alias))
        stats = _table_stats(table)
        inner_stats = stats.columns.get(inner_col) if stats else None
        use_index_nl = index is not None and method != "grace" and (
            method == "index_nl" or outer_est <= max(1, table.row_count)
        )
        single_preds = base[alias][2]
        if use_index_nl:
            # single-table predicates on the inner become residuals over
            # the joined row (bound against the inner scope, shifted).
            inner_scope = Scope()
            inner_scope.extend(alias, table.schema.names)
            inner_pred = self._bind_conjunction(single_preds, inner_scope)
            if inner_pred is not None:
                inner_pred = ex.shift_columns(inner_pred, len(outer_scope))
            operator = op.IndexNLJoin(
                outer_op, self._txn, table, inner_col, outer_key,
                predicate=inner_pred,
            )
            description = (
                f"IndexNLJoin(inner={table.name} as {alias} on {inner_col})",
                [outer_desc, (f"IndexProbe({table.name}.{inner_col})", [])],
            )
        else:
            inner_scope = Scope()
            inner_scope.extend(alias, table.schema.names)
            inner_key = ex.Column(inner_scope.resolve(alias, inner_col), inner_col)
            operator = op.GraceHashJoin(
                outer_op, inner_op, outer_key, inner_key,
                self._storage, self._txn,
                _tuple_codec(len(outer_scope)), _tuple_codec(len(inner_scope)),
            )
            description = (
                f"GraceHashJoin(on {outer_alias}.{outer_col} = {alias}.{inner_col})",
                [outer_desc, inner_desc],
            )
        est = cost.join_cardinality(outer_est, inner_est, None, inner_stats)
        return operator, description, est

    def _refactory(self, alias, table, base, hints):
        """Factory producing fresh inner scans for NestedLoopsJoin."""
        conjuncts = base[alias][2]

        def make():
            scope = Scope()
            scope.extend(alias, table.schema.names)
            predicate = self._bind_conjunction(conjuncts, scope)
            return op.SeqScan(
                self._txn, table, predicate=predicate,
                columns=scope.qualified_names(),
            )

        return make

    def _apply_residuals(self, pending, bound, operator, scope, description):
        placed = []
        for item in pending:
            aliases, conjunct = item
            if aliases <= bound:
                predicate = self.bind(conjunct, scope)
                operator = op.Filter(operator, predicate)
                description = ("Filter", [description])
                placed.append(item)
        for item in placed:
            pending.remove(item)
        return operator, description

    # ------------------------------------------------------------------
    # aggregation / projection
    # ------------------------------------------------------------------
    def _apply_aggregation(self, stmt, operator, scope, description):
        has_aggs = any(_contains_aggregate(item.expr) for item in stmt.items)
        if not stmt.items:  # SELECT *
            if stmt.group_by:
                raise PlanError("SELECT * with GROUP BY is not supported")
            if stmt.having is not None:
                raise PlanError("HAVING requires GROUP BY or aggregates")
            return operator, scope, description, False
        if not has_aggs and not stmt.group_by:
            if stmt.having is not None:
                raise PlanError("HAVING requires GROUP BY or aggregates")
            exprs = [self.bind(item.expr, scope) for item in stmt.items]
            names = [_item_name(item, i) for i, item in enumerate(stmt.items)]
            out_scope = Scope()
            out_scope.extend("", names)
            order_handled = False
            if stmt.order_by and not self._binds_all(stmt.order_by, out_scope):
                # ORDER BY references non-projected columns (standard
                # SQL): sort on the full input row before projecting.
                keys = [
                    (self.bind(item.expr, scope), item.descending)
                    for item in stmt.order_by
                ]
                operator = op.Sort(operator, keys)
                description = ("Sort", [description])
                order_handled = True
            operator = op.Project(operator, exprs, names)
            return operator, out_scope, ("Project", [description]), order_handled

        group_asts = list(stmt.group_by)
        group_exprs = [self.bind(g, scope) for g in group_asts]
        agg_specs = []
        agg_asts = []
        outputs = []  # (kind, position) kind: 'group'|'agg'
        for item in stmt.items:
            if isinstance(item.expr, ast.Aggregate):
                arg = (
                    None
                    if item.expr.arg is None
                    else self.bind(item.expr.arg, scope)
                )
                agg_specs.append((item.expr.func, arg))
                agg_asts.append(item.expr)
                outputs.append(("agg", len(agg_specs) - 1))
            else:
                position = _group_position(item.expr, group_asts)
                if position is None:
                    raise PlanError(
                        f"non-aggregate select item must appear in GROUP BY: "
                        f"{item.expr!r}"
                    )
                outputs.append(("group", position))
        having_expr = None
        if stmt.having is not None:
            having_expr = self._lower_having(
                stmt.having, group_asts, agg_asts, agg_specs, scope
            )
        inner_names = [f"g{i}" for i in range(len(group_exprs))] + [
            f"a{i}" for i in range(len(agg_specs))
        ]
        operator = op.HashAggregate(operator, group_exprs, agg_specs, inner_names)
        description = ("HashAggregate", [description])
        if having_expr is not None:
            operator = op.Filter(operator, having_expr)
            description = ("Having", [description])
        # project aggregate output into select-item order
        exprs = []
        names = []
        for i, (item, (kind, position)) in enumerate(zip(stmt.items, outputs)):
            if kind == "group":
                exprs.append(ex.Column(position))
            else:
                exprs.append(ex.Column(len(group_exprs) + position))
            names.append(_item_name(item, i))
        operator = op.Project(operator, exprs, names)
        out_scope = Scope()
        out_scope.extend("", names)
        return operator, out_scope, ("Project", [description]), False

    def _binds_all(self, order_items, scope):
        """True if every ORDER BY expression resolves in ``scope``."""
        for item in order_items:
            try:
                self.bind(item.expr, scope)
            except PlanError:
                return False
        return True

    def _lower_having(self, node, group_asts, agg_asts, agg_specs, scope):
        """Lower a HAVING expression to run over the aggregate's internal
        output row (group columns first, then aggregate results).

        Aggregates in HAVING that do not appear in the select list are
        appended to ``agg_specs`` so the hash aggregate computes them.
        """
        if isinstance(node, ast.Aggregate):
            for i, existing in enumerate(agg_asts):
                if node == existing:
                    return ex.Column(len(group_asts) + i)
            arg = None if node.arg is None else self.bind(node.arg, scope)
            agg_specs.append((node.func, arg))
            agg_asts.append(node)
            return ex.Column(len(group_asts) + len(agg_specs) - 1)
        if isinstance(node, ast.Literal):
            return ex.Const(node.value)
        if isinstance(node, ast.ColumnRef):
            position = _group_position(node, group_asts)
            if position is None:
                raise PlanError(
                    f"HAVING column {node.name!r} is not in GROUP BY"
                )
            return ex.Column(position, node.name)
        lower = lambda child: self._lower_having(
            child, group_asts, agg_asts, agg_specs, scope
        )
        if isinstance(node, ast.BinaryOp):
            left = lower(node.left)
            right = lower(node.right)
            if node.op in ("+", "-", "*", "/"):
                return ex.Arithmetic(node.op, left, right)
            return ex.Comparison(node.op, left, right)
        if isinstance(node, ast.BetweenOp):
            return ex.Between(lower(node.expr), lower(node.lo), lower(node.hi))
        if isinstance(node, ast.BoolOp):
            terms = [lower(t) for t in node.terms]
            return ex.And(terms) if node.op == "AND" else ex.Or(terms)
        if isinstance(node, ast.NotOp):
            return ex.Not(lower(node.term))
        raise PlanError(f"cannot use {node!r} in HAVING")

    def _apply_order_limit(self, stmt, operator, scope, description,
                           order_handled=False):
        if stmt.order_by and not order_handled:
            keys = []
            for item in stmt.order_by:
                keys.append((self.bind(item.expr, scope), item.descending))
            operator = op.Sort(operator, keys)
            description = ("Sort", [description])
        if stmt.limit is not None:
            operator = op.Limit(operator, stmt.limit)
            description = (f"Limit({stmt.limit})", [description])
        return operator, description

    # ------------------------------------------------------------------
    # expression binding
    # ------------------------------------------------------------------
    def bind(self, node, scope):
        """Lower an AST expression to a bound executable expression."""
        if isinstance(node, ast.Literal):
            return ex.Const(node.value)
        if isinstance(node, ast.ColumnRef):
            position = scope.resolve(node.qualifier, node.name)
            if position is not None:
                return ex.Column(position, node.name)
            if self._outer_scope is not None:
                outer_position = self._outer_scope.resolve(
                    node.qualifier, node.name
                )
                if outer_position is not None:
                    self._correlated = True
                    return ParamRef(self._outer_holder, outer_position, node.name)
            raise PlanError(f"cannot resolve column {node!r}")
        if isinstance(node, ast.BinaryOp):
            left = self.bind(node.left, scope)
            right = self.bind(node.right, scope)
            if node.op in ("+", "-", "*", "/"):
                return ex.Arithmetic(node.op, left, right)
            return ex.Comparison(node.op, left, right)
        if isinstance(node, ast.BetweenOp):
            return ex.Between(
                self.bind(node.expr, scope),
                self.bind(node.lo, scope),
                self.bind(node.hi, scope),
            )
        if isinstance(node, ast.BoolOp):
            terms = [self.bind(t, scope) for t in node.terms]
            return ex.And(terms) if node.op == "AND" else ex.Or(terms)
        if isinstance(node, ast.NotOp):
            return ex.Not(self.bind(node.term, scope))
        if isinstance(node, ast.Subquery):
            return self._bind_subquery(node, scope)
        if isinstance(node, ast.InOp):
            expr = self.bind(node.expr, scope)
            sub = self._bind_subquery(node.subquery, scope)
            return InSubqueryExpr(expr, sub.plan, sub.holder, sub.correlated)
        if isinstance(node, ast.Aggregate):
            raise PlanError("aggregate used outside of SELECT items")
        raise PlanError(f"cannot bind {node!r}")

    def _bind_subquery(self, node, scope):
        holder = _ParamHolder()
        sub_planner = Planner(
            self._catalog, self._storage, self._txn,
            outer_scope=scope, outer_holder=holder,
        )
        sub_plan = sub_planner.plan(node.select)
        return ScalarSubqueryExpr(sub_plan, holder, sub_planner._correlated)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _split_conjuncts(node):
    if node is None:
        return []
    if isinstance(node, ast.BoolOp) and node.op == "AND":
        out = []
        for term in node.terms:
            out.extend(_split_conjuncts(term))
        return out
    return [node]


def _column_refs(node):
    """All ColumnRefs in an AST expression, including inside subqueries
    (subquery-local names are filtered out by the caller's alias check)."""
    out = []
    stack = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, ast.ColumnRef):
            out.append(item)
        elif isinstance(item, ast.Literal):
            pass
        elif isinstance(item, ast.BinaryOp):
            stack.extend((item.left, item.right))
        elif isinstance(item, ast.BetweenOp):
            stack.extend((item.expr, item.lo, item.hi))
        elif isinstance(item, ast.BoolOp):
            stack.extend(item.terms)
        elif isinstance(item, ast.NotOp):
            stack.append(item.term)
        elif isinstance(item, ast.Aggregate):
            if item.arg is not None:
                stack.append(item.arg)
        elif isinstance(item, ast.Subquery):
            sub = item.select
            for sel in sub.items:
                stack.append(sel.expr)
            if sub.where is not None:
                stack.append(sub.where)
        elif isinstance(item, ast.InOp):
            stack.extend((item.expr, item.subquery))
    return out


def _contains_subquery(node):
    stack = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, (ast.Subquery, ast.InOp)):
            return True
        if isinstance(item, ast.BinaryOp):
            stack.extend((item.left, item.right))
        elif isinstance(item, ast.BetweenOp):
            stack.extend((item.expr, item.lo, item.hi))
        elif isinstance(item, ast.BoolOp):
            stack.extend(item.terms)
        elif isinstance(item, ast.NotOp):
            stack.append(item.term)
    return False


def _contains_aggregate(node):
    stack = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, ast.Aggregate):
            return True
        if isinstance(item, ast.BinaryOp):
            stack.extend((item.left, item.right))
        elif isinstance(item, ast.BoolOp):
            stack.extend(item.terms)
        elif isinstance(item, ast.NotOp):
            stack.append(item.term)
        elif isinstance(item, ast.BetweenOp):
            stack.extend((item.expr, item.lo, item.hi))
    return False


def _equijoin_columns(node):
    """If ``node`` is ``col = col``, return ((q1, c1), (q2, c2))."""
    if (
        isinstance(node, ast.BinaryOp)
        and node.op == "="
        and isinstance(node.left, ast.ColumnRef)
        and isinstance(node.right, ast.ColumnRef)
    ):
        return (
            (node.left.qualifier, node.left.name),
            (node.right.qualifier, node.right.name),
        )
    return None


def _index_bounds(conjuncts, table):
    """Find (column, lo, hi, used_conjuncts) candidates for an index scan.

    Multiple range conjuncts on the same indexed column are merged into a
    single [lo, hi] window.
    """
    per_column = {}
    for conjunct in conjuncts:
        bounds = _bounds_of(conjunct)
        if bounds is None:
            continue
        column, lo, hi = bounds
        if table.index_on(column) is None:
            continue
        current = per_column.get(column)
        if current is None:
            per_column[column] = [lo, hi, [conjunct]]
        else:
            if lo is not None:
                current[0] = lo if current[0] is None else max(current[0], lo)
            if hi is not None:
                current[1] = hi if current[1] is None else min(current[1], hi)
            current[2].append(conjunct)
    return [
        (column, lo, hi, used) for column, (lo, hi, used) in per_column.items()
    ]


def _bounds_of(conjunct):
    """Extract (column, lo, hi) from a simple comparison/BETWEEN."""
    if isinstance(conjunct, ast.BetweenOp):
        if (
            isinstance(conjunct.expr, ast.ColumnRef)
            and isinstance(conjunct.lo, ast.Literal)
            and isinstance(conjunct.hi, ast.Literal)
        ):
            return conjunct.expr.name, conjunct.lo.value, conjunct.hi.value
        return None
    if not isinstance(conjunct, ast.BinaryOp):
        return None
    left, op_name, right = conjunct.left, conjunct.op, conjunct.right
    if isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
        if op_name not in flipped:
            return None
        left, right, op_name = right, left, flipped[op_name]
    if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal)):
        return None
    value = right.value
    if not isinstance(value, int):
        return None
    if op_name == "=":
        return left.name, value, value
    if op_name == "<":
        return left.name, None, value - 1
    if op_name == "<=":
        return left.name, None, value
    if op_name == ">":
        return left.name, value + 1, None
    if op_name == ">=":
        return left.name, value, None
    return None


def _table_stats(table):
    """Best available statistics for ``table``.

    Prefers the table's ``statistics()`` method (the analyzed stats if
    ANALYZE ran, else the live incremental builder snapshot); falls back
    to a bare ``stats`` attribute for simple stand-in objects in tests.
    """
    method = getattr(table, "statistics", None)
    if callable(method):
        return method()
    return getattr(table, "stats", None)


def _extra_selectivity(conjuncts):
    """Crude residual selectivity: 0.5 per extra conjunct, floored."""
    factor = 1.0
    for _ in conjuncts:
        factor *= 0.5
    return max(factor, 0.001)


def _group_position(expr, group_asts):
    for i, group in enumerate(group_asts):
        if _ast_equal(expr, group):
            return i
    return None


def _ast_equal(a, b):
    if isinstance(a, ast.ColumnRef) and isinstance(b, ast.ColumnRef):
        # unqualified vs qualified references to the same column match
        return a.name == b.name and (
            not a.qualifier or not b.qualifier or a.qualifier == b.qualifier
        )
    return a == b


def _item_name(item, position):
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.name
    if isinstance(item.expr, ast.Aggregate):
        return f"{item.expr.func}_{position}"
    return f"expr_{position}"


def _identity_exprs(scope):
    return [ex.Column(i) for i in range(len(scope))]


def _output_names(scope):
    return tuple(column for _alias, column in scope._entries)


def _tuple_codec(n_columns):
    """Codec for spilling arbitrary joined rows: pickles via repr is
    unsafe; instead grace-join inputs are always base-table rows or
    already-joined tuples of ints/floats/strings.  We serialize with a
    generic length-prefixed encoding."""
    return _GenericRowCodec(n_columns)


class _GenericRowCodec:
    """Variable-typed, fixed-slot row codec for join spill files.

    Encodes each value with a 1-byte tag (i/f/s) and for strings a fixed
    64-byte field.  Record size is fixed per column count, which the
    slotted page requires.
    """

    _STR_WIDTH = 64

    def __init__(self, n_columns):
        self._n = n_columns
        self.record_size = n_columns * (1 + self._STR_WIDTH)

    def encode(self, values):
        if len(values) != self._n:
            raise PlanError(f"expected {self._n} values, got {len(values)}")
        parts = []
        for value in values:
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, int):
                parts.append(b"i" + _struct.pack("<q", value).ljust(self._STR_WIDTH, b"\x00"))
            elif isinstance(value, float):
                parts.append(b"f" + _struct.pack("<d", value).ljust(self._STR_WIDTH, b"\x00"))
            else:
                raw = str(value).encode("utf-8")[: self._STR_WIDTH]
                parts.append(b"s" + raw.ljust(self._STR_WIDTH, b"\x00"))
        return b"".join(parts)

    def decode(self, raw):
        out = []
        width = 1 + self._STR_WIDTH
        for i in range(self._n):
            chunk = raw[i * width : (i + 1) * width]
            tag = chunk[0:1]
            body = chunk[1:]
            if tag == b"i":
                out.append(_struct.unpack("<q", body[:8])[0])
            elif tag == b"f":
                out.append(_struct.unpack("<d", body[:8])[0])
            else:
                out.append(body.rstrip(b"\x00").decode("utf-8"))
        return tuple(out)
