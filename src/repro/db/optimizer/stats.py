"""Table and column statistics for the cost model.

Two sources feed the planner:

* :func:`analyze` — exact statistics from one full scan (the classic
  ANALYZE), stored on ``table.stats``.
* :class:`TableStatsBuilder` — *incremental* statistics the table
  maintains on every insert and bulk load, so the planner has real
  numbers even before ANALYZE runs (at million-row scale a full scan per
  ANALYZE is exactly the cost this exists to avoid).  Row count and
  min/max are exact for an insert-only history; distinct counts come
  from a KMV (k-minimum-values) sketch that is exact below ``k`` values
  and an unbiased estimate beyond.  Deletes are not un-counted: the
  builder's numbers are monotone upper bounds until the next ANALYZE,
  the standard staleness contract.

All hashing uses crc32 over the value's encoding — never Python's
``hash`` — so statistics (and therefore plans and traces) are identical
across processes and interpreter runs.
"""

from __future__ import annotations

import heapq
import struct
import zlib
from typing import NamedTuple


class ColumnStats(NamedTuple):
    min_value: object
    max_value: object
    n_distinct: int


class TableStats(NamedTuple):
    row_count: int
    page_count: int
    columns: dict  # column name -> ColumnStats


#: KMV sketch size: exact distinct counts up to this many values
DEFAULT_SKETCH_K = 256

_HASH_SPACE = float(2**32)


def _hash_value(value):
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        raw = value.to_bytes(16, "little", signed=True)
    elif isinstance(value, float):
        raw = struct.pack("<d", value)
    else:
        raw = str(value).encode("utf-8")
    return zlib.crc32(raw)


class DistinctSketch:
    """KMV distinct-count sketch: keep the ``k`` smallest value hashes.

    With fewer than ``k`` distinct hashes the count is exact; beyond
    that, the k-th smallest hash ``h_k`` estimates the density of the
    hash space, giving ``(k - 1) * 2^32 / h_k`` distinct values.
    """

    __slots__ = ("k", "_heap", "_members")

    def __init__(self, k=DEFAULT_SKETCH_K):
        self.k = k
        self._heap = []  # max-heap (negated) of the k smallest hashes
        self._members = set()

    def add(self, value):
        self._offer(_hash_value(value))

    def add_many(self, values):
        """Batch insert (the bulk-load path): hash each value once and
        skip, before any heap work, every hash that cannot displace the
        current k-th minimum.  Callers pass *deduplicated* values (a
        ``set``), so low-cardinality columns cost one hash per distinct
        value per batch instead of one Python call per row."""
        heap = self._heap
        if len(heap) == self.k:
            bound = -heap[0]
            for h in map(_hash_value, values):
                if h < bound:
                    self._offer(h)
                    bound = -heap[0]
        else:
            for h in map(_hash_value, values):
                self._offer(h)

    def _offer(self, h):
        if h in self._members:
            return
        if len(self._heap) < self.k:
            self._members.add(h)
            heapq.heappush(self._heap, -h)
        elif h < -self._heap[0]:
            self._members.add(h)
            evicted = -heapq.heappushpop(self._heap, -h)
            self._members.discard(evicted)

    def estimate(self):
        n = len(self._heap)
        if n < self.k:
            return n
        kth = -self._heap[0]
        if kth <= 0:
            return n
        return max(n, int((self.k - 1) * _HASH_SPACE / kth))


class ColumnSketch:
    """Incremental min/max plus a distinct sketch for one column."""

    __slots__ = ("min_value", "max_value", "_distinct")

    def __init__(self, k=DEFAULT_SKETCH_K):
        self.min_value = None
        self.max_value = None
        self._distinct = DistinctSketch(k)

    def add(self, value):
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        self._distinct.add(value)

    def add_many(self, values):
        """Batch insert: C-level min/max/set over the column slice, then
        one sketch offer per *distinct* value."""
        if not values:
            return
        distinct = set(values)
        lo = min(distinct)
        hi = max(distinct)
        if self.min_value is None or lo < self.min_value:
            self.min_value = lo
        if self.max_value is None or hi > self.max_value:
            self.max_value = hi
        self._distinct.add_many(distinct)

    def stats(self):
        return ColumnStats(
            self.min_value, self.max_value, self._distinct.estimate()
        )


class TableStatsBuilder:
    """Streaming per-table statistics, fed by the table's write paths."""

    __slots__ = ("row_count", "_positions", "_sketches")

    def __init__(self, schema, k=DEFAULT_SKETCH_K):
        self.row_count = 0
        self._positions = [
            (name, schema.index_of(name))
            for name, spec in schema.columns
            if spec in ("int", "float")
        ]
        self._sketches = {name: ColumnSketch(k) for name, _ in self._positions}

    def add_row(self, values):
        self.row_count += 1
        for name, pos in self._positions:
            self._sketches[name].add(values[pos])

    def add_rows(self, rows):
        """Batch path for the bulk loader: one column-wise pass per
        sketch instead of one Python call per value.  ``rows`` must be a
        sequence (the loader feeds bounded chunks, not the raw stream)."""
        self.row_count += len(rows)
        for name, pos in self._positions:
            self._sketches[name].add_many([row[pos] for row in rows])

    def snapshot(self, page_count):
        """Current statistics as a :class:`TableStats`."""
        return TableStats(
            self.row_count,
            page_count,
            {name: sketch.stats() for name, sketch in self._sketches.items()},
        )


def analyze(table, txn):
    """Compute exact :class:`TableStats` for ``table`` with one scan."""
    seen = {
        name: set()
        for name, spec in table.schema.columns
        if spec in ("int", "float")
    }
    minimums = {}
    maximums = {}
    rows = 0
    positions = {name: table.schema.index_of(name) for name in seen}
    for _rid, values in table.scan(txn):
        rows += 1
        for name, pos in positions.items():
            value = values[pos]
            seen[name].add(value)
            if name not in minimums or value < minimums[name]:
                minimums[name] = value
            if name not in maximums or value > maximums[name]:
                maximums[name] = value
    columns = {
        name: ColumnStats(minimums.get(name), maximums.get(name), len(values))
        for name, values in seen.items()
    }
    return TableStats(rows, table.page_count, columns)
