"""Table and column statistics for the cost model.

``analyze`` scans a table once and records per-column min/max/ndistinct
(ints and floats only).  Statistics are optional: the planner falls back
to magic-number selectivities when they are missing, like any engine
running without ANALYZE.
"""

from __future__ import annotations

from typing import NamedTuple


class ColumnStats(NamedTuple):
    min_value: object
    max_value: object
    n_distinct: int


class TableStats(NamedTuple):
    row_count: int
    page_count: int
    columns: dict  # column name -> ColumnStats


def analyze(table, txn):
    """Compute :class:`TableStats` for ``table`` with one scan."""
    seen = {
        name: set()
        for name, spec in table.schema.columns
        if spec in ("int", "float")
    }
    minimums = {}
    maximums = {}
    rows = 0
    positions = {name: table.schema.index_of(name) for name in seen}
    for _rid, values in table.scan(txn):
        rows += 1
        for name, pos in positions.items():
            value = values[pos]
            seen[name].add(value)
            if name not in minimums or value < minimums[name]:
                minimums[name] = value
            if name not in maximums or value > maximums[name]:
                maximums[name] = value
    columns = {
        name: ColumnStats(minimums.get(name), maximums.get(name), len(values))
        for name, values in seen.items()
    }
    return TableStats(rows, table.page_count, columns)
