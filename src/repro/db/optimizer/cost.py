"""Selectivity and cardinality estimation.

Classic System-R style magic numbers, refined with column min/max and
n_distinct when :func:`repro.db.optimizer.stats.analyze` has run.
"""

from __future__ import annotations

DEFAULT_EQ_SELECTIVITY = 0.01
DEFAULT_RANGE_SELECTIVITY = 0.10
# Index is worth using when the fraction of rows fetched is below these.
CLUSTERED_INDEX_THRESHOLD = 0.30
NONCLUSTERED_INDEX_THRESHOLD = 0.15


def eq_selectivity(column_stats):
    """Selectivity of ``col = const``."""
    if column_stats is not None and column_stats.n_distinct > 0:
        return 1.0 / column_stats.n_distinct
    return DEFAULT_EQ_SELECTIVITY


def range_selectivity(column_stats, lo, hi):
    """Selectivity of ``lo <= col <= hi`` (either bound may be None)."""
    if (
        column_stats is None
        or column_stats.min_value is None
        or column_stats.max_value is None
        or column_stats.max_value <= column_stats.min_value
    ):
        return DEFAULT_RANGE_SELECTIVITY
    span = column_stats.max_value - column_stats.min_value
    effective_lo = column_stats.min_value if lo is None else max(lo, column_stats.min_value)
    effective_hi = column_stats.max_value if hi is None else min(hi, column_stats.max_value)
    if effective_hi < effective_lo:
        return 0.0
    return min(1.0, (effective_hi - effective_lo + 1) / (span + 1))


def join_cardinality(left_rows, right_rows, left_stats, right_stats):
    """Estimated output size of an equijoin."""
    distincts = []
    for column_stats in (left_stats, right_stats):
        if column_stats is not None and column_stats.n_distinct > 0:
            distincts.append(column_stats.n_distinct)
    if distincts:
        return max(1, (left_rows * right_rows) // max(distincts))
    return max(left_rows, right_rows)


def index_scan_is_better(selectivity, clustered):
    """Decide index scan vs sequential scan for a selection."""
    threshold = (
        CLUSTERED_INDEX_THRESHOLD if clustered else NONCLUSTERED_INDEX_THRESHOLD
    )
    return selectivity <= threshold
