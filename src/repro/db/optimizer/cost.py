"""Selectivity, cardinality, and access-path cost estimation.

Classic System-R style magic numbers, refined with column min/max and
n_distinct when statistics are available (from ANALYZE or the table's
incremental :class:`~repro.db.optimizer.stats.TableStatsBuilder`).  The
scan-vs-index decision is a page-I/O cost comparison when row and page
counts are known, falling back to fixed selectivity thresholds when the
planner is flying blind.
"""

from __future__ import annotations

DEFAULT_EQ_SELECTIVITY = 0.01
DEFAULT_RANGE_SELECTIVITY = 0.10
# Threshold fallback (no statistics): index is worth using when the
# fraction of rows fetched is below these.
CLUSTERED_INDEX_THRESHOLD = 0.30
NONCLUSTERED_INDEX_THRESHOLD = 0.15

# Page-cost model knobs.  The simulated volume has no seek penalty (the
# buffer pool absorbs repeated touches), so page costs are uniform; the
# per-tuple CPU cost of an index fetch is higher than a scan's because
# each match pays a descent/probe plus a rid fetch.
SEQ_PAGE_COST = 1.0
INDEX_PAGE_COST = 1.0
CPU_TUPLE_COST = 0.01
CPU_INDEX_TUPLE_COST = 0.02


def eq_selectivity(column_stats):
    """Selectivity of ``col = const``."""
    if column_stats is not None and column_stats.n_distinct > 0:
        return 1.0 / column_stats.n_distinct
    return DEFAULT_EQ_SELECTIVITY


def range_selectivity(column_stats, lo, hi):
    """Selectivity of ``lo <= col <= hi`` (either bound may be None)."""
    if (
        column_stats is None
        or column_stats.min_value is None
        or column_stats.max_value is None
        or column_stats.max_value <= column_stats.min_value
    ):
        return DEFAULT_RANGE_SELECTIVITY
    span = column_stats.max_value - column_stats.min_value
    effective_lo = column_stats.min_value if lo is None else max(lo, column_stats.min_value)
    effective_hi = column_stats.max_value if hi is None else min(hi, column_stats.max_value)
    if effective_hi < effective_lo:
        return 0.0
    return min(1.0, (effective_hi - effective_lo + 1) / (span + 1))


def join_cardinality(left_rows, right_rows, left_stats, right_stats):
    """Estimated output size of an equijoin."""
    distincts = []
    for column_stats in (left_stats, right_stats):
        if column_stats is not None and column_stats.n_distinct > 0:
            distincts.append(column_stats.n_distinct)
    if distincts:
        return max(1, (left_rows * right_rows) // max(distincts))
    return max(left_rows, right_rows)


def seq_scan_cost(row_count, page_count):
    """Full-scan cost: every page once, every tuple through the CPU."""
    return max(1, page_count) * SEQ_PAGE_COST + row_count * CPU_TUPLE_COST


def index_scan_cost(selectivity, row_count, page_count, clustered, height=2):
    """Index-scan cost for a selection fetching ``selectivity`` of rows.

    A clustered index touches the matching fraction of heap pages; a
    non-clustered one pays one heap fetch per matching row, capped at
    the page count (the buffer pool makes re-touches of a resident page
    cheap, so the cap models a warm pool rather than worst-case I/O).
    """
    matching = selectivity * row_count
    if clustered:
        heap_pages = selectivity * max(1, page_count)
    else:
        heap_pages = min(matching, max(1, page_count))
    return (
        height * INDEX_PAGE_COST
        + heap_pages * INDEX_PAGE_COST
        + matching * CPU_INDEX_TUPLE_COST
    )


def index_scan_is_better(selectivity, clustered, row_count=None,
                         page_count=None, height=2):
    """Decide index scan vs sequential scan for a selection.

    With real row/page counts this is a cost comparison; without them it
    falls back to the classic fixed thresholds.
    """
    if row_count and page_count:
        return index_scan_cost(
            selectivity, row_count, page_count, clustered, height=height
        ) <= seq_scan_cost(row_count, page_count)
    threshold = (
        CLUSTERED_INDEX_THRESHOLD if clustered else NONCLUSTERED_INDEX_THRESHOLD
    )
    return selectivity <= threshold
