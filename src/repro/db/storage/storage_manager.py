"""The storage manager facade — the bottom layer of the DBMS.

This is the layer the paper's Figure 2 example walks through.  The method
names mirror the SHORE entry points the paper names: ``create_rec``,
``find_page_in_buffer_pool`` / ``getpage_from_disk`` (delegated to the
buffer pool), and ``lock_page`` / ``update_page`` / ``unlock_page``.

The storage manager owns:

* a :class:`DiskManager` volume,
* a :class:`BufferPool` with pinning + LRU,
* a :class:`LockManager` (strict 2PL),
* a :class:`WriteAheadLog` + :class:`TransactionManager`,
* heap files of fixed-width records, and
* B+-tree indexes sharing the same volume.
"""

from __future__ import annotations

from repro.db.storage import wal
from repro.db.storage.btree import BTree, DEFAULT_MAX_KEYS
from repro.db.storage.buffer_pool import DEFAULT_POOL_PAGES, BufferPool
from repro.db.storage.disk import DiskManager
from repro.db.storage.lock_manager import EXCLUSIVE, SHARED, LockManager
from repro.db.storage.page import Page, PageId
from repro.db.storage.transaction import TransactionManager
from repro.db.storage.wal import WriteAheadLog
from repro.errors import StorageError


class _FileInfo:
    """Catalog entry for one heap file."""

    __slots__ = ("file_id", "record_size", "page_nos", "free_hint")

    def __init__(self, file_id, record_size):
        self.file_id = file_id
        self.record_size = record_size
        self.page_nos = []  # page numbers in allocation order
        self.free_hint = 0  # index into page_nos where space was last found


class StorageManager:
    """Facade over the complete storage layer."""

    def __init__(self, pool_pages=DEFAULT_POOL_PAGES, btree_max_keys=DEFAULT_MAX_KEYS):
        self.disk = DiskManager()
        self.pool = BufferPool(self.disk, capacity=pool_pages)
        self.locks = LockManager()
        self.log = WriteAheadLog()
        # the write-ahead rule: a dirty page may reach disk only after
        # the log records that produced it are durable
        self.pool.wal_hook = lambda page: self.log.flush(page.page_lsn)
        self.transactions = TransactionManager(self.log, self.locks)
        self.transactions.attach_storage(self)
        self._files = {}
        self._indexes = {}
        self._next_file_id = 1
        self._next_page_no = 0
        self._btree_max_keys = btree_max_keys

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def begin(self):
        return self.transactions.begin()

    # ------------------------------------------------------------------
    # file management
    # ------------------------------------------------------------------
    def create_file(self, record_size):
        """Create an empty heap file; returns its file id."""
        file_id = self._next_file_id
        self._next_file_id += 1
        self._files[file_id] = _FileInfo(file_id, record_size)
        return file_id

    def create_index(self, name):
        """Create an empty B+-tree index registered under ``name``."""
        if name in self._indexes:
            raise StorageError(f"index {name!r} already exists")
        file_id = self._next_file_id
        self._next_file_id += 1
        tree = BTree(
            self.pool, file_id, self._allocate_page_no, max_keys=self._btree_max_keys
        )
        self._indexes[name] = tree
        return tree

    def index(self, name):
        try:
            return self._indexes[name]
        except KeyError:
            raise StorageError(f"unknown index {name!r}") from None

    def _allocate_page_no(self):
        page_no = self._next_page_no
        self._next_page_no += 1
        return page_no

    def _file(self, file_id):
        try:
            return self._files[file_id]
        except KeyError:
            raise StorageError(f"unknown file {file_id}") from None

    # ------------------------------------------------------------------
    # the paper's Figure 2 path
    # ------------------------------------------------------------------
    def lock_page(self, txn, page_id, exclusive=True):
        """Acquire a page lock for ``txn`` (2PL; released at txn end)."""
        mode = EXCLUSIVE if exclusive else SHARED
        self.locks.lock(txn.txn_id, page_id, mode)

    def unlock_page(self, txn, page_id):
        """Drop the pin taken for the page operation.

        Under strict 2PL the lock itself is retained until commit/abort;
        what this releases is the buffer-pool pin, matching SHORE's unfix.
        """
        self.pool.unpin_page(page_id, dirty=False)

    def update_page(self, txn, page, slot, raw):
        """Write ``raw`` into ``slot`` of the (pinned, locked) ``page``."""
        old = page.update(slot, raw)
        lsn = self.log.append(
            txn.txn_id, wal.UPDATE, page_id=page.page_id, slot=slot,
            before=old, after=bytes(raw),
        )
        page.page_lsn = lsn
        page.dirty = True
        return old

    def create_rec(self, txn, file_id, raw):
        """Insert a record, returning its rid ``(page_no, slot)``.

        This follows the paper's call sequence: find the target page in the
        buffer pool (faulting it in from disk if needed), lock it, update
        it, and unlock it.
        """
        info = self._file(file_id)
        if len(raw) != info.record_size:
            raise StorageError("record size does not match file")
        page = self._find_space(info)
        page_id = page.page_id
        self.lock_page(txn, page_id, exclusive=True)
        slot = page.insert(raw)
        lsn = self.log.append(
            txn.txn_id, wal.INSERT, page_id=page_id, slot=slot, after=bytes(raw)
        )
        page.page_lsn = lsn
        self.pool.unpin_page(page_id, dirty=True)
        return (page_id.page_no, slot)

    def _find_space(self, info):
        """Return a pinned page with room, extending the file if needed."""
        for idx in range(info.free_hint, len(info.page_nos)):
            page_id = PageId(info.file_id, info.page_nos[idx])
            page = self.pool.find_page_in_buffer_pool(page_id)
            if page is None:
                page = self.pool.getpage_from_disk(page_id)
            page.pin_count += 1
            if not page.is_full:
                info.free_hint = idx
                return page
            self.pool.unpin_page(page_id, dirty=False)
        page_no = self._allocate_page_no()
        info.page_nos.append(page_no)
        info.free_hint = len(info.page_nos) - 1
        page = Page(PageId(info.file_id, page_no), info.record_size)
        self.pool.add_page(page)
        return page

    # ------------------------------------------------------------------
    # record access
    # ------------------------------------------------------------------
    def read_rec(self, txn, file_id, rid):
        """Read the record bytes at ``rid`` under a shared lock."""
        page_id = PageId(file_id, rid[0])
        self.lock_page(txn, page_id, exclusive=False)
        page = self.pool.fetch_page(page_id)
        try:
            return page.read(rid[1])
        finally:
            self.pool.unpin_page(page_id, dirty=False)

    def update_rec(self, txn, file_id, rid, raw):
        """Overwrite the record at ``rid``; returns the old bytes."""
        info = self._file(file_id)
        if len(raw) != info.record_size:
            raise StorageError("record size does not match file")
        page_id = PageId(file_id, rid[0])
        self.lock_page(txn, page_id, exclusive=True)
        page = self.pool.fetch_page(page_id)
        try:
            return self.update_page(txn, page, rid[1], raw)
        finally:
            self.pool.unpin_page(page_id, dirty=True)

    def delete_rec(self, txn, file_id, rid):
        """Delete the record at ``rid``; returns the old bytes."""
        info = self._file(file_id)
        page_id = PageId(file_id, rid[0])
        self.lock_page(txn, page_id, exclusive=True)
        page = self.pool.fetch_page(page_id)
        try:
            old = page.delete(rid[1])
            lsn = self.log.append(
                txn.txn_id, wal.DELETE, page_id=page_id, slot=rid[1], before=old
            )
            page.page_lsn = lsn
            idx = info.page_nos.index(rid[0]) if rid[0] in info.page_nos else None
            if idx is not None and idx < info.free_hint:
                info.free_hint = idx
            return old
        finally:
            self.pool.unpin_page(page_id, dirty=True)

    def scan_file(self, txn, file_id):
        """Yield ``(rid, raw)`` for every record in the file, page by page.

        Pages are share-locked and pinned only while being scanned.
        """
        info = self._file(file_id)
        for page_no in info.page_nos:
            page_id = PageId(file_id, page_no)
            self.lock_page(txn, page_id, exclusive=False)
            page = self.pool.fetch_page(page_id)
            try:
                for slot, raw in page.slots():
                    yield (page_no, slot), raw
            finally:
                self.pool.unpin_page(page_id, dirty=False)

    def file_page_count(self, file_id):
        return len(self._file(file_id).page_nos)

    def file_record_count(self, file_id):
        """Count live records (scans the file without a transaction)."""
        info = self._file(file_id)
        total = 0
        for page_no in info.page_nos:
            page = self.pool.fetch_page(PageId(file_id, page_no))
            total += page.live_records
            self.pool.unpin_page(page.page_id)
        return total

    # ------------------------------------------------------------------
    # logged index maintenance (logical undo on abort)
    # ------------------------------------------------------------------
    def index_insert(self, txn, index_name, key, rid):
        """Insert into a named index under transactional protection."""
        self.index(index_name).insert(key, rid)
        self.log.append(
            txn.txn_id, wal.IDX_INSERT, page_id=index_name,
            after=_encode_index_entry(key, rid),
        )

    def index_delete(self, txn, index_name, key, rid):
        """Delete from a named index under transactional protection."""
        self.index(index_name).delete(key, rid)
        self.log.append(
            txn.txn_id, wal.IDX_DELETE, page_id=index_name,
            before=_encode_index_entry(key, rid),
        )

    # ------------------------------------------------------------------
    # undo support (called by TransactionManager during rollback)
    # ------------------------------------------------------------------
    def apply_undo(self, record):
        """Reverse the effect of one log record (physical page ops and
        logical index ops)."""
        if record.kind == wal.IDX_INSERT:
            key, rid = _decode_index_entry(record.after)
            self.index(record.page_id).delete(key, rid)
            return
        if record.kind == wal.IDX_DELETE:
            key, rid = _decode_index_entry(record.before)
            self.index(record.page_id).insert(key, rid)
            return
        page = self.pool.fetch_page(record.page_id)
        try:
            if record.kind == wal.INSERT:
                page.delete(record.slot)
            elif record.kind == wal.DELETE:
                # restore into the same slot
                page._slots[record.slot] = record.before
                page._live += 1
            elif record.kind == wal.UPDATE:
                page.update(record.slot, record.before)
            else:
                raise StorageError(f"cannot undo {record.kind}")
        finally:
            self.pool.unpin_page(record.page_id, dirty=True)

    # ------------------------------------------------------------------
    # durability helpers
    # ------------------------------------------------------------------
    def checkpoint(self):
        """Flush all dirty pages and the log; write a checkpoint record."""
        self.log.flush()
        self.pool.flush_all()
        self.log.append(0, wal.CHECKPOINT)
        self.log.flush()


_INDEX_ENTRY = __import__("struct").Struct("<qii")


def _encode_index_entry(key, rid):
    return _INDEX_ENTRY.pack(key, rid[0], rid[1])


def _decode_index_entry(raw):
    key, page_no, slot = _INDEX_ENTRY.unpack(raw)
    return key, (page_no, slot)
