"""The storage manager facade — the bottom layer of the DBMS.

This is the layer the paper's Figure 2 example walks through.  The method
names mirror the SHORE entry points the paper names: ``create_rec``,
``find_page_in_buffer_pool`` / ``getpage_from_disk`` (delegated to the
buffer pool), and ``lock_page`` / ``update_page`` / ``unlock_page``.

The storage manager owns:

* a :class:`DiskManager` volume,
* a :class:`BufferPool` with pinning + LRU,
* a :class:`LockManager` (strict 2PL),
* a :class:`WriteAheadLog` + :class:`TransactionManager`,
* heap files of fixed-width records, and
* B+-tree indexes sharing the same volume.
"""

from __future__ import annotations

import heapq
import time

from repro.db.storage import recovery, wal
from repro.db.storage.btree import BTree, DEFAULT_MAX_KEYS
from repro.db.storage.hash_index import DEFAULT_BUCKETS, HashIndex
from repro.db.storage.buffer_pool import (
    DEFAULT_DISK_RETRY_LIMIT, DEFAULT_POOL_PAGES, BufferPool,
)
from repro.db.storage.disk import DiskManager
from repro.db.storage.lock_manager import EXCLUSIVE, SHARED, LockManager
from repro.db.storage.page import Page, PageId
from repro.db.storage.transaction import TransactionManager
from repro.db.storage.wal import WriteAheadLog
from repro.errors import StorageError, TransientError


class _FileInfo:
    """Catalog entry for one heap file, with its free-space map.

    The free-space map is a min-heap of *candidate* page numbers — pages
    believed to have a free slot — validated lazily: ``_find_space`` pops
    a candidate only once it observes the page full, so a stale candidate
    costs one probe instead of a scan.  Candidates are added when a page
    is created non-full, when a delete (or an insert undo) frees a slot,
    and for every surviving page at restart (the map is not WAL-logged;
    it self-heals from over-approximation, like a real FSM after crash).
    Page numbers are allocated monotonically, so lowest-candidate-first
    preserves the old linear probe's first-fit placement exactly.
    """

    __slots__ = ("file_id", "record_size", "page_nos", "_free_heap",
                 "_free_set")

    def __init__(self, file_id, record_size):
        self.file_id = file_id
        self.record_size = record_size
        self.page_nos = []  # page numbers in allocation order
        self._free_heap = []  # candidate page numbers (min-heap)
        self._free_set = set()  # heap membership guard (no duplicates)

    def note_free(self, page_no):
        """Mark ``page_no`` as a candidate with free space."""
        if page_no not in self._free_set:
            self._free_set.add(page_no)
            heapq.heappush(self._free_heap, page_no)

    def peek_free(self):
        """Lowest candidate page number, or None."""
        return self._free_heap[0] if self._free_heap else None

    def drop_free(self, page_no):
        """Invalidate the top candidate (observed full)."""
        if self._free_heap and self._free_heap[0] == page_no:
            heapq.heappop(self._free_heap)
        self._free_set.discard(page_no)

    def reset_free(self, page_nos):
        """Rebuild the map with every page in ``page_nos`` a candidate."""
        self._free_set = set(page_nos)
        self._free_heap = sorted(self._free_set)

    @property
    def free_candidates(self):
        return len(self._free_set)


class StorageManager:
    """Facade over the complete storage layer."""

    def __init__(self, pool_pages=DEFAULT_POOL_PAGES, btree_max_keys=DEFAULT_MAX_KEYS,
                 disk_retry_limit=DEFAULT_DISK_RETRY_LIMIT,
                 wal_group_size=1, wal_group_window=0,
                 hash_buckets=DEFAULT_BUCKETS):
        self.disk = DiskManager()
        self.pool = BufferPool(
            self.disk, capacity=pool_pages,
            disk_retry_limit=disk_retry_limit,
        )
        self.locks = LockManager()
        self.log = WriteAheadLog(
            group_size=wal_group_size, group_window=wal_group_window,
        )
        # the write-ahead rule: a dirty page may reach disk only after
        # the log records that produced it are durable
        self.pool.wal_hook = self._force_log_for
        self.transactions = TransactionManager(self.log, self.locks)
        self.transactions.attach_storage(self)
        self._files = {}
        self._indexes = {}
        self._next_file_id = 1
        self._next_page_no = 0
        self._btree_max_keys = btree_max_keys
        self._hash_buckets = hash_buckets
        #: fault injector, or None; see :meth:`install_faults`
        self.faults = None
        #: transactions re-run by :meth:`run_transaction` after a
        #: transient failure (deadlock, transient disk fault)
        self.txn_restarts = 0

    def _force_log_for(self, page):
        """Write-ahead hook: force the log through ``page.page_lsn``
        before the page image may reach disk.  Pages recreated by
        recovery carry ``page_lsn == -1`` (no owning log record) and
        need no force."""
        if page.page_lsn >= 0:
            self.log.flush(page.page_lsn)

    # ------------------------------------------------------------------
    # fault injection (no-ops unless an injector is installed)
    # ------------------------------------------------------------------
    def install_faults(self, injector):
        """Thread ``injector`` through every instrumented component.

        Pass ``None`` to uninstall.  Each component guards its fault
        points behind a single ``faults is not None`` check, so the
        disabled path costs one attribute load."""
        self.faults = injector
        self.disk.faults = injector
        self.pool.faults = injector
        self.log.faults = injector
        self.transactions.faults = injector

    def clear_faults(self):
        self.install_faults(None)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def begin(self):
        return self.transactions.begin()

    def run_transaction(self, fn, max_attempts=3, rng=None,
                        backoff_base=0.0, sleep=None):
        """Run ``fn(txn)`` in a fresh transaction, committing on return.

        Failures carrying the :class:`~repro.errors.TransientError` mixin
        (deadlock victim, transient disk fault) abort the transaction and
        re-run ``fn`` — deterministically, up to ``max_attempts`` total
        attempts — before the failure is surfaced.  Anything else aborts
        and propagates immediately.  If ``fn`` commits or aborts the
        transaction itself, that outcome is respected.

        With ``rng`` and a positive ``backoff_base``, each restart backs
        off by ``backoff_base * 2**(n-1) * (0.5 + rng.random())`` for
        restart *n* — jitter drawn from the *caller's* RNG (a server
        session RNG in practice), never from the global :mod:`random`
        module state, so chaos scenarios replay bit-identically from a
        seed.  ``sleep`` receives the delay (default :func:`time.sleep`);
        pass a recording stub in tests or a virtual-clock advance in
        deterministic servers.  The defaults restart immediately, as
        before.
        """
        if max_attempts < 1:
            raise StorageError("max_attempts must be at least 1")
        attempt = 1
        while True:
            txn = self.begin()
            try:
                result = fn(txn)
            except Exception as exc:
                crashed = self.faults is not None and self.faults.crashed
                if txn.is_active and not crashed:
                    txn.abort()
                if crashed or not isinstance(exc, TransientError) \
                        or attempt >= max_attempts:
                    raise
                self.txn_restarts += 1
                if rng is not None and backoff_base > 0:
                    delay = (backoff_base * (2 ** (attempt - 1))
                             * (0.5 + rng.random()))
                    if sleep is None:
                        time.sleep(delay)
                    else:
                        sleep(delay)
                attempt += 1
            else:
                if txn.is_active:
                    txn.commit()
                return result

    # ------------------------------------------------------------------
    # file management
    # ------------------------------------------------------------------
    def create_file(self, record_size):
        """Create an empty heap file; returns its file id."""
        file_id = self._next_file_id
        self._next_file_id += 1
        self._files[file_id] = _FileInfo(file_id, record_size)
        return file_id

    def create_index(self, name, kind="btree"):
        """Create an empty index registered under ``name``.

        ``kind`` selects the structure: ``"btree"`` (ordered, supports
        range scans) or ``"hash"`` (equality/full scans only).  Both obey
        the same logical-replay recovery contract — node pages are never
        WAL-logged; the index is rebuilt from winner entries at restart.
        """
        if name in self._indexes:
            raise StorageError(f"index {name!r} already exists")
        file_id = self._next_file_id
        self._next_file_id += 1
        if kind == "btree":
            index = BTree(
                self.pool, file_id, self._allocate_page_no,
                max_keys=self._btree_max_keys,
            )
        elif kind == "hash":
            index = HashIndex(
                self.pool, file_id, self._allocate_page_no,
                n_buckets=self._hash_buckets,
            )
        else:
            raise StorageError(f"unknown index kind {kind!r}")
        self._indexes[name] = index
        return index

    def index(self, name):
        try:
            return self._indexes[name]
        except KeyError:
            raise StorageError(f"unknown index {name!r}") from None

    def _allocate_page_no(self):
        page_no = self._next_page_no
        self._next_page_no += 1
        return page_no

    def _file(self, file_id):
        try:
            return self._files[file_id]
        except KeyError:
            raise StorageError(f"unknown file {file_id}") from None

    # ------------------------------------------------------------------
    # the paper's Figure 2 path
    # ------------------------------------------------------------------
    def lock_page(self, txn, page_id, exclusive=True):
        """Acquire a page lock for ``txn`` (2PL; released at txn end)."""
        mode = EXCLUSIVE if exclusive else SHARED
        self.locks.lock(txn.txn_id, page_id, mode)

    def unlock_page(self, txn, page_id):
        """Drop the pin taken for the page operation.

        Under strict 2PL the lock itself is retained until commit/abort;
        what this releases is the buffer-pool pin, matching SHORE's unfix.
        """
        self.pool.unpin_page(page_id, dirty=False)

    def update_page(self, txn, page, slot, raw):
        """Write ``raw`` into ``slot`` of the (pinned, locked) ``page``."""
        old = page.update(slot, raw)
        lsn = self.log.append(
            txn.txn_id, wal.UPDATE, page_id=page.page_id, slot=slot,
            before=old, after=bytes(raw),
        )
        page.page_lsn = lsn
        page.dirty = True
        return old

    def create_rec(self, txn, file_id, raw):
        """Insert a record, returning its rid ``(page_no, slot)``.

        This follows the paper's call sequence: find the target page in the
        buffer pool (faulting it in from disk if needed), lock it, update
        it, and unlock it.
        """
        info = self._file(file_id)
        if len(raw) != info.record_size:
            raise StorageError("record size does not match file")
        page = self._find_space(info)
        page_id = page.page_id
        try:
            self.lock_page(txn, page_id, exclusive=True)
        except Exception:
            # _find_space pinned the page; a lock conflict/deadlock here
            # must not leak the pin or the frame can never be evicted
            self.pool.unpin_page(page_id, dirty=False)
            raise
        slot = page.insert(raw)
        lsn = self.log.append(
            txn.txn_id, wal.INSERT, page_id=page_id, slot=slot, after=bytes(raw)
        )
        page.page_lsn = lsn
        self.pool.unpin_page(page_id, dirty=True)
        return (page_id.page_no, slot)

    def _find_space(self, info):
        """Return a pinned page with room, extending the file if needed.

        Consults the file's free-space map: pop candidates (lowest page
        number first) until one actually has room, amortized O(1) probes
        per insert regardless of file size — stale candidates are paid
        for once, by the insert that observes them full.
        """
        while True:
            page_no = info.peek_free()
            if page_no is None:
                break
            page_id = PageId(info.file_id, page_no)
            page = self.pool.find_page_in_buffer_pool(page_id)
            if page is None:
                page = self.pool.getpage_from_disk(page_id)
            page.pin_count += 1
            if not page.is_full:
                return page
            info.drop_free(page_no)
            self.pool.unpin_page(page_id, dirty=False)
        page_no = self._allocate_page_no()
        info.page_nos.append(page_no)
        info.note_free(page_no)
        page = Page(PageId(info.file_id, page_no), info.record_size)
        self.pool.add_page(page)
        return page

    # ------------------------------------------------------------------
    # streaming bulk load
    # ------------------------------------------------------------------
    def bulk_load(self, txn, file_id, raws):
        """Streaming fast path: pack ``raws`` directly into fresh pages.

        One X page lock and ONE logical ``BULK_PAGE`` log record per
        packed page (``slot`` carries the record count, ``after`` the
        concatenated images) instead of one INSERT record per row.
        Atomic like any other logged operation: abort compensates each
        page with a single ``CLR_BULK``; recovery redoes/undoes whole
        pages.  Returns the rids in input order.
        """
        info = self._file(file_id)
        capacity = Page(PageId(info.file_id, 0), info.record_size).capacity
        rids = []
        batch = []
        for raw in raws:
            raw = bytes(raw)
            if len(raw) != info.record_size:
                raise StorageError("record size does not match file")
            batch.append(raw)
            if len(batch) == capacity:
                self._bulk_page(txn, info, batch, rids)
                batch = []
        if batch:
            self._bulk_page(txn, info, batch, rids)
        return rids

    def _bulk_page(self, txn, info, batch, rids):
        """Pack one page of records and log it as a single BULK_PAGE."""
        if self.faults is not None:
            self.faults.fire("bulk.page")
        page_no = self._allocate_page_no()
        page_id = PageId(info.file_id, page_no)
        self.lock_page(txn, page_id, exclusive=True)
        page = Page(page_id, info.record_size)
        for raw in batch:
            page.insert(raw)
        lsn = self.log.append(
            txn.txn_id, wal.BULK_PAGE, page_id=page_id, slot=len(batch),
            after=b"".join(batch),
        )
        page.page_lsn = lsn
        self.pool.add_page(page)
        info.page_nos.append(page_no)
        if not page.is_full:
            info.note_free(page_no)
        self.pool.unpin_page(page_id, dirty=True)
        rids.extend((page_no, slot) for slot in range(len(batch)))

    def index_bulk_load(self, txn, index_name, entries, batch_size=512):
        """Bulk-insert ``entries`` (``(key, rid)`` pairs) into an index.

        Entries are sorted and logged as batched ``IDX_BULK`` records
        (one per ``batch_size`` entries, vs one IDX_INSERT per entry on
        the per-row path), then installed bottom-up via the index's
        ``bulk_build`` when it is empty, falling back to per-entry
        inserts otherwise.  Undo is logical: abort deletes the batch's
        entries; recovery replays winner batches like single inserts.
        Returns the number of entries loaded.
        """
        index = self.index(index_name)
        entries = sorted(
            ((key, (rid[0], rid[1])) for key, rid in entries),
            key=lambda entry: (entry[0], entry[1]),
        )
        for start in range(0, len(entries), batch_size):
            chunk = entries[start:start + batch_size]
            if self.faults is not None:
                self.faults.fire("bulk.index")
            self.log.append(
                txn.txn_id, wal.IDX_BULK, page_id=index_name,
                after=wal.encode_index_entries(chunk),
            )
        if entries:
            if index.entry_count == 0:
                index.bulk_build(entries)
            else:
                for key, rid in entries:
                    index.insert(key, rid)
        return len(entries)

    # ------------------------------------------------------------------
    # record access
    # ------------------------------------------------------------------
    def read_rec(self, txn, file_id, rid):
        """Read the record bytes at ``rid`` under a shared lock."""
        page_id = PageId(file_id, rid[0])
        self.lock_page(txn, page_id, exclusive=False)
        page = self.pool.fetch_page(page_id)
        try:
            return page.read(rid[1])
        finally:
            self.pool.unpin_page(page_id, dirty=False)

    def update_rec(self, txn, file_id, rid, raw):
        """Overwrite the record at ``rid``; returns the old bytes."""
        info = self._file(file_id)
        if len(raw) != info.record_size:
            raise StorageError("record size does not match file")
        page_id = PageId(file_id, rid[0])
        self.lock_page(txn, page_id, exclusive=True)
        page = self.pool.fetch_page(page_id)
        try:
            return self.update_page(txn, page, rid[1], raw)
        finally:
            self.pool.unpin_page(page_id, dirty=True)

    def delete_rec(self, txn, file_id, rid):
        """Delete the record at ``rid``; returns the old bytes."""
        info = self._file(file_id)
        page_id = PageId(file_id, rid[0])
        self.lock_page(txn, page_id, exclusive=True)
        page = self.pool.fetch_page(page_id)
        try:
            old = page.delete(rid[1])
            lsn = self.log.append(
                txn.txn_id, wal.DELETE, page_id=page_id, slot=rid[1], before=old
            )
            page.page_lsn = lsn
            info.note_free(rid[0])  # O(log n): the slot is reusable now
            return old
        finally:
            self.pool.unpin_page(page_id, dirty=True)

    def scan_file(self, txn, file_id):
        """Yield ``(rid, raw)`` for every record in the file, page by page.

        Pages are share-locked and pinned only while being scanned.
        """
        info = self._file(file_id)
        for page_no in info.page_nos:
            page_id = PageId(file_id, page_no)
            self.lock_page(txn, page_id, exclusive=False)
            page = self.pool.fetch_page(page_id)
            try:
                for slot, raw in page.slots():
                    yield (page_no, slot), raw
            finally:
                self.pool.unpin_page(page_id, dirty=False)

    def file_page_count(self, file_id):
        return len(self._file(file_id).page_nos)

    def file_record_count(self, file_id):
        """Count live records (scans the file without a transaction)."""
        info = self._file(file_id)
        total = 0
        for page_no in info.page_nos:
            page = self.pool.fetch_page(PageId(file_id, page_no))
            total += page.live_records
            self.pool.unpin_page(page.page_id)
        return total

    # ------------------------------------------------------------------
    # logged index maintenance (logical undo on abort)
    # ------------------------------------------------------------------
    def index_insert(self, txn, index_name, key, rid):
        """Insert into a named index under transactional protection."""
        self.index(index_name).insert(key, rid)
        self.log.append(
            txn.txn_id, wal.IDX_INSERT, page_id=index_name,
            after=_encode_index_entry(key, rid),
        )

    def index_delete(self, txn, index_name, key, rid):
        """Delete from a named index under transactional protection."""
        self.index(index_name).delete(key, rid)
        self.log.append(
            txn.txn_id, wal.IDX_DELETE, page_id=index_name,
            before=_encode_index_entry(key, rid),
        )

    # ------------------------------------------------------------------
    # undo support (called by TransactionManager during rollback)
    # ------------------------------------------------------------------
    def apply_undo(self, record):
        """Reverse the effect of one log record (physical page ops and
        logical index ops)."""
        if record.kind == wal.IDX_INSERT:
            key, rid = _decode_index_entry(record.after)
            self.index(record.page_id).delete(key, rid)
            return
        if record.kind == wal.IDX_DELETE:
            key, rid = _decode_index_entry(record.before)
            self.index(record.page_id).insert(key, rid)
            return
        if record.kind == wal.IDX_BULK:
            index = self.index(record.page_id)
            for key, rid in wal.decode_index_entries(record.after):
                index.delete(key, rid)
            return
        info = self._files.get(record.page_id.file_id)
        page = self.pool.fetch_page(record.page_id)
        try:
            if record.kind == wal.INSERT:
                page.delete(record.slot)
                if info is not None:
                    info.note_free(record.page_id.page_no)
            elif record.kind == wal.DELETE:
                # restore into the same slot
                page._slots[record.slot] = record.before
                page._live += 1
            elif record.kind == wal.UPDATE:
                page.update(record.slot, record.before)
            elif record.kind == wal.BULK_PAGE:
                for slot in range(record.slot):
                    page.delete(slot)
                if info is not None:
                    info.note_free(record.page_id.page_no)
            else:
                raise StorageError(f"cannot undo {record.kind}")
        finally:
            self.pool.unpin_page(record.page_id, dirty=True)

    # ------------------------------------------------------------------
    # durability helpers
    # ------------------------------------------------------------------
    def checkpoint(self):
        """Flush all dirty pages and the log; write a checkpoint record."""
        self.log.flush()
        self.pool.flush_all()
        self.log.append(0, wal.CHECKPOINT)
        self.log.flush()

    # ------------------------------------------------------------------
    # restart recovery
    # ------------------------------------------------------------------
    def restart(self, records=None):
        """Simulated process restart: recover the volume, rebuild
        volatile state, and resume service.  Returns the
        :class:`~repro.db.storage.recovery.RecoveryStats`.

        ``records`` is the log as found after the crash — possibly with a
        torn tail, which is detected and truncated.  It defaults to the
        durable prefix of the current log (what survives losing the
        unflushed tail).  Everything volatile (buffer pool, lock table,
        active transactions, fault injector) is discarded, exactly as a
        process death would; heap catalogs are pruned to the surviving
        pages and every B+-tree is rebuilt logically from the durable
        log's winner index entries.
        """
        self.clear_faults()  # nothing injected survives the dead process
        if records is None:
            records = self.log.records(durable_only=True)
        clean, _dropped = recovery.durable_prefix(records)
        stats = recovery.recover(self.disk, records)
        self.pool = BufferPool(
            self.disk, capacity=self.pool.capacity,
            wal_hook=self._force_log_for,
            disk_retry_limit=self.pool.disk_retry_limit,
        )
        self.locks = LockManager()
        self.log.reset_to(clean)
        next_id = max((r.txn_id for r in clean), default=0) + 1
        self.transactions = TransactionManager(
            self.log, self.locks, next_txn_id=next_id
        )
        self.transactions.attach_storage(self)
        for info in self._files.values():
            info.page_nos = [
                no for no in info.page_nos
                if self.disk.contains(PageId(info.file_id, no))
            ]
            # the FSM is not logged: every surviving page is a candidate
            # again and full ones are shed lazily on first probe
            info.reset_free(info.page_nos)
        replay = recovery.replay_index_entries(clean, stats.winners)
        for name, index in self._indexes.items():
            self.disk.deallocate_file(index.file_id)
            index.attach_pool(self.pool)
            index.reset()
            index.bulk_build(replay.get(name, ()))
        return stats


_encode_index_entry = wal.encode_index_entry
_decode_index_entry = wal.decode_index_entry
