"""Transactions: begin/commit/abort with strict two-phase locking and WAL.

Abort rolls the transaction back by walking its log backchain and applying
undo images, writing compensation (CLR) records as it goes, exactly in the
ARIES style SHORE uses (simplified: page LSNs are maintained but undo is
always applicable because we roll back in memory before any page steal).
"""

from __future__ import annotations

from repro.db.storage import wal
from repro.errors import TransactionError

ACTIVE = "ACTIVE"
COMMITTED = "COMMITTED"
ABORTED = "ABORTED"


class Transaction:
    """Handle for one transaction; created by :class:`TransactionManager`."""

    __slots__ = ("txn_id", "state", "_manager")

    def __init__(self, txn_id, manager):
        self.txn_id = txn_id
        self.state = ACTIVE
        self._manager = manager

    def commit(self, sync=True):
        return self._manager.commit(self, sync=sync)

    def abort(self):
        self._manager.abort(self)

    @property
    def is_active(self):
        return self.state == ACTIVE

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if self.state == ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False


class TransactionManager:
    """Creates transactions and drives commit/abort protocols."""

    def __init__(self, log, lock_manager, storage=None, next_txn_id=1):
        self._log = log
        self._locks = lock_manager
        self._storage = storage  # set late by StorageManager to break cycle
        self._next_txn_id = next_txn_id
        self._active = {}
        #: fault injector, or None; see :mod:`repro.db.storage.faults`
        self.faults = None

    def attach_storage(self, storage):
        self._storage = storage

    def begin(self):
        """Start a new transaction."""
        txn = Transaction(self._next_txn_id, self)
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        self._log.append(txn.txn_id, wal.BEGIN)
        return txn

    def commit(self, txn, sync=True):
        """Commit ``txn``; returns True when the commit is durable.

        With ``sync=False`` the COMMIT record joins the log's pending
        group-commit batch instead of forcing the log itself.  The commit
        is acknowledged (locks released, state COMMITTED) but durability
        is deferred to the group force; a crash before that force loses
        the transaction.  Safe under early lock release because the log
        is a single total order with a monotone durable prefix: any
        transaction that observed this one's effects appended its own
        COMMIT later, so it can only be durable if this one is too.
        """
        self._require_active(txn)
        lsn = self._log.append(txn.txn_id, wal.COMMIT)
        if self.faults is not None:
            # COMMIT is in the log but not yet forced: a crash here makes
            # the outcome depend on whether the tail happens to survive
            self.faults.fire("txn.commit.unforced")
        if sync:
            self._log.flush(lsn)  # commit is durable once the log is forced
            durable = True
        else:
            durable = self._log.commit_deferred(lsn)
        if durable and self.faults is not None:
            self.faults.fire("txn.commit.done")
        self._locks.release_all(txn.txn_id)
        txn.state = COMMITTED
        del self._active[txn.txn_id]
        return durable

    def abort(self, txn):
        self._require_active(txn)
        self._rollback(txn.txn_id)
        self._log.append(txn.txn_id, wal.ABORT)
        self._locks.release_all(txn.txn_id)
        txn.state = ABORTED
        del self._active[txn.txn_id]

    def _rollback(self, txn_id):
        """Walk the backchain undoing updates, emitting CLRs."""
        lsn = self._log.last_lsn(txn_id)
        while lsn >= 0:
            record = self._log.record(lsn)
            if record.kind in (
                wal.UPDATE, wal.INSERT, wal.DELETE,
                wal.IDX_INSERT, wal.IDX_DELETE, wal.IDX_BULK,
            ):
                self._storage.apply_undo(record)
                self._log.append(
                    txn_id,
                    wal.CLR,
                    page_id=record.page_id,
                    slot=record.slot,
                    before=record.after,
                    after=record.before,
                )
            elif record.kind == wal.BULK_PAGE:
                # a whole bulk-loaded page is compensated by one CLR_BULK
                # clearing its ``slot`` leading slots (the page was fresh,
                # so the before-image is empty)
                self._storage.apply_undo(record)
                self._log.append(
                    txn_id,
                    wal.CLR_BULK,
                    page_id=record.page_id,
                    slot=record.slot,
                    before=record.after,
                    after=b"",
                )
            lsn = record.prev_lsn

    def _require_active(self, txn):
        if txn.state != ACTIVE:
            raise TransactionError(f"txn {txn.txn_id} is {txn.state}")

    @property
    def active_count(self):
        return len(self._active)

    def active_ids(self):
        return frozenset(self._active)
