"""Buffer pool with pinning and LRU replacement.

This is the component the paper's motivating example (§3.1) walks through:
``Create_rec`` calls ``Find_page_in_buffer_pool``; only on a pool miss is
``Getpage_from_disk`` invoked.  Those entry points are reproduced here by
name so the traced call graph matches the paper's Figure 2.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import BufferPoolFullError, StorageError, TransientError

DEFAULT_POOL_PAGES = 512

#: attempts per disk read before a transient fault is surfaced as fatal
DEFAULT_DISK_RETRY_LIMIT = 3


class BufferPool:
    """Fixed-capacity page cache over a :class:`DiskManager`.

    Pages are pinned while in use (``pin_count > 0``); only unpinned pages
    are eligible for LRU eviction.  Dirty pages are written back on
    eviction and on :meth:`flush_all`.
    """

    def __init__(self, disk, capacity=DEFAULT_POOL_PAGES, wal_hook=None,
                 disk_retry_limit=DEFAULT_DISK_RETRY_LIMIT):
        if capacity <= 0:
            raise StorageError("buffer pool capacity must be positive")
        if disk_retry_limit < 1:
            raise StorageError("disk retry limit must be at least 1")
        self._disk = disk
        self._capacity = capacity
        self._frames = OrderedDict()  # page_id -> Page, in LRU order
        #: called with the page before any dirty write-back; the storage
        #: manager points this at the log so the write-ahead rule holds
        #: (log records up to page_lsn must be durable before the page is)
        self.wal_hook = wal_hook
        #: fault injector, or None; see :mod:`repro.db.storage.faults`
        self.faults = None
        self.disk_retry_limit = disk_retry_limit
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: pinned frames the victim scan had to skip — a contention
        #: proxy: nonzero means eviction competed with in-use pages
        self.pin_waits = 0
        #: transient disk faults absorbed by retry
        self.disk_retries = 0
        #: deterministic backoff accounting: 2**(attempt-1) ticks per retry
        #: (a simulated clock — no wall-time sleeping in the harness)
        self.backoff_ticks = 0

    # ------------------------------------------------------------------
    # the paper's entry points
    # ------------------------------------------------------------------
    def find_page_in_buffer_pool(self, page_id):
        """Return the resident page for ``page_id`` or ``None`` on a miss."""
        page = self._frames.get(page_id)
        if page is None:
            return None
        self._frames.move_to_end(page_id)
        self.hits += 1
        return page

    def getpage_from_disk(self, page_id):
        """Bring ``page_id`` in from disk, evicting if necessary."""
        self.misses += 1
        self._make_room()
        page = self._read_with_retry(page_id)
        self._frames[page_id] = page
        return page

    def _read_with_retry(self, page_id):
        """Bounded retry-with-backoff around transient disk faults.

        Anything carrying the :class:`~repro.errors.TransientError` mixin
        is retried up to ``disk_retry_limit`` attempts with exponential
        backoff (accounted in ``backoff_ticks``, not slept); the last
        failure — and any non-transient error — propagates unchanged.
        """
        attempt = 1
        while True:
            try:
                return self._disk.read_page(page_id)
            except Exception as exc:
                if not isinstance(exc, TransientError) or \
                        attempt >= self.disk_retry_limit:
                    raise
                self.disk_retries += 1
                self.backoff_ticks += 1 << (attempt - 1)
                attempt += 1

    # ------------------------------------------------------------------
    # public pin/unpin API
    # ------------------------------------------------------------------
    def fetch_page(self, page_id):
        """Pin and return the page, faulting it in if absent."""
        page = self.find_page_in_buffer_pool(page_id)
        if page is None:
            page = self.getpage_from_disk(page_id)
        page.pin_count += 1
        return page

    def add_page(self, page):
        """Install a freshly created page (not yet on disk) and pin it."""
        if page.page_id in self._frames:
            raise StorageError(f"page {page.page_id} already buffered")
        self._make_room()
        page.pin_count += 1
        page.dirty = True
        self._frames[page.page_id] = page

    def unpin_page(self, page_id, dirty=False):
        """Release one pin; mark the page dirty if it was modified."""
        page = self._frames.get(page_id)
        if page is None:
            raise StorageError(f"unpin of non-resident page {page_id}")
        if page.pin_count <= 0:
            raise StorageError(f"unpin of unpinned page {page_id}")
        page.pin_count -= 1
        if dirty:
            page.dirty = True

    def discard_page(self, page_id):
        """Drop a page from the pool without write-back (for deallocation)."""
        page = self._frames.pop(page_id, None)
        if page is not None and page.pin_count > 0:
            raise StorageError(f"discard of pinned page {page_id}")

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def flush_page(self, page_id):
        """Write one dirty page back to disk (keeps it resident)."""
        page = self._frames.get(page_id)
        if page is None:
            return
        if page.dirty:
            self._write_back(page)

    def flush_all(self):
        """Write back every dirty page."""
        for page_id in list(self._frames):
            self.flush_page(page_id)

    def _make_room(self):
        if len(self._frames) < self._capacity:
            return
        skipped = 0
        for page_id, page in self._frames.items():
            if page.pin_count == 0:
                victim_id, victim = page_id, page
                break
            skipped += 1
        else:
            self.pin_waits += skipped
            raise BufferPoolFullError("all buffer frames are pinned")
        self.pin_waits += skipped
        if victim.dirty:
            self._write_back(victim)
        del self._frames[victim_id]
        self.evictions += 1

    def _write_back(self, page):
        """Write a dirty page to disk, honoring the write-ahead rule."""
        if self.wal_hook is not None:
            self.wal_hook(page)
        if self.faults is not None:
            self.faults.fire("pool.writeback")
        self._disk.write_page(page)
        page.dirty = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self):
        return self._capacity

    @property
    def accesses(self):
        """Total lookups (hits + misses) — the unit the flat-insert-cost
        regression gate counts, since wall time is too noisy to ratchet."""
        return self.hits + self.misses

    @property
    def resident_pages(self):
        return len(self._frames)

    def is_resident(self, page_id):
        return page_id in self._frames

    def pin_count(self, page_id):
        page = self._frames.get(page_id)
        return 0 if page is None else page.pin_count

    def stats(self):
        """Access counters as a JSON-ready dict (for workload-build
        telemetry; see :mod:`repro.harness.telemetry`)."""
        accesses = self.hits + self.misses
        return {
            "capacity": self._capacity,
            "resident": len(self._frames),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "pin_waits": self.pin_waits,
            "disk_retries": self.disk_retries,
            "backoff_ticks": self.backoff_ticks,
            "hit_rate": (self.hits / accesses) if accesses else 0.0,
        }
