"""Fixed-width record serialization.

Records are stored in pages as fixed-width byte strings so that a slotted
page can address slots by offset arithmetic, exactly like a fixed-length
record file in a classic storage manager.  The codec is derived from a
:class:`repro.db.exec.schema.Schema`-like description: a sequence of
``(name, type_spec)`` pairs where ``type_spec`` is one of

* ``"int"``    -- signed 64-bit integer
* ``"float"``  -- IEEE-754 double
* ``("str", n)`` -- UTF-8 string padded/truncated to ``n`` bytes
"""

from __future__ import annotations

import struct

from repro.errors import StorageError

_INT = "q"
_FLOAT = "d"


class RecordCodec:
    """Encode/decode tuples of Python values to fixed-width bytes."""

    def __init__(self, type_specs):
        fmt = ["<"]
        self._str_sizes = []
        for spec in type_specs:
            if spec == "int":
                fmt.append(_INT)
                self._str_sizes.append(None)
            elif spec == "float":
                fmt.append(_FLOAT)
                self._str_sizes.append(None)
            elif isinstance(spec, tuple) and spec[0] == "str":
                width = int(spec[1])
                if width <= 0:
                    raise StorageError(f"string width must be positive: {spec}")
                fmt.append(f"{width}s")
                self._str_sizes.append(width)
            else:
                raise StorageError(f"unknown type spec: {spec!r}")
        self._struct = struct.Struct("".join(fmt))
        self._specs = tuple(type_specs)

    @property
    def record_size(self):
        """Size in bytes of one encoded record."""
        return self._struct.size

    @property
    def type_specs(self):
        return self._specs

    def encode(self, values):
        """Encode a tuple of Python values into fixed-width bytes."""
        if len(values) != len(self._str_sizes):
            raise StorageError(
                f"expected {len(self._str_sizes)} values, got {len(values)}"
            )
        prepared = []
        for value, width in zip(values, self._str_sizes):
            if width is None:
                prepared.append(value)
            else:
                raw = value.encode("utf-8")[:width]
                prepared.append(raw)
        try:
            return self._struct.pack(*prepared)
        except struct.error as exc:
            raise StorageError(f"cannot encode record {values!r}: {exc}") from exc

    def decode(self, raw):
        """Decode fixed-width bytes back into a tuple of Python values."""
        try:
            fields = self._struct.unpack(raw)
        except struct.error as exc:
            raise StorageError(f"cannot decode record: {exc}") from exc
        out = []
        for value, width in zip(fields, self._str_sizes):
            if width is None:
                out.append(value)
            else:
                out.append(value.rstrip(b"\x00").decode("utf-8"))
        return tuple(out)
