"""Slotted pages for fixed-width records.

A page is the unit of buffering, locking, and disk I/O.  This module keeps
the in-memory representation (a bytearray plus a slot-occupancy bitmap) and
the serialization to the on-"disk" byte image used by
:class:`repro.db.storage.disk.DiskManager`.

Page byte layout::

    [0:4)   number of slots (capacity actually used so far)
    [4:8)   record size in bytes
    [8:8+ceil(capacity/8))  slot occupancy bitmap
    [...]   fixed-width record slots

Pages are identified by a :class:`PageId` = ``(file_id, page_no)``.
"""

from __future__ import annotations

import struct
from typing import NamedTuple

from repro.db.storage.disk import register_page_kind
from repro.errors import PageFullError, RecordNotFoundError, StorageError

PAGE_SIZE = 4096
_HEADER = struct.Struct("<iiq")


class PageId(NamedTuple):
    """Identity of a page: which file it belongs to and its index there."""

    file_id: int
    page_no: int


class Page:
    """A slotted page of fixed-width records.

    The page tracks a pin count and a dirty flag for the buffer pool, and a
    ``page_lsn`` for write-ahead logging.
    """

    KIND = "D"  # disk-image tag: slotted data page

    __slots__ = (
        "page_id",
        "record_size",
        "capacity",
        "_slots",
        "_live",
        "pin_count",
        "dirty",
        "page_lsn",
    )

    def __init__(self, page_id, record_size, page_size=PAGE_SIZE):
        if record_size <= 0:
            raise StorageError("record size must be positive")
        self.page_id = page_id
        self.record_size = record_size
        usable = page_size - _HEADER.size
        # Each record costs record_size bytes plus 1 bit of bitmap.
        self.capacity = max(1, (usable * 8) // (record_size * 8 + 1))
        if self.capacity * record_size > usable:
            self.capacity = usable // record_size
        self._slots = [None] * self.capacity
        self._live = 0
        self.pin_count = 0
        self.dirty = False
        self.page_lsn = 0

    # ------------------------------------------------------------------
    # record operations
    # ------------------------------------------------------------------
    def insert(self, raw):
        """Insert an encoded record, returning its slot number."""
        if len(raw) != self.record_size:
            raise StorageError(
                f"record is {len(raw)} bytes, page stores {self.record_size}"
            )
        if self._live >= self.capacity:
            raise PageFullError(f"page {self.page_id} is full")
        for slot, existing in enumerate(self._slots):
            if existing is None:
                self._slots[slot] = bytes(raw)
                self._live += 1
                return slot
        raise PageFullError(f"page {self.page_id} is full")

    def read(self, slot):
        """Return the encoded record at ``slot``."""
        raw = self._slot_or_raise(slot)
        return raw

    def update(self, slot, raw):
        """Overwrite the record at ``slot``, returning the old bytes."""
        old = self._slot_or_raise(slot)
        if len(raw) != self.record_size:
            raise StorageError("update record size mismatch")
        self._slots[slot] = bytes(raw)
        return old

    def delete(self, slot):
        """Remove the record at ``slot``, returning the old bytes."""
        old = self._slot_or_raise(slot)
        self._slots[slot] = None
        self._live -= 1
        return old

    def slots(self):
        """Yield ``(slot, raw)`` for every live record in slot order."""
        for slot, raw in enumerate(self._slots):
            if raw is not None:
                yield slot, raw

    def _slot_or_raise(self, slot):
        if not 0 <= slot < self.capacity or self._slots[slot] is None:
            raise RecordNotFoundError(f"no record in slot {slot} of {self.page_id}")
        return self._slots[slot]

    # ------------------------------------------------------------------
    # capacity bookkeeping
    # ------------------------------------------------------------------
    @property
    def live_records(self):
        return self._live

    @property
    def is_full(self):
        return self._live >= self.capacity

    @property
    def is_empty(self):
        return self._live == 0

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_bytes(self):
        """Serialize this page to its on-disk byte image."""
        bitmap_len = (self.capacity + 7) // 8
        bitmap = bytearray(bitmap_len)
        body = bytearray()
        for slot, raw in enumerate(self._slots):
            if raw is None:
                body.extend(b"\x00" * self.record_size)
            else:
                bitmap[slot // 8] |= 1 << (slot % 8)
                body.extend(raw)
        header = _HEADER.pack(self.capacity, self.record_size, self.page_lsn)
        return header + bytes(bitmap) + bytes(body)

    @classmethod
    def from_bytes(cls, page_id, image, page_size=PAGE_SIZE):
        """Deserialize a page image produced by :meth:`to_bytes`."""
        capacity, record_size, page_lsn = _HEADER.unpack_from(image, 0)
        page = cls(page_id, record_size, page_size=page_size)
        page.page_lsn = page_lsn
        if page.capacity < capacity:
            raise StorageError("page image capacity exceeds geometry")
        page.capacity = capacity
        page._slots = [None] * capacity
        bitmap_len = (capacity + 7) // 8
        bitmap = image[_HEADER.size : _HEADER.size + bitmap_len]
        base = _HEADER.size + bitmap_len
        live = 0
        for slot in range(capacity):
            if bitmap[slot // 8] & (1 << (slot % 8)):
                start = base + slot * record_size
                page._slots[slot] = bytes(image[start : start + record_size])
                live += 1
        page._live = live
        return page


register_page_kind(Page.KIND, Page.from_bytes)
