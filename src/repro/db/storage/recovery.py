"""Crash recovery: ARIES-lite redo/undo over the simulated volume.

``recover`` takes the disk volume as it stood at the crash plus the
*durable* prefix of the write-ahead log, and brings the volume to a state
reflecting exactly the committed transactions:

1. **Analysis** — find winners (transactions with a durable COMMIT) and
   losers (everything else that wrote).
2. **Redo** — replay every page operation whose effect is missing
   (``page_lsn < record.lsn``), recreating never-flushed pages.
3. **Undo** — roll back loser operations in reverse LSN order.

Pages are manipulated through their disk images so recovery does not
depend on any surviving in-memory state.

Two classes of physical damage are tolerated rather than fatal:

* **Torn log tail** — :func:`durable_prefix` validates the record stream
  and truncates at the first corrupt record; everything past a tear is
  treated as never written (counted in ``RecoveryStats.torn_records``).
* **Torn data page** — a page whose image fails its checksum is treated
  as absent and rebuilt entirely from the log (counted in
  ``RecoveryStats.torn_pages``).  This is sound because the write-ahead
  rule guarantees every effect on a disk-written page is in the durable
  log, so redo from a blank page reconstructs it exactly.

Index pages are not WAL-logged; :func:`replay_index_entries` extracts the
logical winner index operations so the storage manager can rebuild each
B+-tree from scratch at restart.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.db.storage import wal
from repro.db.storage.page import Page, PageId
from repro.errors import RecoveryError, TornPageError


class RecoveryStats(NamedTuple):
    winners: frozenset
    losers: frozenset
    redone: int
    undone: int
    torn_records: int = 0  # log-tail records dropped as corrupt/unreachable
    torn_pages: int = 0  # data pages rebuilt after failing their checksum


_PAGE_OPS = frozenset({
    wal.INSERT, wal.UPDATE, wal.DELETE, wal.CLR, wal.BULK_PAGE, wal.CLR_BULK,
})
_IDX_OPS = frozenset({wal.IDX_INSERT, wal.IDX_DELETE, wal.IDX_BULK})
_CLR_OPS = frozenset({wal.CLR, wal.CLR_BULK})
# BULK_PAGE/CLR_BULK carry a whole page of fixed-width records in one
# image; ``slot`` holds the record count, so the per-record size divides
# out of the image length.
_BULK_PAGE_OPS = frozenset({wal.BULK_PAGE, wal.CLR_BULK})


def durable_prefix(records):
    """Validate a possibly-torn log tail; return ``(clean, dropped)``.

    A crash can leave garbage past the last forced record (a torn log
    tail).  A record is trusted only if it is well-formed — known kind,
    LSN equal to its position — and every record before it is too;
    validation stops at the first bad record, mirroring how a real log
    scan stops at the first checksum failure.  ``clean`` is the trusted
    prefix, ``dropped`` how many trailing records were discarded.
    """
    clean = []
    for position, record in enumerate(records):
        if record.kind not in wal._TYPES or record.lsn != position:
            break
        clean.append(record)
    return clean, len(records) - len(clean)


def recover(disk, records):
    """Replay ``records`` against ``disk``; returns :class:`RecoveryStats`.

    ``records`` may include a torn tail — it is truncated here via
    :func:`durable_prefix` before analysis, so callers can hand over the
    raw post-crash log without pre-validating it.
    """
    records, torn_records = durable_prefix(records)
    winners, losers = _analyze(records)
    pages = {}
    torn_pages = 0

    def load(page_id, record):
        nonlocal torn_pages
        page = pages.get(page_id)
        if page is None:
            page = None
            if disk.contains(page_id):
                try:
                    page = disk.read_page(page_id)
                except TornPageError:
                    # write-ahead rule: all of this page's durable effects
                    # are in the log, so rebuilding from blank is exact
                    torn_pages += 1
            if page is None:
                size = _record_size_of(record)
                if size == 0:
                    raise RecoveryError(f"cannot size page {page_id} from log")
                page = Page(page_id, size)
                page.page_lsn = -1
            pages[page_id] = page
        return page

    redone = 0
    for record in records:
        if record.kind not in _PAGE_OPS:
            continue
        if not isinstance(record.page_id, PageId):
            continue  # logical index op (page_id is the index name)
        page = load(record.page_id, record)
        if page.page_lsn >= record.lsn:
            continue  # effect already on disk
        _apply_redo(page, record)
        page.page_lsn = record.lsn
        redone += 1

    compensated = _compensated(records, losers)
    undone = 0
    for record in reversed(records):
        if record.kind not in _PAGE_OPS or record.txn_id not in losers:
            continue
        if record.kind in _CLR_OPS:
            continue  # compensation is never undone
        if record.lsn in compensated:
            continue  # already rolled back online; redo replayed its CLR
        if not isinstance(record.page_id, PageId):
            continue
        page = pages.get(record.page_id)
        if page is None:
            page = load(record.page_id, record)
        _apply_undo(page, record)
        undone += 1

    for page in pages.values():
        disk.write_page(page)
    return RecoveryStats(
        frozenset(winners), frozenset(losers), redone, undone,
        torn_records, torn_pages,
    )


def replay_index_entries(records, winners):
    """Net logical index contents from the durable log.

    B+-tree node pages are never WAL-logged, so after a crash each index
    is rebuilt from scratch: replay the IDX_INSERT/IDX_DELETE stream of
    *winner* transactions in log order (loser index ops — and the CLRs
    that would compensate them — are simply skipped, which is their
    undo).  Returns ``{index_name: [(key, rid), ...]}`` of surviving
    entries, in insertion order.
    """
    live = {}  # index_name -> {(key, rid) -> None} (ordered set)
    for record in records:
        if record.kind not in _IDX_OPS or record.txn_id not in winners:
            continue
        entries = live.setdefault(record.page_id, {})
        if record.kind == wal.IDX_INSERT:
            entries[wal.decode_index_entry(record.after)] = None
        elif record.kind == wal.IDX_BULK:
            for key, rid in wal.decode_index_entries(record.after):
                entries[(key, rid)] = None
        else:
            entries.pop(wal.decode_index_entry(record.before), None)
    return {name: list(entries) for name, entries in live.items()}


_UNDOABLE = frozenset({
    wal.UPDATE, wal.INSERT, wal.DELETE, wal.IDX_INSERT, wal.IDX_DELETE,
    wal.BULK_PAGE, wal.IDX_BULK,
})


def _compensated(records, losers):
    """LSNs of loser operations already compensated before the crash.

    A loser that aborted online wrote CLRs; re-undoing its operations at
    recovery would clobber later winners that reused the same slots (the
    abort released its locks, so later transactions legitimately wrote
    there).  Walking each loser's backchain newest-to-oldest, every CLR
    pays for the next undoable operation encountered — rollback emits
    CLRs in exact reverse operation order, so counting pairs them up.
    Operations left unpaid carry no CLR, which under strict 2PL means
    the abort never finished and the txn's locks were still held at the
    crash: those are safe (and necessary) to undo.
    """
    last = {}
    for record in records:
        last[record.txn_id] = record.lsn
    skip = set()
    for txn_id in losers:
        lsn = last.get(txn_id, -1)
        unpaid_clrs = 0
        while lsn >= 0:
            record = records[lsn]
            if record.kind in _CLR_OPS:
                unpaid_clrs += 1
            elif record.kind in _UNDOABLE and unpaid_clrs:
                unpaid_clrs -= 1
                skip.add(record.lsn)
            lsn = record.prev_lsn
    return skip


def _analyze(records):
    writers = set()
    winners = set()
    for record in records:
        if record.kind in _PAGE_OPS or record.kind in _IDX_OPS:
            writers.add(record.txn_id)
        elif record.kind == wal.COMMIT:
            winners.add(record.txn_id)
    return winners, writers - winners


def _record_size_of(record):
    """Per-record byte size implied by a page-op log record."""
    if record.kind in _BULK_PAGE_OPS:
        image = record.after or record.before
        count = record.slot
        if count <= 0 or len(image) % count:
            raise RecoveryError(
                f"malformed bulk record at lsn {record.lsn}"
            )
        return len(image) // count
    return len(record.after) or len(record.before)


def _apply_redo(page, record):
    if record.kind == wal.INSERT:
        _force_slot(page, record.slot, record.after)
    elif record.kind == wal.UPDATE:
        _force_slot(page, record.slot, record.after)
    elif record.kind == wal.DELETE:
        _clear_slot(page, record.slot)
    elif record.kind == wal.BULK_PAGE:
        size = _record_size_of(record)
        for index in range(record.slot):
            _force_slot(page, index,
                        record.after[index * size:(index + 1) * size])
    elif record.kind == wal.CLR_BULK:
        for index in range(record.slot):
            _clear_slot(page, index)
    elif record.kind == wal.CLR:
        if record.after:
            _force_slot(page, record.slot, record.after)
        else:
            _clear_slot(page, record.slot)
    else:
        raise RecoveryError(f"cannot redo {record.kind}")


def _apply_undo(page, record):
    if record.kind == wal.INSERT:
        _clear_slot(page, record.slot)
    elif record.kind == wal.UPDATE:
        _force_slot(page, record.slot, record.before)
    elif record.kind == wal.DELETE:
        _force_slot(page, record.slot, record.before)
    elif record.kind == wal.BULK_PAGE:
        for index in range(record.slot):
            _clear_slot(page, index)
    else:
        raise RecoveryError(f"cannot undo {record.kind}")


def _force_slot(page, slot, raw):
    if page._slots[slot] is None:
        page._live += 1
    page._slots[slot] = bytes(raw)


def _clear_slot(page, slot):
    if page._slots[slot] is not None:
        page._live -= 1
    page._slots[slot] = None
