"""Crash recovery: ARIES-lite redo/undo over the simulated volume.

``recover`` takes the disk volume as it stood at the crash plus the
*durable* prefix of the write-ahead log, and brings the volume to a state
reflecting exactly the committed transactions:

1. **Analysis** — find winners (transactions with a durable COMMIT) and
   losers (everything else that wrote).
2. **Redo** — replay every page operation whose effect is missing
   (``page_lsn < record.lsn``), recreating never-flushed pages.
3. **Undo** — roll back loser operations in reverse LSN order.

Pages are manipulated through their disk images so recovery does not
depend on any surviving in-memory state.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.db.storage import wal
from repro.db.storage.page import Page
from repro.errors import RecoveryError


class RecoveryStats(NamedTuple):
    winners: frozenset
    losers: frozenset
    redone: int
    undone: int


_PAGE_OPS = frozenset({wal.INSERT, wal.UPDATE, wal.DELETE, wal.CLR})


def recover(disk, records):
    """Replay ``records`` (durable log) against ``disk``; returns stats."""
    winners, losers = _analyze(records)
    pages = {}

    def load(page_id, record):
        page = pages.get(page_id)
        if page is None:
            if disk.contains(page_id):
                page = disk.read_page(page_id)
            else:
                size = len(record.after) or len(record.before)
                if size == 0:
                    raise RecoveryError(f"cannot size page {page_id} from log")
                page = Page(page_id, size)
                page.page_lsn = -1
            pages[page_id] = page
        return page

    redone = 0
    for record in records:
        if record.kind not in _PAGE_OPS:
            continue
        page = load(record.page_id, record)
        if page.page_lsn >= record.lsn:
            continue  # effect already on disk
        _apply_redo(page, record)
        page.page_lsn = record.lsn
        redone += 1

    undone = 0
    for record in reversed(records):
        if record.kind not in _PAGE_OPS or record.txn_id not in losers:
            continue
        if record.kind == wal.CLR:
            continue  # compensation is never undone
        page = pages.get(record.page_id)
        if page is None:
            page = load(record.page_id, record)
        _apply_undo(page, record)
        undone += 1

    for page in pages.values():
        disk.write_page(page)
    return RecoveryStats(frozenset(winners), frozenset(losers), redone, undone)


def _analyze(records):
    writers = set()
    winners = set()
    for record in records:
        if record.kind in _PAGE_OPS:
            writers.add(record.txn_id)
        elif record.kind == wal.COMMIT:
            winners.add(record.txn_id)
    return winners, writers - winners


def _apply_redo(page, record):
    if record.kind == wal.INSERT:
        _force_slot(page, record.slot, record.after)
    elif record.kind == wal.UPDATE:
        _force_slot(page, record.slot, record.after)
    elif record.kind == wal.DELETE:
        _clear_slot(page, record.slot)
    elif record.kind == wal.CLR:
        if record.after:
            _force_slot(page, record.slot, record.after)
        else:
            _clear_slot(page, record.slot)
    else:
        raise RecoveryError(f"cannot redo {record.kind}")


def _apply_undo(page, record):
    if record.kind == wal.INSERT:
        _clear_slot(page, record.slot)
    elif record.kind == wal.UPDATE:
        _force_slot(page, record.slot, record.before)
    elif record.kind == wal.DELETE:
        _force_slot(page, record.slot, record.before)
    else:
        raise RecoveryError(f"cannot undo {record.kind}")


def _force_slot(page, slot, raw):
    if page._slots[slot] is None:
        page._live += 1
    page._slots[slot] = bytes(raw)


def _clear_slot(page, slot):
    if page._slots[slot] is not None:
        page._live -= 1
    page._slots[slot] = None
