"""Page-based B+-tree index.

Keys are signed 64-bit integers; values are record ids ``(page_no, slot)``.
Duplicate keys are supported by ordering entries on the *composite* key
``(key, page_no, slot)``, which is unique, so descent always reaches the
exact leaf holding an entry and deletion needs no leaf-chain special cases.

Nodes are pages managed by the buffer pool and serialized to the simulated
disk like data pages, so index traversal exercises the same
``find_page_in_buffer_pool`` / ``getpage_from_disk`` call paths the paper's
storage manager does.

The fanout defaults to what fits in a 4KB page but can be lowered to force
deep trees and frequent splits in tests.
"""

from __future__ import annotations

import struct

from repro.db.storage.disk import register_page_kind
from repro.db.storage.page import PAGE_SIZE, PageId
from repro.errors import StorageError

_NODE_HEADER = struct.Struct("<biii")  # is_leaf, count, next_leaf, max_keys
_LEAF_ENTRY = struct.Struct("<qii")  # key, rid page_no, rid slot
_INNER_ENTRY = struct.Struct("<qiii")  # sep key, sep page_no, sep slot, child
_NO_PAGE = -1
_RID_MIN = (-(2**31), -(2**31))
_RID_MAX = (2**31 - 1, 2**31 - 1)

DEFAULT_MAX_KEYS = (PAGE_SIZE - _NODE_HEADER.size) // _INNER_ENTRY.size - 2


class BTreeNode:
    """One B+-tree node, stored as a page.

    ``keys`` holds composite ``(key, page_no, slot)`` tuples.  Leaf nodes
    pair them with a ``next_leaf`` sibling pointer; internal nodes hold
    ``len(keys) + 1`` children where child ``i`` covers composites
    ``<= keys[i]`` and the last child covers the rest.
    """

    KIND = "B"

    __slots__ = (
        "page_id",
        "is_leaf",
        "keys",
        "children",
        "next_leaf",
        "max_keys",
        "pin_count",
        "dirty",
        "page_lsn",
    )

    def __init__(self, page_id, is_leaf, max_keys):
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys = []  # composite (key, page_no, slot)
        self.children = []  # internal only: page numbers
        self.next_leaf = _NO_PAGE
        self.max_keys = max_keys
        self.pin_count = 0
        self.dirty = False
        self.page_lsn = 0

    @property
    def is_full(self):
        return len(self.keys) > self.max_keys

    def min_keys(self):
        return self.max_keys // 2

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_bytes(self):
        parts = [
            _NODE_HEADER.pack(
                1 if self.is_leaf else 0, len(self.keys), self.next_leaf, self.max_keys
            )
        ]
        if self.is_leaf:
            for key, page_no, slot in self.keys:
                parts.append(_LEAF_ENTRY.pack(key, page_no, slot))
        else:
            for i, (key, page_no, slot) in enumerate(self.keys):
                parts.append(_INNER_ENTRY.pack(key, page_no, slot, self.children[i]))
            parts.append(_INNER_ENTRY.pack(0, 0, 0, self.children[-1]))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, page_id, image):
        is_leaf, count, next_leaf, max_keys = _NODE_HEADER.unpack_from(image, 0)
        node = cls(page_id, bool(is_leaf), max_keys)
        node.next_leaf = next_leaf
        offset = _NODE_HEADER.size
        if node.is_leaf:
            for _ in range(count):
                node.keys.append(_LEAF_ENTRY.unpack_from(image, offset))
                offset += _LEAF_ENTRY.size
        else:
            for _ in range(count):
                key, page_no, slot, child = _INNER_ENTRY.unpack_from(image, offset)
                node.keys.append((key, page_no, slot))
                node.children.append(child)
                offset += _INNER_ENTRY.size
            _k, _p, _s, child = _INNER_ENTRY.unpack_from(image, offset)
            node.children.append(child)
        return node


register_page_kind(BTreeNode.KIND, BTreeNode.from_bytes)


def _position(keys, composite):
    """Leftmost insertion point for ``composite`` in a sorted list."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < composite:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BTree:
    """B+-tree over a buffer pool.

    The tree owns a file id in the storage manager's page namespace; node
    page numbers come from the caller-provided allocator so that the tree
    shares the volume with heap files.
    """

    def __init__(self, pool, file_id, allocate_page_no, max_keys=DEFAULT_MAX_KEYS):
        if max_keys < 3:
            raise StorageError("B+-tree needs max_keys >= 3")
        self._pool = pool
        self._file_id = file_id
        self._allocate = allocate_page_no
        self._max_keys = max_keys
        self.reset()

    def reset(self):
        """(Re)initialize to an empty tree with a fresh root leaf.

        Crash recovery rebuilds indexes logically — node pages are not
        WAL-logged, so after deallocating the stale on-disk nodes the
        tree is reset and repopulated from the durable log's winner
        index entries (see ``recovery.replay_index_entries``).
        """
        root = self._new_node(is_leaf=True)
        self._root_no = root.page_id.page_no
        self._pool.unpin_page(root.page_id, dirty=True)
        self.height = 1
        self.entry_count = 0

    # ------------------------------------------------------------------
    # node helpers (buffer-pool mediated)
    # ------------------------------------------------------------------
    def _new_node(self, is_leaf):
        page_no = self._allocate()
        node = BTreeNode(PageId(self._file_id, page_no), is_leaf, self._max_keys)
        self._pool.add_page(node)
        return node

    def _fetch(self, page_no):
        return self._pool.fetch_page(PageId(self._file_id, page_no))

    def _release(self, node, dirty=False):
        self._pool.unpin_page(node.page_id, dirty=dirty)

    @property
    def root_page_no(self):
        return self._root_no

    @property
    def file_id(self):
        return self._file_id

    def attach_pool(self, pool):
        """Point the tree at a replacement buffer pool (process restart
        discards the old pool; node pages refault from disk)."""
        self._pool = pool

    # ------------------------------------------------------------------
    # descent
    # ------------------------------------------------------------------
    def _descend(self, composite):
        """Return (leaf, path); path entries are (node, child_idx), pinned."""
        path = []
        node = self._fetch(self._root_no)
        while not node.is_leaf:
            idx = _position(node.keys, composite)
            path.append((node, idx))
            node = self._fetch(node.children[idx])
        return node, path

    def _release_path(self, path):
        for node, _idx in path:
            self._release(node)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def search(self, key):
        """Return the list of rids stored under ``key`` (empty if none)."""
        return [rid for _key, rid in self.range_scan(key, key)]

    def range_scan(self, lo=None, hi=None, include_hi=True):
        """Yield ``(key, rid)`` for keys in [lo, hi] (or half-open bounds).

        The current leaf stays pinned between yields and is released even
        if the consumer abandons the generator early.
        """
        if lo is None:
            leaf = self._leftmost_leaf()
            pos = 0
        else:
            leaf, path = self._descend((lo,) + _RID_MIN)
            self._release_path(path)
            pos = _position(leaf.keys, (lo,) + _RID_MIN)
        try:
            while True:
                while pos < len(leaf.keys):
                    key, page_no, slot = leaf.keys[pos]
                    if hi is not None and (key > hi or (key == hi and not include_hi)):
                        return
                    yield key, (page_no, slot)
                    pos += 1
                if leaf.next_leaf == _NO_PAGE:
                    return
                nxt = self._fetch(leaf.next_leaf)
                self._release(leaf)
                leaf = nxt
                pos = 0
        finally:
            self._release(leaf)

    def _leftmost_leaf(self):
        node = self._fetch(self._root_no)
        while not node.is_leaf:
            child = self._fetch(node.children[0])
            self._release(node)
            node = child
        return node

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key, rid):
        """Insert ``key -> rid``."""
        composite = (key, rid[0], rid[1])
        leaf, path = self._descend(composite)
        pos = _position(leaf.keys, composite)
        leaf.keys.insert(pos, composite)
        self.entry_count += 1
        self._split_upward(leaf, path)

    def _split_upward(self, node, path):
        """Split overflowing nodes up the (pinned) path, then release it."""
        while node.is_full:
            sibling, sep = self._split(node)
            if path:
                parent, idx = path.pop()
                parent.keys.insert(idx, sep)
                parent.children.insert(idx + 1, sibling.page_id.page_no)
                self._release(node, dirty=True)
                self._release(sibling, dirty=True)
                node = parent
            else:
                new_root = self._new_node(is_leaf=False)
                new_root.keys = [sep]
                new_root.children = [node.page_id.page_no, sibling.page_id.page_no]
                self._root_no = new_root.page_id.page_no
                self.height += 1
                self._release(node, dirty=True)
                self._release(sibling, dirty=True)
                self._release(new_root, dirty=True)
                return
        self._release(node, dirty=True)
        self._release_path(path)

    def _split(self, node):
        """Split ``node`` in half; return (new right sibling, separator)."""
        mid = len(node.keys) // 2
        sibling = self._new_node(node.is_leaf)
        if node.is_leaf:
            sep = node.keys[mid - 1]  # max composite staying left
            sibling.keys = node.keys[mid:]
            node.keys = node.keys[:mid]
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling.page_id.page_no
        else:
            sep = node.keys[mid]
            sibling.keys = node.keys[mid + 1 :]
            sibling.children = node.children[mid + 1 :]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
        return sibling, sep

    # ------------------------------------------------------------------
    # bulk build
    # ------------------------------------------------------------------
    def bulk_build(self, entries):
        """Bottom-up build from ``(key, rid)`` entries into an empty tree.

        Sorts the composites, packs leaves left-to-right to ``max_keys``
        (splitting the final two leaves evenly so every non-root node
        meets ``min_keys``), then builds each internal level the same
        way, with each separator the max composite of its left subtree.
        Logically identical to inserting every entry, but with no
        per-entry descent or splits.  Used by the streaming bulk loader
        and by restart's logical index replay.  Returns the entry count.
        """
        if self.entry_count:
            raise StorageError("bulk_build requires an empty tree")
        composites = sorted((key, rid[0], rid[1]) for key, rid in entries)
        if not composites:
            return 0
        if len(set(composites)) != len(composites):
            raise StorageError("duplicate composite keys in bulk build")
        max_k = self._max_keys
        min_k = max_k // 2
        chunks = [composites[i:i + max_k]
                  for i in range(0, len(composites), max_k)]
        if len(chunks) > 1 and len(chunks[-1]) < min_k:
            merged = chunks[-2] + chunks[-1]
            half = len(merged) // 2
            chunks[-2:] = [merged[:half], merged[half:]]
        # the empty root leaf from reset() becomes the leftmost leaf
        leaf = self._fetch(self._root_no)
        level = []  # (page_no, max composite of subtree)
        for i, chunk in enumerate(chunks):
            if i:
                nxt = self._new_node(is_leaf=True)
                leaf.next_leaf = nxt.page_id.page_no
                self._release(leaf, dirty=True)
                leaf = nxt
            leaf.keys = list(chunk)
            level.append((leaf.page_id.page_no, chunk[-1]))
        self._release(leaf, dirty=True)
        self.height = 1
        while len(level) > 1:
            fan = max_k + 1  # children per internal node
            groups = [level[i:i + fan] for i in range(0, len(level), fan)]
            if len(groups) > 1 and len(groups[-1]) < min_k + 1:
                merged = groups[-2] + groups[-1]
                half = len(merged) // 2
                groups[-2:] = [merged[:half], merged[half:]]
            parents = []
            for group in groups:
                node = self._new_node(is_leaf=False)
                node.children = [page_no for page_no, _max in group]
                node.keys = [sep for _page_no, sep in group[:-1]]
                parents.append((node.page_id.page_no, group[-1][1]))
                self._release(node, dirty=True)
            level = parents
            self.height += 1
        self._root_no = level[0][0]
        self.entry_count = len(composites)
        return self.entry_count

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, key, rid=None):
        """Delete one entry with ``key`` (matching ``rid`` if given).

        Returns True if an entry was removed.  Underflowing nodes borrow
        from or merge with a sibling, shrinking the tree when the root
        empties.
        """
        if rid is None:
            rids = self.search(key)
            if not rids:
                return False
            rid = rids[0]
        composite = (key, rid[0], rid[1])
        leaf, path = self._descend(composite)
        pos = _position(leaf.keys, composite)
        if pos >= len(leaf.keys) or leaf.keys[pos] != composite:
            self._release(leaf)
            self._release_path(path)
            return False
        del leaf.keys[pos]
        self.entry_count -= 1
        self._rebalance_upward(leaf, path)
        return True

    def _rebalance_upward(self, node, path):
        while path and len(node.keys) < node.min_keys():
            parent, idx = path.pop()
            self._fix_underflow(parent, idx, node)
            node = parent
        if not path and not node.is_leaf and len(node.keys) == 0:
            # shrink: root has a single child
            old_root = node
            self._root_no = node.children[0]
            self.height -= 1
            self._release(old_root, dirty=True)
            self._pool.discard_page(old_root.page_id)
            return
        self._release(node, dirty=True)
        self._release_path(path)

    def _fix_underflow(self, parent, idx, node):
        """Borrow from or merge with a sibling of ``node`` (child ``idx``
        of ``parent``).  ``node`` is released here; parent stays pinned."""
        left = right = None
        node_consumed = False
        if idx > 0:
            left = self._fetch(parent.children[idx - 1])
        if idx < len(parent.children) - 1:
            right = self._fetch(parent.children[idx + 1])
        try:
            if left is not None and len(left.keys) > left.min_keys():
                self._borrow_from_left(parent, idx, left, node)
                return
            if right is not None and len(right.keys) > right.min_keys():
                self._borrow_from_right(parent, idx, node, right)
                return
            if left is not None:
                # node is folded into left and discarded inside _merge
                self._merge(parent, idx - 1, left, node)
                node_consumed = True
            elif right is not None:
                self._merge(parent, idx, node, right)
                right = None
        finally:
            if left is not None:
                self._release(left, dirty=True)
            if right is not None:
                self._release(right)
            if not node_consumed:
                self._release(node, dirty=True)

    def _borrow_from_left(self, parent, idx, left, node):
        if node.is_leaf:
            node.keys.insert(0, left.keys.pop())
            parent.keys[idx - 1] = left.keys[-1]
        else:
            node.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            node.children.insert(0, left.children.pop())
        left.dirty = True
        parent.dirty = True

    def _borrow_from_right(self, parent, idx, node, right):
        if node.is_leaf:
            moved = right.keys.pop(0)
            node.keys.append(moved)
            parent.keys[idx] = moved
        else:
            node.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            node.children.append(right.children.pop(0))
        right.dirty = True
        parent.dirty = True

    def _merge(self, parent, left_idx, left, right):
        """Fold ``right`` into ``left``; both are pinned by the caller."""
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_idx]
        del parent.children[left_idx + 1]
        left.dirty = True
        parent.dirty = True
        right.keys = []
        right.children = []
        self._release(right, dirty=True)
        self._pool.discard_page(right.page_id)

    # ------------------------------------------------------------------
    # validation (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self):
        """Verify ordering, fanout, and leaf-chain invariants; raise on
        violation.  Returns the number of entries seen."""
        leaves = []
        count = self._check_node(self._root_no, None, None, leaves, depth=0)
        composites = []
        for leaf_no in leaves:
            node = self._fetch(leaf_no)
            composites.extend(node.keys)
            self._release(node)
        if composites != sorted(composites):
            raise StorageError("leaf chain keys not sorted")
        if len(set(composites)) != len(composites):
            raise StorageError("duplicate composite keys in leaves")
        if count != self.entry_count:
            raise StorageError(f"entry_count {self.entry_count} != actual {count}")
        # leaf chain must reach exactly the leaves found by traversal
        chain = []
        node = self._leftmost_leaf()
        while True:
            chain.append(node.page_id.page_no)
            nxt_no = node.next_leaf
            self._release(node)
            if nxt_no == _NO_PAGE:
                break
            node = self._fetch(nxt_no)
        if chain != leaves:
            raise StorageError("leaf chain does not match tree traversal")
        return count

    def _check_node(self, page_no, lo, hi, leaves, depth):
        node = self._fetch(page_no)
        try:
            for composite in node.keys:
                if lo is not None and composite <= lo:
                    raise StorageError(f"composite {composite} at/below bound {lo}")
                if hi is not None and composite > hi:
                    raise StorageError(f"composite {composite} above bound {hi}")
            if sorted(node.keys) != node.keys:
                raise StorageError("node keys not sorted")
            if depth > 0 and len(node.keys) < node.min_keys():
                raise StorageError("non-root node underflow")
            if node.is_leaf:
                leaves.append(page_no)
                return len(node.keys)
            if len(node.children) != len(node.keys) + 1:
                raise StorageError("internal node child count mismatch")
            total = 0
            bounds = [lo] + node.keys + [hi]
            for i, child in enumerate(node.children):
                total += self._check_node(
                    child, bounds[i], bounds[i + 1], leaves, depth + 1
                )
            return total
        finally:
            self._release(node)
