"""Two-phase locking.

Shared/exclusive locks on arbitrary hashable resources (page ids, record
ids, file ids).  The engine schedules queries cooperatively in one OS
thread, so lock *waits* are surfaced to the caller: ``try_lock`` returns
``False`` on conflict and the scheduler re-runs the query's quantum later.
A wait-for graph is maintained so genuine deadlocks raise
:class:`~repro.errors.DeadlockError` instead of livelocking.
"""

from __future__ import annotations

from repro.errors import DeadlockError, LockConflictError, StorageError

SHARED = "S"
EXCLUSIVE = "X"

_COMPATIBLE = {
    (SHARED, SHARED): True,
    (SHARED, EXCLUSIVE): False,
    (EXCLUSIVE, SHARED): False,
    (EXCLUSIVE, EXCLUSIVE): False,
}


class _LockEntry:
    __slots__ = ("holders",)

    def __init__(self):
        self.holders = {}  # txn_id -> mode


class LockManager:
    """Lock table with S/X modes, upgrades, and deadlock detection."""

    def __init__(self):
        self._table = {}  # resource -> _LockEntry
        self._held = {}  # txn_id -> set of resources
        self._waits_for = {}  # txn_id -> set of txn_ids
        self.grants = 0
        self.conflicts = 0

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------
    def try_lock(self, txn_id, resource, mode):
        """Attempt to acquire; returns True on grant, False on conflict.

        On conflict the requester is recorded in the wait-for graph; if that
        would close a cycle, :class:`DeadlockError` is raised instead.
        """
        if mode not in (SHARED, EXCLUSIVE):
            raise StorageError(f"unknown lock mode {mode!r}")
        entry = self._table.get(resource)
        if entry is None:
            entry = _LockEntry()
            self._table[resource] = entry
        current = entry.holders.get(txn_id)
        if current == EXCLUSIVE or current == mode:
            return True  # already held at sufficient strength
        blockers = [
            holder
            for holder, held_mode in entry.holders.items()
            if holder != txn_id and not _COMPATIBLE[(held_mode, mode)]
        ]
        if blockers:
            self.conflicts += 1
            self._record_wait(txn_id, blockers)
            return False
        self._waits_for.pop(txn_id, None)
        entry.holders[txn_id] = mode
        self._held.setdefault(txn_id, set()).add(resource)
        self.grants += 1
        return True

    def lock(self, txn_id, resource, mode):
        """Acquire or raise :class:`LockConflictError` (no waiting)."""
        if not self.try_lock(txn_id, resource, mode):
            raise LockConflictError(
                f"txn {txn_id} blocked on {resource!r} ({mode})"
            )

    def _record_wait(self, txn_id, blockers):
        # replace, don't union: a txn waits only on its *current* request,
        # and stale edges from earlier (since-resolved) conflicts would
        # let the cycle check see phantom deadlocks
        self._waits_for[txn_id] = set(blockers)
        if self._reaches(txn_id, txn_id):
            self._waits_for.pop(txn_id, None)
            raise DeadlockError(f"txn {txn_id} would deadlock")

    def _reaches(self, start, target):
        stack = list(self._waits_for.get(start, ()))
        seen = set()
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._waits_for.get(node, ()))
        return False

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------
    def unlock(self, txn_id, resource):
        """Release one resource held by ``txn_id``."""
        entry = self._table.get(resource)
        if entry is None or txn_id not in entry.holders:
            raise StorageError(f"txn {txn_id} does not hold {resource!r}")
        del entry.holders[txn_id]
        if not entry.holders:
            del self._table[resource]
        held = self._held.get(txn_id)
        if held is not None:
            held.discard(resource)

    def release_all(self, txn_id):
        """Release every lock held by ``txn_id`` (end of two-phase)."""
        for resource in list(self._held.get(txn_id, ())):
            self.unlock(txn_id, resource)
        self._held.pop(txn_id, None)
        self._waits_for.pop(txn_id, None)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def holds(self, txn_id, resource, mode=None):
        entry = self._table.get(resource)
        if entry is None:
            return False
        held = entry.holders.get(txn_id)
        if held is None:
            return False
        return mode is None or held == mode or held == EXCLUSIVE

    def held_resources(self, txn_id):
        return frozenset(self._held.get(txn_id, ()))

    @property
    def locked_resource_count(self):
        return len(self._table)
