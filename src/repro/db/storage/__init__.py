"""Storage layer: the SHORE-like bottom of the DBMS.

Public surface:

* :class:`StorageManager` — facade combining disk, buffer pool, locks,
  WAL, transactions, heap files, and B+-tree indexes.
* :class:`BufferPool`, :class:`DiskManager`, :class:`Page`, :class:`PageId`
* :class:`BTree`
* :class:`LockManager`, :class:`WriteAheadLog`, :class:`TransactionManager`
* :func:`recover` — ARIES-lite crash recovery (torn-tail/torn-page
  tolerant; see also :func:`durable_prefix`)
* :class:`FaultInjector` / :func:`derive_plan` — deterministic fault
  injection (:mod:`repro.db.storage.faults`)
* :func:`run_torture` — crash-consistency torture harness
  (:mod:`repro.db.storage.torture`)
* :class:`RecordCodec` — fixed-width tuple serialization
"""

from repro.db.storage.btree import BTree, BTreeNode
from repro.db.storage.buffer_pool import BufferPool
from repro.db.storage.codec import RecordCodec
from repro.db.storage.disk import DiskManager
from repro.db.storage.faults import (
    SCHEDULES, CrashPoint, FaultInjector, FaultPlan, derive_plan,
)
from repro.db.storage.lock_manager import EXCLUSIVE, SHARED, LockManager
from repro.db.storage.page import PAGE_SIZE, Page, PageId
from repro.db.storage.recovery import (
    RecoveryStats, durable_prefix, recover, replay_index_entries,
)
from repro.db.storage.storage_manager import StorageManager
from repro.db.storage.transaction import Transaction, TransactionManager
from repro.db.storage.wal import LogRecord, WriteAheadLog

__all__ = [
    "BTree",
    "BTreeNode",
    "BufferPool",
    "CrashPoint",
    "DiskManager",
    "EXCLUSIVE",
    "FaultInjector",
    "FaultPlan",
    "LockManager",
    "LogRecord",
    "PAGE_SIZE",
    "Page",
    "PageId",
    "RecordCodec",
    "RecoveryStats",
    "SCHEDULES",
    "SHARED",
    "StorageManager",
    "Transaction",
    "TransactionManager",
    "WriteAheadLog",
    "derive_plan",
    "durable_prefix",
    "recover",
    "replay_index_entries",
]
