"""Storage layer: the SHORE-like bottom of the DBMS.

Public surface:

* :class:`StorageManager` — facade combining disk, buffer pool, locks,
  WAL, transactions, heap files, and B+-tree indexes.
* :class:`BufferPool`, :class:`DiskManager`, :class:`Page`, :class:`PageId`
* :class:`BTree`
* :class:`LockManager`, :class:`WriteAheadLog`, :class:`TransactionManager`
* :func:`recover` — ARIES-lite crash recovery
* :class:`RecordCodec` — fixed-width tuple serialization
"""

from repro.db.storage.btree import BTree, BTreeNode
from repro.db.storage.buffer_pool import BufferPool
from repro.db.storage.codec import RecordCodec
from repro.db.storage.disk import DiskManager
from repro.db.storage.lock_manager import EXCLUSIVE, SHARED, LockManager
from repro.db.storage.page import PAGE_SIZE, Page, PageId
from repro.db.storage.recovery import RecoveryStats, recover
from repro.db.storage.storage_manager import StorageManager
from repro.db.storage.transaction import Transaction, TransactionManager
from repro.db.storage.wal import LogRecord, WriteAheadLog

__all__ = [
    "BTree",
    "BTreeNode",
    "BufferPool",
    "DiskManager",
    "EXCLUSIVE",
    "LockManager",
    "LogRecord",
    "PAGE_SIZE",
    "Page",
    "PageId",
    "RecordCodec",
    "RecoveryStats",
    "SHARED",
    "StorageManager",
    "Transaction",
    "TransactionManager",
    "WriteAheadLog",
    "recover",
]
