"""Deterministic fault injection for the storage manager.

Failure is a first-class, seeded input to the storage layer.  A
:class:`FaultPlan` — derived purely from ``(seed, schedule)`` by
:func:`derive_plan` — names which occurrence of which *fault point*
misbehaves and how.  A :class:`FaultInjector` carries the plan through a
run: storage components call :meth:`FaultInjector.fire` at their named
fault points, and the injector either does nothing, raises a
:class:`~repro.errors.TransientDiskError`, simulates a process death by
raising :class:`CrashPoint`, or instructs the caller to complete a
*partial* effect (torn page write, half-forced log) before dying.

Determinism contract: the same ``(seed, schedule)`` always yields a
byte-identical plan (see :meth:`FaultPlan.to_json`), and because every
hook decision is a pure function of the plan and the hit counter, the
same plan against the same workload always crashes at the same point
with the same partial effects on disk.

Hooks are zero-cost when no injector is installed: every instrumented
component guards its fault point behind a single ``self.faults is not
None`` attribute check (see ``StorageManager.install_faults``).
"""

from __future__ import annotations

import json
import random
from typing import NamedTuple

from repro.errors import StorageError, TransientDiskError

# ---------------------------------------------------------------------------
# fault points
# ---------------------------------------------------------------------------

DISK_READ = "disk.read"                      # DiskManager.read_page
DISK_WRITE = "disk.write"                    # DiskManager.write_page
WAL_APPEND_BEFORE = "wal.append.before"      # before a record reaches the log
WAL_APPEND_AFTER = "wal.append.after"        # record in the log, not durable
WAL_FLUSH = "wal.flush"                      # while forcing the log
POOL_WRITEBACK = "pool.writeback"            # dirty-page write-back (eviction)
TXN_COMMIT_UNFORCED = "txn.commit.unforced"  # COMMIT appended, log not forced
TXN_COMMIT_DONE = "txn.commit.done"          # commit complete and durable
WAL_GROUP_FORCE = "wal.group.force"          # group-commit force about to run
BULK_PAGE_WRITE = "bulk.page"                # bulk loader packing one page
BULK_INDEX_BATCH = "bulk.index"              # bulk index-entry batch logged

# ---------------------------------------------------------------------------
# actions
# ---------------------------------------------------------------------------

CRASH = "crash"          # simulated process death at the point
TORN = "torn"            # disk.write only: first K bytes reach disk, then die
PARTIAL = "partial"      # wal.flush only: horizon advances param/8, then die
TRANSIENT = "transient"  # disk.read only: fail param consecutive reads

#: Catalog: which actions may be planned at which point.
FAULT_POINTS = {
    DISK_READ: (CRASH, TRANSIENT),
    DISK_WRITE: (CRASH, TORN),
    WAL_APPEND_BEFORE: (CRASH,),
    WAL_APPEND_AFTER: (CRASH,),
    WAL_FLUSH: (CRASH, PARTIAL),
    POOL_WRITEBACK: (CRASH,),
    TXN_COMMIT_UNFORCED: (CRASH,),
    TXN_COMMIT_DONE: (CRASH,),
    WAL_GROUP_FORCE: (CRASH,),
    BULK_PAGE_WRITE: (CRASH,),
    BULK_INDEX_BATCH: (CRASH,),
}


class CrashPoint(Exception):
    """A simulated process death.

    Deliberately *not* a :class:`~repro.errors.ReproError`: library code
    that catches storage errors to clean up or retry must not be able to
    swallow a crash — nothing survives a real process kill.  Only the
    torture harness (and tests) catch it, at the point that plays the
    role of the operating system.
    """


class Trigger(NamedTuple):
    """One planned fault: the ``hit``-th firing of ``point`` performs
    ``action`` (``param`` is the action's knob: torn-write byte count,
    flush-fraction numerator, or consecutive transient failures)."""

    point: str
    hit: int
    action: str
    param: int


class FaultPlan:
    """An immutable, serializable description of one failure scenario."""

    __slots__ = ("triggers", "torn_tail", "seed", "schedule")

    def __init__(self, triggers=(), torn_tail=0, seed=None, schedule=None):
        triggers = tuple(Trigger(*t) for t in triggers)
        for trig in triggers:
            allowed = FAULT_POINTS.get(trig.point)
            if allowed is None:
                raise StorageError(f"unknown fault point {trig.point!r}")
            if trig.action not in allowed:
                raise StorageError(
                    f"action {trig.action!r} not allowed at {trig.point!r}"
                )
            if trig.hit < 1:
                raise StorageError("fault trigger hit index is 1-based")
        self.triggers = triggers
        #: crash-time knob: how many log records past the forced horizon
        #: survive the crash, the last of them corrupted (torn log tail)
        self.torn_tail = int(torn_tail)
        self.seed = seed
        self.schedule = schedule

    def to_dict(self):
        return {
            "seed": self.seed,
            "schedule": self.schedule,
            "torn_tail": self.torn_tail,
            "triggers": [list(t) for t in self.triggers],
        }

    def to_json(self):
        """Canonical serialization — byte-identical for equal plans."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data):
        return cls(
            triggers=[tuple(t) for t in data.get("triggers", ())],
            torn_tail=data.get("torn_tail", 0),
            seed=data.get("seed"),
            schedule=data.get("schedule"),
        )

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def __eq__(self, other):
        return isinstance(other, FaultPlan) and self.to_json() == other.to_json()

    def __hash__(self):
        return hash(self.to_json())

    def __repr__(self):
        return f"FaultPlan(schedule={self.schedule!r}, seed={self.seed!r})"


#: Named crash schedules the torture harness sweeps.  Each describes a
#: *shape* of failure; :func:`derive_plan` picks the exact occurrence
#: indices and parameters from the seed.
SCHEDULES = (
    "quiesce",          # no mid-run fault: crash after the workload completes
    "commit-unforced",  # die after a COMMIT append, before the log force
    "commit-done",      # die right after a commit completes
    "append-crash",     # die before/after some WAL append
    "flush-partial",    # die mid log force, horizon advanced partway
    "writeback-crash",  # die during a dirty-page write-back
    "torn-write",       # torn page write: first K bytes only, then die
    "read-transient",   # transient disk read failures, then a quiesce crash
    "torn-tail",        # crash with a torn log tail past the forced horizon
    "mixed",            # transient reads plus one randomized crash trigger
    "bulk-crash",       # die while the bulk loader is packing pages/batches
    "group-deferred",   # group commit: die at a group force or between them
    "group-torn",       # group commit plus a torn log tail at the crash
)

#: Schedules under which the torture harness runs the WAL in
#: group-commit mode (deferred commit durability).
GROUP_COMMIT_SCHEDULES = frozenset({"group-deferred", "group-torn"})


def derive_plan(seed, schedule, intensity=1.0):
    """Derive the :class:`FaultPlan` for ``(seed, schedule)``.

    Pure: the same inputs always return an equal plan (the RNG is seeded
    from a string, which :mod:`random` hashes reproducibly across
    processes).  Hit indices are drawn from ranges tuned to the torture
    workload's operation counts; a trigger whose occurrence is never
    reached simply does not fire, which degenerates to a quiesce crash.

    ``intensity`` scales the *hit-index* upper bounds (never the action
    parameters) for workloads that fire fault points far more often than
    the torture workload — the chaos harness runs multi-session traffic
    and passes ``intensity > 1`` so crashes land throughout the run
    instead of clustering at its start.  The default ``1.0`` reproduces
    the historical draws bit-for-bit.
    """
    if schedule not in SCHEDULES:
        raise StorageError(
            f"unknown crash schedule {schedule!r}; pick from {SCHEDULES}"
        )
    if intensity <= 0:
        raise StorageError("intensity must be positive")
    rng = random.Random(f"faults:{seed}:{schedule}")

    def span(lo, hi):
        # scaled occurrence draw; identity when intensity == 1.0
        return rng.randint(lo, max(lo, int(round(hi * intensity))))

    triggers = []
    torn_tail = 0
    if schedule == "commit-unforced":
        triggers = [(TXN_COMMIT_UNFORCED, span(1, 10), CRASH, 0)]
    elif schedule == "commit-done":
        triggers = [(TXN_COMMIT_DONE, span(1, 10), CRASH, 0)]
    elif schedule == "append-crash":
        point = rng.choice((WAL_APPEND_BEFORE, WAL_APPEND_AFTER))
        triggers = [(point, span(2, 90), CRASH, 0)]
    elif schedule == "flush-partial":
        triggers = [(WAL_FLUSH, span(1, 12), PARTIAL, rng.randint(1, 7))]
    elif schedule == "writeback-crash":
        triggers = [(POOL_WRITEBACK, span(1, 6), CRASH, 0)]
    elif schedule == "torn-write":
        # small K: most of the page keeps its stale contents, so the tear
        # is near-certain to flunk the checksum instead of landing on a
        # tail that happens to match the intended image
        triggers = [(DISK_WRITE, span(1, 24), TORN, rng.randint(1, 1024))]
    elif schedule == "read-transient":
        triggers = [(DISK_READ, span(1, 12), TRANSIENT, rng.randint(1, 2))]
    elif schedule == "torn-tail":
        # die mid-run so an unflushed tail exists to tear
        triggers = [(WAL_APPEND_AFTER, span(5, 70), CRASH, 0)]
        torn_tail = rng.randint(1, 6)
    elif schedule == "mixed":
        point = rng.choice((WAL_APPEND_AFTER, POOL_WRITEBACK, TXN_COMMIT_UNFORCED))
        triggers = [
            (DISK_READ, span(1, 8), TRANSIENT, 1),
            (point, span(3, 40), CRASH, 0),
        ]
        torn_tail = rng.choice((0, 0, 2, 4))
    elif schedule == "bulk-crash":
        point = rng.choice((BULK_PAGE_WRITE, BULK_INDEX_BATCH))
        triggers = [(point, span(1, 4), CRASH, 0)]
    elif schedule == "group-deferred":
        point = rng.choice((WAL_GROUP_FORCE, TXN_COMMIT_UNFORCED))
        triggers = [(point, span(1, 6), CRASH, 0)]
    elif schedule == "group-torn":
        # die mid-run with deferred commits sitting in the unforced tail;
        # truncation must drop them cleanly
        triggers = [(WAL_APPEND_AFTER, span(5, 70), CRASH, 0)]
        torn_tail = rng.randint(1, 6)
    return FaultPlan(triggers, torn_tail=torn_tail, seed=seed, schedule=schedule)


class FaultInjector:
    """Carries a :class:`FaultPlan` through one run of the storage layer.

    ``fire(point)`` is called by instrumented components; its contract:

    * returns ``None`` — no fault at this occurrence;
    * raises :class:`~repro.errors.TransientDiskError` — transient fault;
    * raises :class:`CrashPoint` — simulated process death;
    * returns the :class:`Trigger` — a *partial* action (``TORN`` /
      ``PARTIAL``): the caller applies the partial effect described by
      ``trigger.param``, then MUST call :meth:`crash`.

    After the first crash the injector is *latched*: every further
    ``fire`` raises :class:`CrashPoint`, so no code path can keep
    mutating durable state past its own death.
    """

    def __init__(self, plan):
        self.plan = plan
        self.crashed = False
        self.hits = {}      # point -> occurrences so far
        self.fired = []     # journal: (point, hit, action, param) that tripped
        self._armed = {}    # (point, hit) -> Trigger
        for trig in plan.triggers:
            if trig.action == TRANSIENT:
                # a transient of param N fails occurrences hit..hit+N-1
                for offset in range(max(1, trig.param)):
                    self._armed[(trig.point, trig.hit + offset)] = trig
            else:
                self._armed[(trig.point, trig.hit)] = trig

    def fire(self, point):
        if self.crashed:
            raise CrashPoint(f"storage used after crash (at {point})")
        hit = self.hits.get(point, 0) + 1
        self.hits[point] = hit
        trig = self._armed.get((point, hit))
        if trig is None:
            return None
        self.fired.append((point, hit, trig.action, trig.param))
        if trig.action == TRANSIENT:
            raise TransientDiskError(
                f"injected transient fault at {point} (hit {hit})"
            )
        if trig.action == CRASH:
            self.crashed = True
            raise CrashPoint(f"injected crash at {point} (hit {hit})")
        return trig  # TORN / PARTIAL: caller completes the partial effect

    def crash(self, reason):
        """Latch the crash and die (called after a partial effect)."""
        self.crashed = True
        raise CrashPoint(reason)

    def journal(self):
        """JSON-ready record of what actually fired (artifact replay)."""
        return {
            "plan": self.plan.to_dict(),
            "fired": [list(f) for f in self.fired],
            "crashed": self.crashed,
        }
