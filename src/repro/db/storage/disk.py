"""Simulated disk volume.

The paper's workloads are main-memory resident after warm-up; what matters
is the *call path* taken on a buffer-pool miss (``Getpage_from_disk``), not
real I/O latency.  ``DiskManager`` therefore stores page images in a plain
dict keyed by :class:`~repro.db.storage.page.PageId`, but goes through full
page serialization on write and deserialization on read so that a miss
executes realistic code.

Different page kinds (slotted data pages, B+-tree nodes) register a
deserializer under a one-character kind tag via :func:`register_page_kind`.

Every image carries a CRC32 checksum (kept in a side table, the way a real
volume would keep per-sector CRCs).  A torn write — injected via
:mod:`repro.db.storage.faults` — stores the first K bytes of the new image
over the old one while recording the checksum of the *intended* image, so
the next read of that page fails verification with
:class:`~repro.errors.TornPageError`, exactly like a partially persisted
sector after power loss.
"""

from __future__ import annotations

import zlib

from repro.errors import StorageError, TornPageError

_PAGE_KINDS = {}


def register_page_kind(kind, loader):
    """Register ``loader(page_id, image) -> page`` for pages tagged ``kind``."""
    if kind in _PAGE_KINDS and _PAGE_KINDS[kind] is not loader:
        raise StorageError(f"page kind {kind!r} already registered")
    _PAGE_KINDS[kind] = loader


class DiskManager:
    """An in-memory volume of serialized page images."""

    def __init__(self):
        self._images = {}
        self._checksums = {}  # page_id -> crc32 of the intended image
        self.reads = 0
        self.writes = 0
        #: fault injector, or None; see :mod:`repro.db.storage.faults`
        self.faults = None

    def write_page(self, page):
        """Serialize ``page`` and store its image under its kind tag."""
        image = page.to_bytes()
        if self.faults is not None:
            trigger = self.faults.fire("disk.write")
            if trigger is not None:  # torn write: first K bytes land
                self._tear(page.page_id, page.KIND, image, trigger.param)
        self._images[page.page_id] = (page.KIND, image)
        self._checksums[page.page_id] = zlib.crc32(image)
        self.writes += 1

    def _tear(self, page_id, kind, image, first_k):
        """Persist only the first ``first_k`` bytes of ``image`` (the rest
        keeps its previous contents, or zeros for a fresh page), record the
        checksum of the image that *should* have landed, and die."""
        k = max(1, min(first_k, len(image) - 1))
        old = self._images.get(page_id)
        stale = old[1] if old is not None else b"\x00" * len(image)
        if len(stale) < len(image):
            stale = stale + b"\x00" * (len(image) - len(stale))
        self._images[page_id] = (kind, image[:k] + stale[k:len(image)])
        self._checksums[page_id] = zlib.crc32(image)
        self.writes += 1
        self.faults.crash(f"torn write of page {page_id} after {k} bytes")

    def read_page(self, page_id):
        """Fetch, verify, and deserialize the image for ``page_id``."""
        if self.faults is not None:
            self.faults.fire("disk.read")
        try:
            kind, image = self._images[page_id]
        except KeyError:
            raise StorageError(f"page {page_id} does not exist on disk") from None
        expected = self._checksums.get(page_id)
        if expected is not None and zlib.crc32(image) != expected:
            raise TornPageError(f"page {page_id} fails checksum (torn write)")
        loader = _PAGE_KINDS.get(kind)
        if loader is None:
            raise StorageError(f"no loader registered for page kind {kind!r}")
        self.reads += 1
        return loader(page_id, image)

    def contains(self, page_id):
        return page_id in self._images

    def deallocate(self, page_id):
        """Drop the image for ``page_id`` if present."""
        self._images.pop(page_id, None)
        self._checksums.pop(page_id, None)

    def deallocate_file(self, file_id):
        """Drop every page image belonging to ``file_id`` (used when an
        index is rebuilt from the log after a crash)."""
        stale = [pid for pid in self._images if pid.file_id == file_id]
        for pid in stale:
            del self._images[pid]
            self._checksums.pop(pid, None)
        return len(stale)

    @property
    def page_count(self):
        return len(self._images)
