"""Simulated disk volume.

The paper's workloads are main-memory resident after warm-up; what matters
is the *call path* taken on a buffer-pool miss (``Getpage_from_disk``), not
real I/O latency.  ``DiskManager`` therefore stores page images in a plain
dict keyed by :class:`~repro.db.storage.page.PageId`, but goes through full
page serialization on write and deserialization on read so that a miss
executes realistic code.

Different page kinds (slotted data pages, B+-tree nodes) register a
deserializer under a one-character kind tag via :func:`register_page_kind`.
"""

from __future__ import annotations

from repro.errors import StorageError

_PAGE_KINDS = {}


def register_page_kind(kind, loader):
    """Register ``loader(page_id, image) -> page`` for pages tagged ``kind``."""
    if kind in _PAGE_KINDS and _PAGE_KINDS[kind] is not loader:
        raise StorageError(f"page kind {kind!r} already registered")
    _PAGE_KINDS[kind] = loader


class DiskManager:
    """An in-memory volume of serialized page images."""

    def __init__(self):
        self._images = {}
        self.reads = 0
        self.writes = 0

    def write_page(self, page):
        """Serialize ``page`` and store its image under its kind tag."""
        self._images[page.page_id] = (page.KIND, page.to_bytes())
        self.writes += 1

    def read_page(self, page_id):
        """Fetch and deserialize the image for ``page_id``."""
        try:
            kind, image = self._images[page_id]
        except KeyError:
            raise StorageError(f"page {page_id} does not exist on disk") from None
        loader = _PAGE_KINDS.get(kind)
        if loader is None:
            raise StorageError(f"no loader registered for page kind {kind!r}")
        self.reads += 1
        return loader(page_id, image)

    def contains(self, page_id):
        return page_id in self._images

    def deallocate(self, page_id):
        """Drop the image for ``page_id`` if present."""
        self._images.pop(page_id, None)

    @property
    def page_count(self):
        return len(self._images)
