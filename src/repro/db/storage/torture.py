"""Crash-consistency torture harness.

One scenario = one ``(seed, schedule)`` pair.  The harness builds a fresh
:class:`StorageManager`, drives a randomized multi-transaction workload
with a :class:`~repro.db.storage.faults.FaultInjector` installed, lets
the planned fault kill the "process" mid-flight, simulates what a real
crash leaves behind (volatile state gone, log truncated at the forced
horizon, plus an optional torn tail), runs restart recovery, and then
checks the full invariant suite:

* **durability** — every transaction whose commit was acknowledged is a
  recovery winner and its effects are on disk;
* **atomicity** — no effect of a loser (including deadlock-aborted
  transactions) is visible;
* **heap exactness** — the surviving rows are exactly the fold of the
  winner transactions' effects, no more, no less;
* **index integrity** — the B+-tree passes its structural invariants and
  agrees entry-for-entry with the heap (no orphan or missing entries);
* **idempotence** — running recovery a second time over the recovered
  volume changes nothing.

Everything is deterministic: the workload script comes from
``random.Random(f"torture:{seed}:{schedule}")``, transactions are
interleaved round-robin, and the fault plan is pure in ``(seed,
schedule)`` — so a failing scenario replays exactly from its plan, and
the same scenario always leaves a byte-identical volume (see
:func:`disk_fingerprint`).
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import NamedTuple

from repro.db.storage.faults import (
    GROUP_COMMIT_SCHEDULES,
    CrashPoint,
    FaultInjector,
    derive_plan,
)
from repro.db.storage.recovery import recover
from repro.db.storage.storage_manager import StorageManager
from repro.errors import DeadlockError, LockConflictError, StorageError

_REC = struct.Struct("<qq")  # key, value (record padded to RECORD_SIZE)
#: padded so a handful of rows fills a page — the workload then spreads
#: over enough heap pages to see evictions, write-backs, and lock cycles
RECORD_SIZE = 256
INDEX_NAME = "torture.key"

#: every scenario starts with a bulk-loaded batch in this key range, so
#: the BULK_PAGE/IDX_BULK paths are under the same invariants as per-row
#: DML (and the ``bulk-crash`` schedule has something to crash into)
PRELOAD_BASE = 10_000_000
PRELOAD_ROWS = 64
PRELOAD_INDEX_BATCH = 16


def _pack_row(key, value):
    return _REC.pack(key, value).ljust(RECORD_SIZE, b"\x00")


def _unpack_row(raw):
    return _REC.unpack_from(raw)

#: hard ceilings that turn a scheduling bug into a failure, not a hang
_MAX_STEPS = 20_000
_MAX_TXN_RESTARTS = 6


class InvariantViolation(StorageError):
    """A recovery invariant failed; the message embeds the fault plan so
    the scenario can be replayed from the error text alone."""


class TortureReport(NamedTuple):
    """Outcome of one torture scenario."""

    seed: object
    schedule: str
    plan: dict  # the fault plan, JSON-ready
    crashed: bool  # did the injected fault actually fire mid-run
    crash_reason: str
    fired: list  # injector journal of triggers that tripped
    stats: object  # RecoveryStats from restart
    acked: int  # commits acknowledged before the crash
    resurrected: int  # unacked commits that turned out durable
    deadlock_restarts: int
    disk_retries: int
    steps: int
    rows: int  # live heap rows after recovery
    fingerprint: str  # digest of the post-recovery volume

    def to_dict(self):
        return {
            "seed": self.seed,
            "schedule": self.schedule,
            "plan": self.plan,
            "crashed": self.crashed,
            "crash_reason": self.crash_reason,
            "fired": [list(f) for f in self.fired],
            "stats": {
                "winners": sorted(self.stats.winners),
                "losers": sorted(self.stats.losers),
                "redone": self.stats.redone,
                "undone": self.stats.undone,
                "torn_records": self.stats.torn_records,
                "torn_pages": self.stats.torn_pages,
            },
            "acked": self.acked,
            "resurrected": self.resurrected,
            "deadlock_restarts": self.deadlock_restarts,
            "disk_retries": self.disk_retries,
            "steps": self.steps,
            "rows": self.rows,
            "fingerprint": self.fingerprint,
        }


def disk_fingerprint(disk):
    """Deterministic digest of every page image on the volume."""
    digest = hashlib.sha256()
    for page_id in sorted(disk._images):
        kind, image = disk._images[page_id]
        digest.update(repr((tuple(page_id), kind, len(image))).encode())
        digest.update(image)
    return digest.hexdigest()


class _Slot:
    """One logical client: a sequence of transactions over its own keys.

    Slots partition the key space (so the oracle stays simple) but share
    heap pages, which is where genuine lock conflicts and deadlocks come
    from.
    """

    __slots__ = (
        "base", "committed", "working", "script", "pos", "txn",
        "txns_left", "restarts", "pending", "cooldown", "epochs",
    )

    def __init__(self, base, txns_left):
        self.base = base
        self.committed = {}  # key -> (rid, value), as of last commit
        self.working = None  # key -> (rid, value), current txn's view
        self.script = None  # list of (op, key, value)
        self.pos = 0
        self.txn = None
        self.txns_left = txns_left
        self.restarts = 0
        #: commit history: (txn_id, rows, durable_acked) per commit, in
        #: order.  Under group commit a returned-but-unforced commit is
        #: durable only if a later force covered it — the oracle walks
        #: this list against the recovered winner set.
        self.epochs = []
        #: rounds to sit out after a deadlock restart (deterministic
        #: backoff: lets the conflicting transactions drain first)
        self.cooldown = 0
        #: (txn_id, rows) snapshotted just before commit() — if the crash
        #: lands inside commit, recovery decides whether this txn won
        self.pending = None

    @property
    def done(self):
        return self.txn is None and self.txns_left == 0


class _Driver:
    """Round-robin interleaving of slot transactions until the planned
    fault kills the run (or the workload completes for quiesce plans)."""

    def __init__(self, sm, file_id, rng, slots, txns_per_slot, keys_per_slot,
                 ops_per_txn, sync_commits=True):
        self.sm = sm
        self.file_id = file_id
        self.rng = rng
        self.keys_per_slot = keys_per_slot
        self.ops_per_txn = ops_per_txn
        self.sync_commits = sync_commits
        self.slots = [
            _Slot(base=1000 * s, txns_left=txns_per_slot) for s in range(slots)
        ]
        self.next_value = 1
        self.acked = []  # txn ids whose commit returned *durable*
        self.unforced = []  # group-commit returns before the force
        self.aborted = []  # txn ids aborted (deadlock victims)
        self.deadlock_restarts = 0
        self.steps = 0

    # ------------------------------------------------------------------
    # script generation (pure bookkeeping, no storage calls)
    # ------------------------------------------------------------------
    def _make_script(self, slot):
        ops = []
        live = sorted(slot.committed)
        count = self.rng.randint(self.ops_per_txn[0], self.ops_per_txn[1])
        for _ in range(count):
            # insert-biased mix so the table outgrows the buffer pool and
            # the run sees real evictions, write-backs, and refaults
            roll = self.rng.random()
            if not live:
                op = "ins"
            elif len(live) >= self.keys_per_slot:
                op = "del" if roll < 0.4 else "upd"
            elif roll < 0.55:
                op = "ins"
            elif roll < 0.85:
                op = "upd"
            else:
                op = "del"
            value = self.next_value
            self.next_value += 1
            if op == "ins":
                free = [
                    k for k in range(slot.base, slot.base + self.keys_per_slot)
                    if k not in live
                ]
                key = self.rng.choice(free)
                live.append(key)
                live.sort()
            else:
                key = self.rng.choice(live)
                if op == "del":
                    live.remove(key)
            ops.append((op, key, value))
        return ops

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def drive(self):
        while True:
            progressed = False
            for slot in self.slots:
                if slot.done:
                    continue
                progressed = True
                self._step(slot)
                self.steps += 1
                if self.steps > _MAX_STEPS:
                    raise InvariantViolation(
                        "torture driver exceeded step ceiling (livelock?)"
                    )
            if not progressed:
                return

    def _step(self, slot):
        if slot.cooldown > 0:
            slot.cooldown -= 1
            return
        if slot.txn is None:
            if slot.script is None:
                slot.script = self._make_script(slot)
            slot.txn = self.sm.begin()
            slot.working = dict(slot.committed)
            slot.pos = 0
            return
        if slot.pos >= len(slot.script):
            self._commit(slot)
            return
        try:
            self._exec_op(slot, slot.script[slot.pos])
        except LockConflictError:
            return  # blocked; retry this op on the slot's next turn
        except DeadlockError:
            self._deadlock_restart(slot)
            return
        slot.pos += 1

    def _exec_op(self, slot, op):
        kind, key, value = op
        txn, sm = slot.txn, self.sm
        if kind == "ins":
            rid = sm.create_rec(txn, self.file_id, _pack_row(key, value))
            sm.index_insert(txn, INDEX_NAME, key, rid)
            slot.working[key] = (rid, value)
        elif kind == "upd":
            rid, _old = slot.working[key]
            sm.update_rec(txn, self.file_id, rid, _pack_row(key, value))
            slot.working[key] = (rid, value)
        else:
            rid, _old = slot.working[key]
            sm.delete_rec(txn, self.file_id, rid)
            sm.index_delete(txn, INDEX_NAME, key, rid)
            del slot.working[key]

    def _commit(self, slot):
        txn = slot.txn
        slot.pending = (txn.txn_id, dict(slot.working))
        # a planned fault may kill the process in here
        durable = txn.commit(sync=self.sync_commits)
        if durable:
            self.acked.append(txn.txn_id)
        else:
            self.unforced.append(txn.txn_id)
        slot.epochs.append((txn.txn_id, slot.pending[1], durable))
        slot.committed = slot.pending[1]
        slot.pending = None
        slot.txn = None
        slot.script = None
        slot.working = None
        slot.txns_left -= 1
        slot.restarts = 0

    def _deadlock_restart(self, slot):
        """Abort the deadlock victim and re-run the same script under a
        fresh transaction — bounded, and deterministic because the script
        is fixed before first execution."""
        self.aborted.append(slot.txn.txn_id)
        slot.txn.abort()
        slot.txn = None
        slot.working = None
        slot.restarts += 1
        slot.cooldown = 3 * slot.restarts
        self.deadlock_restarts += 1
        if slot.restarts > _MAX_TXN_RESTARTS:
            raise InvariantViolation(
                f"slot at base {slot.base} exceeded deadlock restart bound"
            )


class CrashedState(NamedTuple):
    """A storage manager as an injected crash left it, ready to recover."""

    sm: object
    file_id: int
    driver: object
    plan: object
    survived: list  # log records the crash left behind (torn tail included)
    crashed: bool
    crash_reason: str
    fired: list
    pre_crash_pool: dict


def build_crashed_state(seed, schedule, *, slots=4, txns_per_slot=6,
                        keys_per_slot=48, ops_per_txn=(3, 8), pool_pages=8,
                        btree_max_keys=8, index_kind="btree"):
    """Drive the torture workload into its planned crash and stop there.

    Returns a :class:`CrashedState` whose ``sm`` holds the post-crash
    volume and whose ``survived`` is the log as the crash left it —
    exactly the inputs ``StorageManager.restart`` needs.  Used by
    :func:`run_torture` and by the traced ``recovery`` workload (which
    times the restart itself).

    ``index_kind`` swaps the secondary index structure ("btree" or
    "hash"); both must satisfy the identical invariant suite.  Schedules
    in ``GROUP_COMMIT_SCHEDULES`` run every commit asynchronously under a
    group-commit log, so a returned commit may legitimately be lost."""
    plan = derive_plan(seed, schedule)
    rng = random.Random(f"torture:{seed}:{schedule}")
    grouped = schedule in GROUP_COMMIT_SCHEDULES
    sm = StorageManager(
        pool_pages=pool_pages, btree_max_keys=btree_max_keys,
        hash_buckets=4,  # tiny directory: force overflow chains
        wal_group_size=3 if grouped else 1,
        wal_group_window=24 if grouped else 0,
    )
    file_id = sm.create_file(RECORD_SIZE)
    sm.create_index(INDEX_NAME, kind=index_kind)
    driver = _Driver(sm, file_id, rng, slots, txns_per_slot, keys_per_slot,
                     ops_per_txn, sync_commits=not grouped)

    injector = FaultInjector(plan)
    sm.install_faults(injector)
    crashed = False
    crash_reason = ""
    try:
        _bulk_preload(sm, file_id, driver)
        driver.drive()
    except CrashPoint as death:
        crashed = True
        crash_reason = str(death)
    return CrashedState(
        sm=sm, file_id=file_id, driver=driver, plan=plan,
        survived=_surviving_log(sm, plan), crashed=crashed,
        crash_reason=crash_reason, fired=list(injector.fired),
        pre_crash_pool=sm.pool.stats(),
    )


def _bulk_preload(sm, file_id, driver):
    """Seed the volume through the bulk paths, under oracle bookkeeping.

    The preload rides in a pseudo-slot so the invariant checker treats
    it like any other transaction: if the planned crash lands inside the
    bulk load, atomicity says none of it survives; after the commit is
    acknowledged, durability says all of it does."""
    slot = _Slot(base=PRELOAD_BASE, txns_left=0)
    driver.slots.append(slot)
    keys = list(range(PRELOAD_BASE, PRELOAD_BASE + PRELOAD_ROWS))
    values = {}
    for key in keys:
        values[key] = driver.next_value
        driver.next_value += 1
    txn = sm.begin()
    rids = sm.bulk_load(
        txn, file_id, (_pack_row(key, values[key]) for key in keys)
    )
    sm.index_bulk_load(
        txn, INDEX_NAME, zip(keys, rids), batch_size=PRELOAD_INDEX_BATCH
    )
    rows = {key: (rid, values[key]) for key, rid in zip(keys, rids)}
    slot.pending = (txn.txn_id, rows)
    durable = txn.commit(sync=driver.sync_commits)
    if durable:
        driver.acked.append(txn.txn_id)
    else:
        driver.unforced.append(txn.txn_id)
    slot.epochs.append((txn.txn_id, rows, durable))
    slot.committed = rows
    slot.pending = None


def run_torture(seed, schedule, *, slots=4, txns_per_slot=6,
                keys_per_slot=48, ops_per_txn=(3, 8), pool_pages=8,
                btree_max_keys=8, index_kind="btree"):
    """Run one torture scenario; returns a :class:`TortureReport` or
    raises :class:`InvariantViolation` with a replayable plan."""
    state = build_crashed_state(
        seed, schedule, slots=slots, txns_per_slot=txns_per_slot,
        keys_per_slot=keys_per_slot, ops_per_txn=ops_per_txn,
        pool_pages=pool_pages, btree_max_keys=btree_max_keys,
        index_kind=index_kind,
    )
    sm, file_id, driver, plan = state.sm, state.file_id, state.driver, state.plan
    crashed, crash_reason = state.crashed, state.crash_reason
    pre_crash_pool, fired = state.pre_crash_pool, state.fired

    stats = sm.restart(state.survived)
    sm.pool.flush_all()
    fingerprint = disk_fingerprint(sm.disk)

    rows = _check_invariants(sm, file_id, driver, stats, plan)
    resurrected = sum(
        1 for slot in driver.slots
        if slot.pending is not None and slot.pending[0] in stats.winners
    )
    return TortureReport(
        seed=seed, schedule=schedule, plan=plan.to_dict(),
        crashed=crashed, crash_reason=crash_reason, fired=fired,
        stats=stats, acked=len(driver.acked), resurrected=resurrected,
        deadlock_restarts=driver.deadlock_restarts,
        disk_retries=pre_crash_pool["disk_retries"],
        steps=driver.steps, rows=rows, fingerprint=fingerprint,
    )


def surviving_log(sm, plan):
    """What the log looks like after the crash: everything through the
    forced horizon survives; ``plan.torn_tail`` further records linger
    past it, the last of them corrupted mid-record.

    Public: the chaos harness (:mod:`repro.db.chaos`) plays the role of
    the operating system for server crashes and reuses this to decide
    what a restarted server gets to recover from."""
    records = sm.log.records()
    horizon = sm.log.flushed_lsn + 1
    survived = records[:horizon]
    tail = records[horizon:horizon + plan.torn_tail]
    if tail:
        tail[-1] = tail[-1]._replace(kind="#TORN#")
    return survived + tail


#: backwards-compatible internal alias
_surviving_log = surviving_log


def _check_invariants(sm, file_id, driver, stats, plan):
    """Run the full invariant suite; returns the live row count."""

    def fail(message):
        raise InvariantViolation(f"{message} [plan {plan.to_json()}]")

    # durability: commits acknowledged as durable must be winners;
    # atomicity: deadlock victims must not be
    for txn_id in driver.acked:
        if txn_id not in stats.winners:
            fail(f"acked txn {txn_id} lost by recovery")
    for txn_id in driver.aborted:
        if txn_id in stats.winners:
            fail(f"aborted txn {txn_id} won recovery")

    # group commit may lose a returned-but-unforced commit, but only
    # from the tail: a slot's commits hit the log in order, and the
    # durable prefix is monotone, so the winners within one slot must be
    # a prefix of its commit sequence
    expected = {}
    for slot in driver.slots:
        won = [txn_id in stats.winners for txn_id, _rows, _d in slot.epochs]
        if any(won[i] and not won[i - 1] for i in range(1, len(won))):
            fail(
                f"slot at base {slot.base} has non-prefix winners "
                f"{[e[0] for e in slot.epochs]} -> {won}"
            )
        # expected state: the newest surviving commit's rows — including
        # an in-flight commit whose record proved durable (resurrection)
        state = {}
        for pos in range(len(slot.epochs) - 1, -1, -1):
            if won[pos]:
                state = slot.epochs[pos][1]
                break
        if slot.pending is not None and slot.pending[0] in stats.winners:
            state = slot.pending[1]
        for key, (_rid, value) in state.items():
            expected[key] = value

    txn = sm.begin()
    actual = {}
    for rid, raw in sm.scan_file(txn, file_id):
        key, value = _unpack_row(raw)
        if key in actual:
            fail(f"duplicate key {key} in recovered heap")
        actual[key] = (rid, value)
    txn.commit()

    actual_values = {key: value for key, (_rid, value) in actual.items()}
    if actual_values != expected:
        missing = sorted(set(expected) - set(actual_values))
        extra = sorted(set(actual_values) - set(expected))
        wrong = sorted(
            k for k in set(expected) & set(actual_values)
            if expected[k] != actual_values[k]
        )
        fail(
            f"heap mismatch: missing keys {missing}, extra keys {extra}, "
            f"wrong values at {wrong}"
        )

    # index integrity and index<->heap agreement
    tree = sm.index(INDEX_NAME)
    tree.check_invariants()
    entries = list(tree.range_scan())
    if len(entries) != len(actual):
        fail(f"index has {len(entries)} entries for {len(actual)} rows")
    for key, rid in entries:
        if key not in actual:
            fail(f"index entry for key {key} has no heap row (orphan)")
        if actual[key][0] != rid:
            fail(f"index rid {rid} disagrees with heap rid {actual[key][0]}")

    # idempotence: a second recovery pass over the recovered volume is a
    # no-op on every page image
    images_before = dict(sm.disk._images)
    recover(sm.disk, sm.log.records(durable_only=True))
    if dict(sm.disk._images) != images_before:
        fail("second recovery pass changed the volume")

    return len(actual)
