"""Page-based static hash index — a peer of :mod:`repro.db.storage.btree`.

Keys are signed 64-bit integers; values are record ids ``(page_no, slot)``.
A fixed directory of ``n_buckets`` bucket pages is hashed with Knuth's
multiplicative scheme (never Python's ``hash`` — plans and traces must be
identical across processes); each bucket grows an overflow chain when it
fills.  Duplicate keys are supported the same way the B+-tree does it: the
*composite* ``(key, page_no, slot)`` is unique.

The recovery contract matches the B+-tree exactly: bucket pages are never
WAL-logged.  Index maintenance is logged logically (IDX_INSERT /
IDX_DELETE / IDX_BULK), and at restart the storage manager deallocates
the stale node file, resets the index, and replays the durable log's
winner entries (``recovery.replay_index_entries``).

Supported scans: equality (``search``, or ``range_scan(k, k)``) and full
scans (``range_scan(None, None)``, used by the torture harness's
index-heap agreement invariant); both yield entries in sorted composite
order so results are interchangeable with the B+-tree's.  True range
predicates raise — the planner only picks a hash index for equality.
"""

from __future__ import annotations

import struct

from repro.db.storage.disk import register_page_kind
from repro.db.storage.page import PAGE_SIZE, PageId
from repro.errors import StorageError

_NODE_HEADER = struct.Struct("<iii")  # count, next_overflow, max_entries
_ENTRY = struct.Struct("<qii")  # key, rid page_no, rid slot
_NO_PAGE = -1

#: bucket-directory width; tests shrink it to force overflow chains
DEFAULT_BUCKETS = 16

DEFAULT_MAX_ENTRIES = (PAGE_SIZE - _NODE_HEADER.size) // _ENTRY.size

#: Knuth multiplicative constant (2^32 / phi), reproducible everywhere
_KNUTH = 2654435761


def _bucket_of(key, n_buckets):
    return ((key & 0xFFFFFFFFFFFFFFFF) * _KNUTH) % n_buckets


class HashBucketNode:
    """One bucket (or overflow) page of composite entries."""

    KIND = "H"

    __slots__ = (
        "page_id",
        "entries",
        "next_overflow",
        "max_entries",
        "pin_count",
        "dirty",
        "page_lsn",
    )

    def __init__(self, page_id, max_entries):
        self.page_id = page_id
        self.entries = []  # composite (key, page_no, slot), unordered
        self.next_overflow = _NO_PAGE
        self.max_entries = max_entries
        self.pin_count = 0
        self.dirty = False
        self.page_lsn = 0

    @property
    def is_full(self):
        return len(self.entries) >= self.max_entries

    def to_bytes(self):
        parts = [_NODE_HEADER.pack(
            len(self.entries), self.next_overflow, self.max_entries
        )]
        for key, page_no, slot in self.entries:
            parts.append(_ENTRY.pack(key, page_no, slot))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, page_id, image):
        count, next_overflow, max_entries = _NODE_HEADER.unpack_from(image, 0)
        node = cls(page_id, max_entries)
        node.next_overflow = next_overflow
        offset = _NODE_HEADER.size
        for _ in range(count):
            node.entries.append(_ENTRY.unpack_from(image, offset))
            offset += _ENTRY.size
        return node


register_page_kind(HashBucketNode.KIND, HashBucketNode.from_bytes)


class HashIndex:
    """Static hash index over a buffer pool.

    Same ownership model as :class:`~repro.db.storage.btree.BTree`: the
    index owns a file id in the storage manager's page namespace and
    draws node page numbers from the shared allocator, so bucket-page
    traffic exercises the same buffer-pool call paths as everything else.
    """

    def __init__(self, pool, file_id, allocate_page_no,
                 n_buckets=DEFAULT_BUCKETS, max_entries=DEFAULT_MAX_ENTRIES):
        if n_buckets < 1:
            raise StorageError("hash index needs at least one bucket")
        if max_entries < 1:
            raise StorageError("hash index needs max_entries >= 1")
        self._pool = pool
        self._file_id = file_id
        self._allocate = allocate_page_no
        self._n_buckets = n_buckets
        self._max_entries = max_entries
        self.reset()

    def reset(self):
        """(Re)initialize to an empty directory of fresh bucket pages.

        Like the B+-tree's ``reset``: crash recovery deallocates the
        stale node file and repopulates from the durable log's winner
        index entries."""
        self._bucket_nos = []
        for _ in range(self._n_buckets):
            node = self._new_node()
            self._bucket_nos.append(node.page_id.page_no)
            self._pool.unpin_page(node.page_id, dirty=True)
        self.entry_count = 0

    # ------------------------------------------------------------------
    # node helpers (buffer-pool mediated)
    # ------------------------------------------------------------------
    def _new_node(self):
        page_no = self._allocate()
        node = HashBucketNode(PageId(self._file_id, page_no),
                              self._max_entries)
        self._pool.add_page(node)
        return node

    def _fetch(self, page_no):
        return self._pool.fetch_page(PageId(self._file_id, page_no))

    def _release(self, node, dirty=False):
        self._pool.unpin_page(node.page_id, dirty=dirty)

    @property
    def file_id(self):
        return self._file_id

    @property
    def n_buckets(self):
        return self._n_buckets

    def attach_pool(self, pool):
        """Point the index at a replacement buffer pool (process restart
        discards the old pool; bucket pages refault from disk)."""
        self._pool = pool

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert(self, key, rid):
        """Insert ``key -> rid``."""
        composite = (key, rid[0], rid[1])
        page_no = self._bucket_nos[_bucket_of(key, self._n_buckets)]
        while True:
            node = self._fetch(page_no)
            if not node.is_full:
                node.entries.append(composite)
                self._release(node, dirty=True)
                break
            if node.next_overflow == _NO_PAGE:
                overflow = self._new_node()
                node.next_overflow = overflow.page_id.page_no
                overflow.entries.append(composite)
                self._release(overflow, dirty=True)
                self._release(node, dirty=True)
                break
            page_no = node.next_overflow
            self._release(node)
        self.entry_count += 1

    def delete(self, key, rid=None):
        """Delete one entry with ``key`` (matching ``rid`` if given).

        Returns True if an entry was removed.  Emptied overflow pages
        stay in the chain (a static hash index does not shrink); they
        are reclaimed wholesale by the logical rebuild at restart.
        """
        page_no = self._bucket_nos[_bucket_of(key, self._n_buckets)]
        while page_no != _NO_PAGE:
            node = self._fetch(page_no)
            for pos, (entry_key, rid_page, rid_slot) in enumerate(node.entries):
                if entry_key != key:
                    continue
                if rid is not None and (rid_page, rid_slot) != tuple(rid):
                    continue
                del node.entries[pos]
                self.entry_count -= 1
                self._release(node, dirty=True)
                return True
            page_no = node.next_overflow
            self._release(node)
        return False

    def bulk_build(self, entries):
        """Load ``(key, rid)`` entries into an empty index.

        The peer of ``BTree.bulk_build``: groups entries per bucket and
        packs each chain in one pass instead of re-walking it per entry.
        Returns the entry count.
        """
        if self.entry_count:
            raise StorageError("bulk_build requires an empty index")
        per_bucket = [[] for _ in range(self._n_buckets)]
        for key, rid in sorted(
            (key, (rid[0], rid[1])) for key, rid in entries
        ):
            per_bucket[_bucket_of(key, self._n_buckets)].append(
                (key, rid[0], rid[1])
            )
        total = 0
        for bucket, composites in enumerate(per_bucket):
            if not composites:
                continue
            node = self._fetch(self._bucket_nos[bucket])
            for start in range(0, len(composites), self._max_entries):
                chunk = composites[start:start + self._max_entries]
                node.entries.extend(chunk)
                if start + self._max_entries < len(composites):
                    overflow = self._new_node()
                    node.next_overflow = overflow.page_id.page_no
                    self._release(node, dirty=True)
                    node = overflow
            self._release(node, dirty=True)
            total += len(composites)
        self.entry_count = total
        return total

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def search(self, key):
        """Return the list of rids stored under ``key``, in sorted
        composite order (interchangeable with ``BTree.search``)."""
        rids = []
        page_no = self._bucket_nos[_bucket_of(key, self._n_buckets)]
        while page_no != _NO_PAGE:
            node = self._fetch(page_no)
            for entry_key, rid_page, rid_slot in node.entries:
                if entry_key == key:
                    rids.append((rid_page, rid_slot))
            page_no = node.next_overflow
            self._release(node)
        rids.sort()
        return rids

    def range_scan(self, lo=None, hi=None, include_hi=True):
        """Equality (``lo == hi``) or full (``lo is hi is None``) scans.

        Yields ``(key, rid)`` sorted by composite, matching the B+-tree's
        scan order for the same contents.  Anything else is a true range
        predicate, which a hash index cannot serve: raises StorageError.
        """
        if lo is None and hi is None:
            entries = []
            for bucket in range(self._n_buckets):
                page_no = self._bucket_nos[bucket]
                while page_no != _NO_PAGE:
                    node = self._fetch(page_no)
                    entries.extend(node.entries)
                    page_no = node.next_overflow
                    self._release(node)
            entries.sort()
            for key, rid_page, rid_slot in entries:
                yield key, (rid_page, rid_slot)
            return
        if lo is None or lo != hi or not include_hi:
            raise StorageError(
                "hash index supports only equality and full scans"
            )
        for rid in self.search(lo):
            yield lo, rid

    # ------------------------------------------------------------------
    # validation (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self):
        """Verify bucket placement, chain capacity, and uniqueness; raise
        on violation.  Returns the number of entries seen."""
        seen = set()
        count = 0
        for bucket in range(self._n_buckets):
            page_no = self._bucket_nos[bucket]
            while page_no != _NO_PAGE:
                node = self._fetch(page_no)
                try:
                    if len(node.entries) > node.max_entries:
                        raise StorageError("bucket page over capacity")
                    for composite in node.entries:
                        key = composite[0]
                        if _bucket_of(key, self._n_buckets) != bucket:
                            raise StorageError(
                                f"key {key} in wrong bucket {bucket}"
                            )
                        if composite in seen:
                            raise StorageError(
                                f"duplicate composite {composite}"
                            )
                        seen.add(composite)
                        count += 1
                    page_no = node.next_overflow
                finally:
                    self._release(node)
        if count != self.entry_count:
            raise StorageError(
                f"entry_count {self.entry_count} != actual {count}"
            )
        return count
