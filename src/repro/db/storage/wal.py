"""Write-ahead logging.

A simplified ARIES-style log: physical undo/redo images per record
operation plus transaction begin/commit/abort markers.  The log lives in
memory (a list of :class:`LogRecord`), mirroring how SHORE's log would be
buffered; :class:`repro.db.storage.recovery` replays it after a simulated
crash.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import RecoveryError

# log record types
BEGIN = "BEGIN"
COMMIT = "COMMIT"
ABORT = "ABORT"
UPDATE = "UPDATE"  # slot overwritten: before/after images
INSERT = "INSERT"  # slot filled: after image only
DELETE = "DELETE"  # slot emptied: before image only
CLR = "CLR"  # compensation record written during undo
CHECKPOINT = "CHECKPOINT"
IDX_INSERT = "IDX_INSERT"  # logical index entry insert (undone on abort)
IDX_DELETE = "IDX_DELETE"  # logical index entry delete (undone on abort)

_TYPES = frozenset({
    BEGIN, COMMIT, ABORT, UPDATE, INSERT, DELETE, CLR, CHECKPOINT,
    IDX_INSERT, IDX_DELETE,
})


class LogRecord(NamedTuple):
    """One entry in the write-ahead log."""

    lsn: int
    txn_id: int
    kind: str
    page_id: object  # PageId or None
    slot: int
    before: bytes  # undo image (b"" when not applicable)
    after: bytes  # redo image (b"" when not applicable)
    prev_lsn: int  # previous LSN of the same transaction (-1 if none)


class WriteAheadLog:
    """Append-only log with per-transaction backchains."""

    def __init__(self):
        self._records = []
        self._last_lsn_of = {}  # txn_id -> lsn
        self.flushed_lsn = -1

    def append(self, txn_id, kind, page_id=None, slot=-1, before=b"", after=b""):
        """Append a record and return its LSN."""
        if kind not in _TYPES:
            raise RecoveryError(f"unknown log record kind {kind!r}")
        lsn = len(self._records)
        prev = self._last_lsn_of.get(txn_id, -1)
        record = LogRecord(lsn, txn_id, kind, page_id, slot, before, after, prev)
        self._records.append(record)
        self._last_lsn_of[txn_id] = lsn
        return lsn

    def flush(self, up_to_lsn=None):
        """Force the log to stable storage up to ``up_to_lsn`` (inclusive)."""
        if up_to_lsn is None:
            up_to_lsn = len(self._records) - 1
        self.flushed_lsn = max(self.flushed_lsn, up_to_lsn)

    # ------------------------------------------------------------------
    # read side (used by recovery)
    # ------------------------------------------------------------------
    def records(self, durable_only=False):
        """All records, optionally truncated at the flushed LSN (a crash
        loses unflushed log tail)."""
        if durable_only:
            return list(self._records[: self.flushed_lsn + 1])
        return list(self._records)

    def record(self, lsn):
        if not 0 <= lsn < len(self._records):
            raise RecoveryError(f"no log record with lsn {lsn}")
        return self._records[lsn]

    def last_lsn(self, txn_id):
        return self._last_lsn_of.get(txn_id, -1)

    def __len__(self):
        return len(self._records)
