"""Write-ahead logging.

A simplified ARIES-style log: physical undo/redo images per record
operation plus transaction begin/commit/abort markers.  The log lives in
memory (a list of :class:`LogRecord`), mirroring how SHORE's log would be
buffered; :class:`repro.db.storage.recovery` replays it after a simulated
crash.
"""

from __future__ import annotations

import struct
from typing import NamedTuple

from repro.errors import RecoveryError

# log record types
BEGIN = "BEGIN"
COMMIT = "COMMIT"
ABORT = "ABORT"
UPDATE = "UPDATE"  # slot overwritten: before/after images
INSERT = "INSERT"  # slot filled: after image only
DELETE = "DELETE"  # slot emptied: before image only
CLR = "CLR"  # compensation record written during undo
CHECKPOINT = "CHECKPOINT"
IDX_INSERT = "IDX_INSERT"  # logical index entry insert (undone on abort)
IDX_DELETE = "IDX_DELETE"  # logical index entry delete (undone on abort)
BULK_PAGE = "BULK_PAGE"  # bulk load: one full page of records (after image)
IDX_BULK = "IDX_BULK"  # logical index entry batch insert (undone on abort)
CLR_BULK = "CLR_BULK"  # compensation record for one BULK_PAGE

_TYPES = frozenset({
    BEGIN, COMMIT, ABORT, UPDATE, INSERT, DELETE, CLR, CHECKPOINT,
    IDX_INSERT, IDX_DELETE, BULK_PAGE, IDX_BULK, CLR_BULK,
})


_INDEX_ENTRY = struct.Struct("<qii")  # key, rid page_no, rid slot


def encode_index_entry(key, rid):
    """Pack a logical index entry for an IDX_INSERT/IDX_DELETE payload."""
    return _INDEX_ENTRY.pack(key, rid[0], rid[1])


def decode_index_entry(raw):
    """Unpack an IDX_INSERT/IDX_DELETE payload to ``(key, rid)``."""
    key, page_no, slot = _INDEX_ENTRY.unpack(raw)
    return key, (page_no, slot)


def encode_index_entries(entries):
    """Pack a batch of ``(key, rid)`` entries for an IDX_BULK payload."""
    return b"".join(_INDEX_ENTRY.pack(key, rid[0], rid[1])
                    for key, rid in entries)


def decode_index_entries(raw):
    """Unpack an IDX_BULK payload to a list of ``(key, rid)``."""
    size = _INDEX_ENTRY.size
    out = []
    for off in range(0, len(raw), size):
        key, page_no, slot = _INDEX_ENTRY.unpack_from(raw, off)
        out.append((key, (page_no, slot)))
    return out


class LogRecord(NamedTuple):
    """One entry in the write-ahead log."""

    lsn: int
    txn_id: int
    kind: str
    page_id: object  # PageId or None
    slot: int
    before: bytes  # undo image (b"" when not applicable)
    after: bytes  # redo image (b"" when not applicable)
    prev_lsn: int  # previous LSN of the same transaction (-1 if none)


class WriteAheadLog:
    """Append-only log with per-transaction backchains and group commit.

    Group commit batches concurrent committers behind a single force:
    a deferred commit (``commit_deferred``) registers its COMMIT LSN in
    the pending group instead of forcing immediately.  The group is
    forced — one ``flush`` covering every pending committer — when
    either ``group_size`` commits have accumulated or the log has grown
    ``group_window`` records past the oldest pending commit (logical
    time; the simulator has no wall clock).  ``group_size=1`` (the
    default) degenerates to force-per-commit.
    """

    def __init__(self, group_size=1, group_window=0):
        self._records = []
        self._last_lsn_of = {}  # txn_id -> lsn
        self.flushed_lsn = -1
        #: commits per group before a force (1 = force every commit)
        self.group_size = group_size
        #: max log records appended past the oldest pending commit
        #: before an auto-force (0 = no window trigger)
        self.group_window = group_window
        self._pending_commits = []  # deferred COMMIT lsns, ascending
        #: flushes that actually advanced the durable horizon
        self.forces = 0
        #: forces triggered by the group-commit policy
        self.group_forces = 0
        #: fault injector, or None; see :mod:`repro.db.storage.faults`
        self.faults = None

    def append(self, txn_id, kind, page_id=None, slot=-1, before=b"", after=b""):
        """Append a record and return its LSN."""
        if kind not in _TYPES:
            raise RecoveryError(f"unknown log record kind {kind!r}")
        if self.faults is not None:
            self.faults.fire("wal.append.before")
        lsn = len(self._records)
        prev = self._last_lsn_of.get(txn_id, -1)
        record = LogRecord(lsn, txn_id, kind, page_id, slot, before, after, prev)
        self._records.append(record)
        self._last_lsn_of[txn_id] = lsn
        if self.faults is not None:
            self.faults.fire("wal.append.after")
        if (
            self._pending_commits
            and self.group_window
            and lsn - self._pending_commits[0] >= self.group_window
        ):
            self._force_group()
        return lsn

    # ------------------------------------------------------------------
    # group commit
    # ------------------------------------------------------------------
    def commit_deferred(self, lsn):
        """Register a COMMIT record for group durability.

        Returns True if this registration triggered the group force (the
        commit is durable on return), False if durability is deferred to
        a later force.  The caller must treat a False return as "commit
        acknowledged but not yet durable": a crash before the next force
        loses it.
        """
        self._pending_commits.append(lsn)
        if len(self._pending_commits) >= max(1, self.group_size):
            self._force_group()
            return True
        if self.group_window and lsn - self._pending_commits[0] >= self.group_window:
            self._force_group()
            return True
        return False

    def _force_group(self):
        """Force the log through every pending deferred commit."""
        if not self._pending_commits:
            return
        if self.faults is not None:
            self.faults.fire("wal.group.force")
        self.group_forces += 1
        self.flush(self._pending_commits[-1])

    @property
    def pending_commit_count(self):
        return len(self._pending_commits)

    def flush(self, up_to_lsn=None):
        """Force the log to stable storage up to ``up_to_lsn`` (inclusive).

        ``up_to_lsn`` is clamped to the last record actually in the log —
        the durable horizon can never run ahead of what was appended.
        Negative LSNs are a caller bug and raise :class:`RecoveryError`.
        """
        if up_to_lsn is None:
            up_to_lsn = len(self._records) - 1
        elif up_to_lsn < 0:
            raise RecoveryError(f"cannot flush to negative lsn {up_to_lsn}")
        up_to_lsn = min(up_to_lsn, len(self._records) - 1)
        if self.faults is not None:
            trigger = self.faults.fire("wal.flush")
            if trigger is not None:  # partial force: horizon advances param/8
                span = up_to_lsn - self.flushed_lsn
                if span > 0:
                    self.flushed_lsn += span * trigger.param // 8
                self.faults.crash(
                    f"crash mid log force (horizon at {self.flushed_lsn})"
                )
        if up_to_lsn > self.flushed_lsn:
            self.flushed_lsn = up_to_lsn
            self.forces += 1
        self._pending_commits = [
            lsn for lsn in self._pending_commits if lsn > self.flushed_lsn
        ]

    def reset_to(self, records):
        """Replace the log contents with ``records`` (all durable).

        Used at restart: the recovered log is the validated durable prefix
        of the crashed log (see ``recovery.durable_prefix``), and new
        activity appends after it.
        """
        self._records = list(records)
        self._last_lsn_of = {}
        for record in self._records:
            self._last_lsn_of[record.txn_id] = record.lsn
        self.flushed_lsn = len(self._records) - 1
        self._pending_commits = []

    # ------------------------------------------------------------------
    # read side (used by recovery)
    # ------------------------------------------------------------------
    def records(self, durable_only=False):
        """All records, optionally truncated at the flushed LSN (a crash
        loses unflushed log tail)."""
        if durable_only:
            return list(self._records[: self.flushed_lsn + 1])
        return list(self._records)

    def record(self, lsn):
        if not 0 <= lsn < len(self._records):
            raise RecoveryError(f"no log record with lsn {lsn}")
        return self._records[lsn]

    def last_lsn(self, txn_id):
        return self._last_lsn_of.get(txn_id, -1)

    def __len__(self):
        return len(self._records)
