"""A multi-tenant SQL server over the embedded database.

The paper's premise is a *threaded DBMS server*: many concurrent query
streams interleaving in one address space, wrecking the I-cache (§2).
:mod:`repro.db.scheduler` reproduces the interleaving for a single
batch of plans; this module adds the serving layer around it — the
piece that actually faces concurrent clients:

* **Sessions** — one :class:`Session` per connection: explicit
  transaction state, a bounded LRU prepared-statement cache keyed by
  content hash (the same keyed-by-value discipline as the harness
  result cache — never object identity), and a seeded per-session RNG
  that drives every backoff decision, so whole serving runs replay
  deterministically.
* **Admission control** — a bounded run queue with per-tenant quotas;
  requests beyond the bound are *shed* with a retryable
  :class:`~repro.errors.ServerBusy` instead of queuing without limit.
* **Weighted fairness** — tenants share the quantum stream by deficit
  round-robin: each replenishment grants a tenant ``weight`` quanta, so
  under saturation per-tenant throughput converges to the configured
  weights on top of the scheduler's round-robin interleaving.
* **Deadlines** — per-query deadlines with cooperative cancellation at
  quantum boundaries: the plan is closed, the transaction aborted (every
  lock and wait-for edge released), and the client sees a retryable
  :class:`~repro.errors.DeadlineExceeded`.
* **Fault isolation** — one session's transient failure (deadlock
  victim, transient disk fault, lock conflict) triggers a budgeted
  jittered-backoff statement restart while every other session keeps
  running; fatal errors kill only the offending connection
  (:class:`~repro.errors.ConnectionLost` for its queued work).  A
  :class:`~repro.db.storage.faults.CrashPoint` is never absorbed —
  nothing survives a process death.

Two drive modes share every code path above:

* ``workers=N`` — a thread pool serving blocking clients.  The storage
  engine is single-threaded by design (the paper's server is one
  address space), so workers interleave at *quantum* granularity under
  one engine lock: real threads, cooperative engine.
* ``workers=0`` — deterministic mode: no threads, a virtual clock, and
  an explicit :meth:`SqlServer.pump` / :meth:`SqlServer.step` loop.
  The chaos harness (:mod:`repro.db.chaos`) and the traced ``serving``
  workload run this mode, which is why crash scenarios and goldens are
  replayable from a seed.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
import time
from collections import OrderedDict, deque

from repro.db.parser import ast_nodes as ast
from repro.db.parser.parser import parse
from repro.db.storage.faults import CrashPoint
from repro.errors import (
    ConnectionLost,
    DeadlineExceeded,
    LockConflictError,
    ReproError,
    ServerBusy,
    ServerError,
    TransactionAborted,
    TransientError,
)

OPEN = "OPEN"
KILLED = "KILLED"
CLOSED = "CLOSED"


def statement_key(sql, hints=None):
    """Content-hash cache key for a statement (value-keyed, like the
    harness result cache — two textually equal statements share one
    entry regardless of where the strings came from)."""
    blob = json.dumps([sql, hints], sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class VirtualClock:
    """Deterministic time: integer ticks advanced by the dispatch loop."""

    def __init__(self):
        self.ticks = 0

    def now(self):
        return self.ticks

    def advance(self, amount=1):
        self.ticks += amount


class WallClock:
    """Real time for the threaded server (monotonic seconds)."""

    def now(self):
        return time.monotonic()

    def advance(self, amount=1):
        pass  # wall time advances itself


class ServerConfig:
    """Tuning knobs for one :class:`SqlServer`.

    ``tenants`` maps tenant name -> fairness weight; ``quotas`` maps
    tenant name -> max queued requests (defaulting to ``max_queue``).
    ``workers=0`` selects deterministic pump mode with a virtual clock;
    any positive count starts that many pool threads on a wall clock.
    ``backoff_base`` is in clock units (ticks when virtual, seconds when
    wall) and defaults per mode.
    """

    __slots__ = ("workers", "quantum_rows", "max_queue", "tenants",
                 "quotas", "stmt_cache_size", "retry_budget",
                 "backoff_base", "backoff_cap", "default_deadline", "seed",
                 "sync_commits")

    def __init__(self, workers=0, quantum_rows=8, max_queue=32,
                 tenants=None, quotas=None, stmt_cache_size=32,
                 retry_budget=4, backoff_base=None, backoff_cap=None,
                 default_deadline=None, seed=1234, sync_commits=True):
        if quantum_rows <= 0:
            raise ServerError("quantum_rows must be positive")
        if max_queue < 1:
            raise ServerError("max_queue must be at least 1")
        if retry_budget < 0:
            raise ServerError("retry_budget must be non-negative")
        self.workers = workers
        self.quantum_rows = quantum_rows
        self.max_queue = max_queue
        self.tenants = dict(tenants) if tenants else {"default": 1}
        for name, weight in self.tenants.items():
            if weight <= 0:
                raise ServerError(f"tenant {name!r} weight must be positive")
        self.quotas = dict(quotas) if quotas else {}
        self.stmt_cache_size = stmt_cache_size
        self.retry_budget = retry_budget
        if backoff_base is None:
            backoff_base = 2 if workers == 0 else 0.002
        if backoff_cap is None:
            backoff_cap = backoff_base * 16
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.default_deadline = default_deadline
        self.seed = seed
        #: False defers commit durability to the group-commit WAL: the
        #: client's commit() returns the (possibly False) durable flag
        self.sync_commits = sync_commits


class PreparedStatement:
    """A parsed statement held by a session's statement cache."""

    __slots__ = ("key", "sql", "stmt", "uses")

    def __init__(self, key, sql, stmt):
        self.key = key
        self.sql = sql
        self.stmt = stmt
        self.uses = 0

    @property
    def is_select(self):
        return isinstance(self.stmt, ast.SelectStmt)


class StatementCache:
    """Bounded LRU of :class:`PreparedStatement`, content-hash keyed."""

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries")

    def __init__(self, capacity):
        if capacity < 1:
            raise ServerError("statement cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries = OrderedDict()

    def prepare(self, sql, hints=None):
        key = statement_key(sql, hints)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
        else:
            self.misses += 1
            entry = PreparedStatement(key, sql, parse(sql))
            self._entries[key] = entry
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        entry.uses += 1
        return entry

    def __len__(self):
        return len(self._entries)

    def __contains__(self, sql):
        return statement_key(sql) in self._entries

    def stats(self):
        return {"size": len(self._entries), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


class Session:
    """Server-side state for one connection."""

    __slots__ = ("session_id", "tenant", "rng", "cache", "txn", "poisoned",
                 "state", "statements", "retries", "deadline_cancels",
                 "txn_aborts")

    def __init__(self, session_id, tenant, seed, stmt_cache_size):
        self.session_id = session_id
        self.tenant = tenant
        self.rng = random.Random(f"server:{seed}:{tenant}:{session_id}")
        self.cache = StatementCache(stmt_cache_size)
        self.txn = None          # explicit transaction, if open
        self.poisoned = False    # txn was server-aborted; commit must fail
        self.state = OPEN
        self.statements = 0
        self.retries = 0
        self.deadline_cancels = 0
        self.txn_aborts = 0


class Ticket:
    """Client-side handle for one submitted request."""

    __slots__ = ("_event", "_result", "_error", "done")

    def __init__(self):
        self._event = threading.Event()
        self._result = None
        self._error = None
        self.done = False

    def _resolve(self, result):
        self._result = result
        self.done = True
        self._event.set()

    def _fail(self, error):
        self._error = error
        self.done = True
        self._event.set()

    def outcome(self):
        """Result or raise; only valid once ``done``."""
        if not self.done:
            raise ServerError("request still in flight")
        if self._error is not None:
            raise self._error
        return self._result

    def wait(self, timeout=None):
        """Block until resolved (threaded mode); result or raise."""
        if not self._event.wait(timeout):
            raise ServerError("timed out waiting for request")
        return self.outcome()


_STATEMENT = "statement"
_BULK = "bulk"


class _Request:
    """One admitted unit of work moving through the dispatch loop."""

    __slots__ = ("session", "kind", "prepared", "hints", "payload",
                 "deadline", "ticket", "txn", "owns_txn", "plan",
                 "columns", "rows", "attempts", "cooldown_until")

    def __init__(self, session, kind, prepared=None, hints=None,
                 payload=None, deadline=None):
        self.session = session
        self.kind = kind
        self.prepared = prepared
        self.hints = hints
        self.payload = payload
        self.deadline = deadline
        self.ticket = Ticket()
        self.txn = None
        self.owns_txn = False
        self.plan = None
        self.columns = None
        self.rows = None
        self.attempts = 0
        self.cooldown_until = 0


class _Tenant:
    """Dispatch-side state for one tenant: queue, deficit, counters."""

    __slots__ = ("name", "weight", "quota", "deficit", "queue",
                 "admitted", "shed", "completed", "failed", "quanta",
                 "rows")

    def __init__(self, name, weight, quota):
        self.name = name
        self.weight = weight
        self.quota = quota
        self.deficit = 0
        self.queue = deque()
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.quanta = 0
        self.rows = 0


class Connection:
    """Client handle bound to one server session."""

    __slots__ = ("_server", "session")

    def __init__(self, server, session):
        self._server = server
        self.session = session

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def submit(self, sql, hints=None, deadline=None):
        """Admit one statement; returns a :class:`Ticket` immediately.

        Raises :class:`~repro.errors.ServerBusy` when admission sheds
        the request.  ``deadline`` is relative, in clock units (ticks in
        deterministic mode, seconds threaded).
        """
        return self._server._submit_statement(
            self.session, sql, hints=hints, deadline=deadline
        )

    def execute(self, sql, hints=None, deadline=None):
        """Run one statement to completion; returns a QueryResult.

        Threaded mode blocks on the ticket; deterministic mode pumps the
        server until this request resolves.
        """
        ticket = self.submit(sql, hints=hints, deadline=deadline)
        return self._server._complete(ticket)

    def submit_bulk(self, table_name, rows, deadline=None):
        """Admit a streaming bulk load (the BULK_PAGE fast path);
        returns its :class:`Ticket` immediately."""
        return self._server._submit_bulk(
            self.session, table_name, list(rows), deadline=deadline
        )

    def bulk_load(self, table_name, rows, deadline=None):
        """Run a bulk load to completion."""
        ticket = self.submit_bulk(table_name, rows, deadline=deadline)
        return self._server._complete(ticket)

    # ------------------------------------------------------------------
    # explicit transactions
    # ------------------------------------------------------------------
    def begin(self):
        self._server._begin(self.session)

    def commit(self):
        """Commit the open transaction; returns the durability flag
        (False only under a group-commit WAL before its force)."""
        return self._server._commit(self.session)

    def rollback(self):
        self._server._rollback(self.session)

    @property
    def in_transaction(self):
        return self.session.txn is not None

    def close(self):
        self._server._close_session(self.session)


class SqlServer:
    """Thread-pool (or deterministic) SQL server over a Database."""

    def __init__(self, db, config=None, **overrides):
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            raise ServerError("pass either a ServerConfig or overrides")
        self.db = db
        self.config = config
        self.clock = WallClock() if config.workers else VirtualClock()
        self._tenants = {
            name: _Tenant(name, weight,
                          config.quotas.get(name, config.max_queue))
            for name, weight in config.tenants.items()
        }
        self._sessions = []
        self._next_session_id = 1
        # _mutex guards queues/sessions/counters; _engine serializes all
        # database work.  Workers never hold _mutex while taking _engine,
        # so taking _mutex *inside* _engine (connection kill) is safe.
        self._mutex = threading.RLock()
        self._work = threading.Condition(self._mutex)
        self._engine = threading.RLock()
        self._threads = []
        self.running = False
        self.crashed = False
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.retries = 0
        self.quanta = 0
        self.idle_ticks = 0
        self.deadline_cancels = 0
        self.fatal_errors = 0

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    def connect(self, tenant="default"):
        """Open a connection for ``tenant``; returns a Connection."""
        if tenant not in self._tenants:
            raise ServerError(
                f"unknown tenant {tenant!r}; configured: "
                f"{sorted(self._tenants)}"
            )
        with self._mutex:
            self._check_alive()
            session = Session(self._next_session_id, tenant,
                              self.config.seed, self.config.stmt_cache_size)
            self._next_session_id += 1
            self._sessions.append(session)
        return Connection(self, session)

    def _check_alive(self):
        if self.crashed:
            raise ConnectionLost("server crashed; reconnect after restart")

    def _close_session(self, session):
        if session.state == OPEN:
            if session.txn is not None and not self.crashed:
                with self._engine:
                    if session.txn is not None and session.txn.is_active:
                        session.txn.abort()
                    session.txn = None
            session.state = CLOSED

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _submit_statement(self, session, sql, hints=None, deadline=None):
        prepared = session.cache.prepare(sql, hints)
        request = _Request(session, _STATEMENT, prepared=prepared,
                           hints=hints,
                           deadline=self._absolute_deadline(deadline))
        return self._admit(request)

    def _submit_bulk(self, session, table_name, rows, deadline=None):
        request = _Request(session, _BULK, payload=(table_name, rows),
                           deadline=self._absolute_deadline(deadline))
        return self._admit(request)

    def _absolute_deadline(self, deadline):
        if deadline is None:
            deadline = self.config.default_deadline
        if deadline is None:
            return None
        return self.clock.now() + deadline

    def _admit(self, request):
        session = request.session
        with self._mutex:
            self._check_alive()
            if session.state != OPEN:
                raise ConnectionLost(
                    f"session {session.session_id} is {session.state}"
                )
            tenant = self._tenants[session.tenant]
            queued = sum(len(t.queue) for t in self._tenants.values())
            if queued >= self.config.max_queue:
                tenant.shed += 1
                self.shed += 1
                raise ServerBusy(
                    f"run queue full ({queued}/{self.config.max_queue}); "
                    "retry after backoff"
                )
            if len(tenant.queue) >= tenant.quota:
                tenant.shed += 1
                self.shed += 1
                raise ServerBusy(
                    f"tenant {tenant.name!r} quota exhausted "
                    f"({len(tenant.queue)}/{tenant.quota}); retry after "
                    "backoff"
                )
            tenant.queue.append(request)
            tenant.admitted += 1
            self.admitted += 1
            session.statements += 1
            self._work.notify()
        return request.ticket

    # ------------------------------------------------------------------
    # explicit transactions (control path: engine lock, no queueing)
    # ------------------------------------------------------------------
    def _begin(self, session):
        self._check_alive()
        if session.state != OPEN:
            raise ConnectionLost(f"session is {session.state}")
        with self._engine:
            if session.txn is not None:
                raise ServerError("transaction already open")
            session.txn = self.db.storage.begin()
            session.poisoned = False

    def _commit(self, session):
        self._check_alive()
        with self._engine:
            if session.poisoned:
                session.poisoned = False
                raise TransactionAborted(
                    "transaction was aborted by the server; retry it"
                )
            if session.txn is None:
                raise ServerError("no open transaction")
            txn = session.txn
            session.txn = None
            return txn.commit(sync=self.config.sync_commits)

    def _rollback(self, session):
        self._check_alive()
        with self._engine:
            session.poisoned = False
            txn = session.txn
            session.txn = None
            if txn is not None and txn.is_active:
                txn.abort()

    # ------------------------------------------------------------------
    # dispatch: weighted deficit round-robin over tenants
    # ------------------------------------------------------------------
    def _next_request(self):
        """Pop the next runnable request (mutex held), or None."""
        now = self.clock.now()
        ready = [
            tenant for tenant in self._tenants.values()
            if any(r.cooldown_until <= now for r in tenant.queue)
        ]
        if not ready:
            return None
        if all(tenant.deficit <= 0 for tenant in ready):
            for tenant in ready:
                tenant.deficit += tenant.weight
        tenant = max(ready, key=lambda t: (t.deficit, t.name))
        for _ in range(len(tenant.queue)):
            request = tenant.queue.popleft()
            if request.cooldown_until <= now:
                tenant.deficit -= 1
                return request
            tenant.queue.append(request)
        return None

    def _requeue(self, request):
        self._tenants[request.session.tenant].queue.append(request)

    def _execute(self, request):
        """Run one quantum of ``request`` under the engine lock."""
        with self._engine:
            done = self._run_quantum(request)
        self.clock.advance(1)
        with self._mutex:
            self.quanta += 1
            self._tenants[request.session.tenant].quanta += 1
        return done

    # ------------------------------------------------------------------
    # deterministic drive (workers == 0)
    # ------------------------------------------------------------------
    def step(self):
        """Run one quantum (or one idle tick); True while work remains.

        Only valid in deterministic mode; the chaos harness interleaves
        client turns with single steps to control the schedule exactly.
        """
        if self.config.workers:
            raise ServerError("step() requires a workers=0 server")
        self._check_alive()
        with self._mutex:
            request = self._next_request()
            pending = request is not None or any(
                t.queue for t in self._tenants.values()
            )
        if request is None:
            if pending:
                # every queued request is cooling down: idle tick
                self.clock.advance(1)
                self.idle_ticks += 1
            return pending
        done = self._execute(request)
        if not done:
            with self._mutex:
                self._requeue(request)
        return True

    def pump(self, max_quanta=1_000_000):
        """Drive the queue to empty; returns quanta+idle steps taken.

        A hard step ceiling turns a scheduling bug into an error
        instead of a hang (the torture-harness discipline)."""
        steps = 0
        while self.step():
            steps += 1
            if steps > max_quanta:
                raise ServerError(
                    f"pump exceeded {max_quanta} steps (livelock?)"
                )
        return steps

    def _complete(self, ticket):
        """Finish one ticket: block (threaded) or pump (deterministic)."""
        if self.config.workers:
            return ticket.wait()
        while not ticket.done:
            if not self.step():
                break
        return ticket.outcome()

    # ------------------------------------------------------------------
    # threaded drive (workers > 0)
    # ------------------------------------------------------------------
    def start(self):
        """Start the worker pool (threaded mode only)."""
        if not self.config.workers:
            raise ServerError("start() requires workers > 0")
        if self.running:
            return
        self.running = True
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"sqlserver-worker-{i}", daemon=True)
            for i in range(self.config.workers)
        ]
        for thread in self._threads:
            thread.start()

    def stop(self):
        """Stop the worker pool, letting in-flight quanta finish."""
        with self._mutex:
            self.running = False
            self._work.notify_all()
        for thread in self._threads:
            thread.join(timeout=10)
        self._threads = []

    def __enter__(self):
        if self.config.workers:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self.config.workers:
            self.stop()
        return False

    def _worker_loop(self):
        while True:
            with self._work:
                request = None
                while self.running and not self.crashed:
                    request = self._next_request()
                    if request is not None:
                        break
                    # short timed wait: cooldowns expire on the wall
                    # clock without an explicit wake-up
                    self._work.wait(0.002)
                if request is None:
                    return
            try:
                done = self._execute(request)
            except CrashPoint:
                self.abandon("server crashed mid-request")
                return
            with self._work:
                if not done:
                    self._requeue(request)
                self._work.notify_all()

    # ------------------------------------------------------------------
    # the quantum: one slice of one request
    # ------------------------------------------------------------------
    def _run_quantum(self, request):
        """Advance ``request`` one quantum; True when it resolved."""
        session = request.session
        if session.state != OPEN:
            request.ticket._fail(
                ConnectionLost(f"session is {session.state}"))
            return True
        if (request.deadline is not None
                and self.clock.now() >= request.deadline):
            self._cancel_deadline(request)
            return True
        if session.poisoned:
            # the session's transaction was server-aborted; every
            # statement fails fast (retryably) until rollback/commit
            # acknowledges the abort — no point burning retry budget
            self._fail(request, TransactionAborted(
                "transaction was aborted by the server; "
                "rollback to continue"))
            return True
        try:
            if request.kind == _BULK:
                self._run_bulk(request)
                return True
            if request.plan is None:
                started = self._start_statement(request)
                if not started:
                    return True  # non-SELECT ran to completion
            root = request.plan.root
            for _ in range(self.config.quantum_rows):
                row = root.next()
                if row is None:
                    self._finish_select(request)
                    return True
                request.rows.append(row)
            return False
        except CrashPoint:
            # a simulated process death must never be absorbed as a
            # per-request failure: latch and let the caller (worker
            # loop / chaos harness) observe the dead server
            self.crashed = True
            raise
        except Exception as exc:
            # TransientError is a mixin, not an Exception subclass, so
            # the dispatch is by isinstance.  LockConflictError carries
            # no TransientError mixin (the scheduler retries the quantum
            # in place), but under no-wait 2PL the server's correct
            # response is the same as for a deadlock victim: abort the
            # transaction and restart the statement — never re-pull a
            # generator that an exception already terminated (that
            # silently truncates results)
            if isinstance(exc, (TransientError, LockConflictError)):
                return self._handle_transient(request, exc)
            if isinstance(exc, ReproError):
                self._fail_statement(request, exc)
                return True
            # fatal: kill only this connection
            self._kill_connection(request, exc)
            return True

    def _start_statement(self, request):
        """Bind a txn and begin execution; True if a plan is now open
        (SELECT), False if the statement already ran to completion."""
        session = request.session
        if session.txn is not None:
            request.txn = session.txn
            request.owns_txn = False
        else:
            request.txn = self.db.storage.begin()
            request.owns_txn = True
        prepared = request.prepared
        if prepared.is_select:
            request.plan = self.db.plan_statement(
                prepared.stmt, request.txn, hints=request.hints
            )
            request.columns = request.plan.columns
            request.rows = []
            request.plan.root.open()
            return True
        result = self.db._apply_statement(
            prepared.stmt, request.txn, request.hints
        )
        self._commit_request(request)
        self._resolve(request, result)
        return False

    def _run_bulk(self, request):
        session = request.session
        table_name, rows = request.payload
        if session.txn is not None:
            request.txn, request.owns_txn = session.txn, False
        else:
            request.txn = self.db.storage.begin()
            request.owns_txn = True
        table = self.db.catalog.table(table_name)
        loaded = table.bulk_load(request.txn, rows)
        self._commit_request(request)
        from repro.db.database import QueryResult

        self._resolve(request, QueryResult(("rows_loaded",), [(loaded,)]))

    def _commit_request(self, request):
        if request.owns_txn and request.txn.is_active:
            request.txn.commit(sync=self.config.sync_commits)
        request.txn = None

    def _finish_select(self, request):
        from repro.db.database import QueryResult

        self._close_plan(request)
        rows = request.rows
        request.rows = None
        self._commit_request(request)
        self._resolve(request, QueryResult(request.columns, rows))

    def _resolve(self, request, result):
        with self._mutex:
            self.completed += 1
            tenant = self._tenants[request.session.tenant]
            tenant.completed += 1
            tenant.rows += len(result.rows)
        request.ticket._resolve(result)

    def _fail(self, request, error):
        with self._mutex:
            self.failed += 1
            self._tenants[request.session.tenant].failed += 1
        request.ticket._fail(error)

    def _close_plan(self, request):
        """Close the plan, swallowing close-time errors (the scheduler's
        exception-safe close discipline); a CrashPoint still flies."""
        plan, request.plan = request.plan, None
        if plan is None:
            return
        try:
            plan.root.close()
        except CrashPoint:
            raise
        except Exception:
            pass

    def _abort_request_txn(self, request):
        """Release everything ``request`` holds: plan first (drops pins),
        then the transaction (drops locks and wait-for edges)."""
        self._close_plan(request)
        request.rows = None
        txn = request.txn
        request.txn = None
        if txn is None:
            return
        session = request.session
        if request.owns_txn:
            if txn.is_active:
                txn.abort()
        else:
            # statement failure aborts the client's whole transaction
            # (no-wait 2PL has no partial rollback); the session is
            # poisoned so a later commit() fails loudly and retryably
            if txn.is_active:
                txn.abort()
            session.txn = None
            session.poisoned = True
            session.txn_aborts += 1

    def _handle_transient(self, request, exc):
        """Deadlock / lock conflict / transient fault during a quantum."""
        session = request.session
        in_explicit_txn = not request.owns_txn and request.txn is not None
        self._abort_request_txn(request)
        if in_explicit_txn:
            # the client owns the transaction boundary: surface a
            # retryable abort instead of silently re-running half of it
            failure = TransactionAborted(
                f"statement aborted mid-transaction: {exc}"
            )
            failure.__cause__ = exc
            self._fail(request, failure)
            return True
        request.attempts += 1
        session.retries += 1
        with self._mutex:
            self.retries += 1
        if request.attempts > self.config.retry_budget:
            if not isinstance(exc, TransientError):
                # budget-exhausted lock conflict: keep the client-visible
                # contract that every serving failure is retryable
                wrapped = TransactionAborted(
                    f"statement retry budget exhausted: {exc}"
                )
                wrapped.__cause__ = exc
                exc = wrapped
            self._fail(request, exc)  # still transient: client may retry
            return True
        request.cooldown_until = self.clock.now() + self._backoff(
            session, request.attempts
        )
        return False  # requeue: restart the statement after cooldown

    def _backoff(self, session, attempts):
        """Jittered exponential backoff in clock units, seeded per
        session so chaos scenarios replay deterministically."""
        base = self.config.backoff_base * (2 ** (attempts - 1))
        jitter = 0.5 + session.rng.random()
        return min(base * jitter, self.config.backoff_cap)

    def _cancel_deadline(self, request):
        session = request.session
        self._abort_request_txn(request)
        session.deadline_cancels += 1
        with self._mutex:
            self.deadline_cancels += 1
        self._fail(request, DeadlineExceeded(
            f"query exceeded its deadline (now={self.clock.now()})"
        ))

    def _fail_statement(self, request, exc):
        """Statement-level failure (bad SQL, unknown table, exhausted
        budget surfaced by the planner): the session survives."""
        self._abort_request_txn(request)
        self._fail(request, exc)

    def _kill_connection(self, request, exc):
        """Fatal failure: isolate it to this connection."""
        session = request.session
        self._abort_request_txn(request)
        if session.txn is not None:
            if session.txn.is_active:
                session.txn.abort()
            session.txn = None
        session.state = KILLED
        with self._mutex:
            self.fatal_errors += 1
            # everything else this session had queued dies with it
            for tenant in self._tenants.values():
                doomed = [r for r in tenant.queue if r.session is session]
                for r in doomed:
                    tenant.queue.remove(r)
                    r.ticket._fail(ConnectionLost(
                        "connection killed by a fatal error"))
                    tenant.failed += 1
                    self.failed += 1
        self._fail(request, exc)

    def abandon(self, reason="server stopped"):
        """Fail every queued request with a retryable ConnectionLost.

        Called after a crash (nothing in flight survives a process
        death) — the chaos invariant that clients only ever observe
        clean retryable errors hinges on this path."""
        with self._mutex:
            self.crashed = True
            self.running = False
            for tenant in self._tenants.values():
                while tenant.queue:
                    request = tenant.queue.popleft()
                    request.ticket._fail(ConnectionLost(reason))
                    tenant.failed += 1
                    self.failed += 1
            self._work.notify_all()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self):
        """JSON-ready serving counters (the shell's ``.stats`` source)."""
        with self._mutex:
            cache = {"hits": 0, "misses": 0, "evictions": 0}
            for session in self._sessions:
                for key in cache:
                    cache[key] += getattr(session.cache, key)
            return {
                "admitted": self.admitted,
                "shed": self.shed,
                "completed": self.completed,
                "failed": self.failed,
                "retries": self.retries,
                "quanta": self.quanta,
                "idle_ticks": self.idle_ticks,
                "deadline_cancels": self.deadline_cancels,
                "fatal_errors": self.fatal_errors,
                "sessions": len(self._sessions),
                "active_sessions": sum(
                    1 for s in self._sessions if s.state == OPEN
                ),
                "statement_cache": cache,
                "tenants": {
                    t.name: {
                        "weight": t.weight,
                        "quota": t.quota,
                        "queued": len(t.queue),
                        "admitted": t.admitted,
                        "shed": t.shed,
                        "completed": t.completed,
                        "failed": t.failed,
                        "quanta": t.quanta,
                        "rows": t.rows,
                    }
                    for t in self._tenants.values()
                },
            }
