"""Recursive-descent SQL parser.

Grammar (subset sufficient for the Wisconsin and TPC-H workloads, plus
DML)::

    statement := select | insert | update | delete | create | drop
    create    := CREATE TABLE ident '(' col type (',' ...)* ')'
               | CREATE [CLUSTERED] INDEX ON ident '(' ident ')'
    drop      := DROP TABLE ident
    insert    := INSERT INTO ident ['(' idents ')'] VALUES row (',' row)*
    update    := UPDATE ident SET ident '=' expr (',' ...)* [WHERE or_expr]
    delete    := DELETE FROM ident [WHERE or_expr]
    select    := SELECT [DISTINCT] items FROM tables [WHERE or_expr]
                 [GROUP BY exprs] [HAVING or_expr]
                 [ORDER BY order_items] [LIMIT n]
    items     := '*' | item (',' item)*
    item      := expr [AS ident | ident]
    tables    := table (',' table)*
    table     := ident [ident]
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | predicate
    predicate := addsub (cmp_op (addsub | subquery))?
               | addsub BETWEEN addsub AND addsub
               | addsub IN '(' select ')'
               | '(' or_expr ')'
    addsub    := muldiv (('+'|'-') muldiv)*
    muldiv    := primary (('*'|'/') primary)*
    primary   := NUMBER | STRING | DATE STRING | column | agg | '(' ... ')'
    agg       := (SUM|COUNT|AVG|MIN|MAX) '(' ('*' | expr) ')'
    column    := ident ['.' ident]
"""

from __future__ import annotations

from repro.db.exec.schema import date_to_int
from repro.db.parser import ast_nodes as ast
from repro.db.parser.tokenizer import (
    END,
    IDENT,
    KW,
    NUMBER,
    OP,
    PUNCT,
    STRING,
    tokenize,
)
from repro.errors import SqlSyntaxError

_CMP_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})
_AGG_FUNCS = frozenset({"SUM", "COUNT", "AVG", "MIN", "MAX"})


def parse(sql):
    """Parse one SQL statement (SELECT, INSERT, UPDATE, or DELETE)."""
    parser = _Parser(tokenize(sql))
    token = parser.peek()
    if token.is_kw("INSERT"):
        stmt = parser.insert_stmt()
    elif token.is_kw("UPDATE"):
        stmt = parser.update_stmt()
    elif token.is_kw("DELETE"):
        stmt = parser.delete_stmt()
    elif token.is_kw("CREATE"):
        stmt = parser.create_stmt()
    elif token.is_kw("DROP"):
        stmt = parser.drop_stmt()
    else:
        stmt = parser.select_stmt()
    parser.skip_punct(";")
    parser.expect_end()
    return stmt


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def peek(self):
        return self._tokens[self._pos]

    def advance(self):
        token = self._tokens[self._pos]
        if token.kind != END:
            self._pos += 1
        return token

    def accept_kw(self, word):
        if self.peek().is_kw(word):
            return self.advance()
        return None

    def expect_kw(self, word):
        token = self.advance()
        if not (token.kind == KW and token.value == word):
            raise SqlSyntaxError(f"expected {word}, got {token.value!r} at {token.pos}")
        return token

    def accept_punct(self, ch):
        token = self.peek()
        if token.kind == PUNCT and token.value == ch:
            return self.advance()
        return None

    def skip_punct(self, ch):
        while self.accept_punct(ch):
            pass

    def expect_punct(self, ch):
        token = self.advance()
        if not (token.kind == PUNCT and token.value == ch):
            raise SqlSyntaxError(f"expected {ch!r}, got {token.value!r} at {token.pos}")

    def expect_ident(self):
        token = self.advance()
        if token.kind != IDENT:
            raise SqlSyntaxError(
                f"expected identifier, got {token.value!r} at {token.pos}"
            )
        return token.value

    def expect_end(self):
        token = self.peek()
        if token.kind != END:
            raise SqlSyntaxError(f"trailing input at {token.pos}: {token.value!r}")

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def select_stmt(self):
        self.expect_kw("SELECT")
        distinct = bool(self.accept_kw("DISTINCT"))
        items = self.select_items()
        self.expect_kw("FROM")
        tables = self.table_refs()
        where = None
        if self.accept_kw("WHERE"):
            where = self.or_expr()
        group_by = ()
        if self.accept_kw("GROUP"):
            self.expect_kw("BY")
            group_by = self.expr_list()
        having = None
        if self.accept_kw("HAVING"):
            having = self.or_expr()
        order_by = ()
        if self.accept_kw("ORDER"):
            self.expect_kw("BY")
            order_by = self.order_items()
        limit = None
        if self.accept_kw("LIMIT"):
            token = self.advance()
            if token.kind != NUMBER or not isinstance(token.value, int):
                raise SqlSyntaxError(f"LIMIT needs an integer at {token.pos}")
            limit = token.value
        return ast.SelectStmt(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def insert_stmt(self):
        self.expect_kw("INSERT")
        self.expect_kw("INTO")
        table = self.expect_ident()
        columns = ()
        if self.accept_punct("("):
            names = [self.expect_ident()]
            while self.accept_punct(","):
                names.append(self.expect_ident())
            self.expect_punct(")")
            columns = tuple(names)
        self.expect_kw("VALUES")
        rows = [self.value_row()]
        while self.accept_punct(","):
            rows.append(self.value_row())
        return ast.InsertStmt(table, columns, tuple(rows))

    def value_row(self):
        self.expect_punct("(")
        values = [self.add_expr()]
        while self.accept_punct(","):
            values.append(self.add_expr())
        self.expect_punct(")")
        return tuple(values)

    def update_stmt(self):
        self.expect_kw("UPDATE")
        table = self.expect_ident()
        self.expect_kw("SET")
        assignments = [self.assignment()]
        while self.accept_punct(","):
            assignments.append(self.assignment())
        where = None
        if self.accept_kw("WHERE"):
            where = self.or_expr()
        return ast.UpdateStmt(table, tuple(assignments), where)

    def assignment(self):
        column = self.expect_ident()
        token = self.advance()
        if not (token.kind == OP and token.value == "="):
            raise SqlSyntaxError(f"expected = in SET at {token.pos}")
        return column, self.add_expr()

    def delete_stmt(self):
        self.expect_kw("DELETE")
        self.expect_kw("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_kw("WHERE"):
            where = self.or_expr()
        return ast.DeleteStmt(table, where)

    def create_stmt(self):
        self.expect_kw("CREATE")
        clustered = bool(self.accept_kw("CLUSTERED"))
        if self.accept_kw("INDEX"):
            self.expect_kw("ON")
            table = self.expect_ident()
            self.expect_punct("(")
            column = self.expect_ident()
            self.expect_punct(")")
            return ast.CreateIndexStmt(table, column, clustered)
        if clustered:
            raise SqlSyntaxError("CLUSTERED only applies to CREATE INDEX")
        self.expect_kw("TABLE")
        table = self.expect_ident()
        self.expect_punct("(")
        columns = [self.column_definition()]
        while self.accept_punct(","):
            columns.append(self.column_definition())
        self.expect_punct(")")
        return ast.CreateTableStmt(table, tuple(columns))

    def column_definition(self):
        name = self.expect_ident()
        type_name = self.expect_ident()
        if type_name in ("int", "integer", "bigint"):
            return name, "int"
        if type_name in ("float", "real", "double"):
            return name, "float"
        if type_name in ("str", "string", "varchar", "char", "text"):
            width = 16
            if self.accept_punct("("):
                token = self.advance()
                if token.kind != NUMBER or not isinstance(token.value, int):
                    raise SqlSyntaxError(
                        f"string width must be an integer at {token.pos}"
                    )
                width = token.value
                self.expect_punct(")")
            return name, ("str", width)
        raise SqlSyntaxError(
            f"unknown column type {type_name!r}; use int, float, or varchar(n)"
        )

    def drop_stmt(self):
        self.expect_kw("DROP")
        self.expect_kw("TABLE")
        return ast.DropTableStmt(self.expect_ident())

    def select_items(self):
        token = self.peek()
        if token.kind == OP and token.value == "*":
            self.advance()
            return []
        items = [self.select_item()]
        while self.accept_punct(","):
            items.append(self.select_item())
        return items

    def select_item(self):
        expr = self.add_expr()
        alias = ""
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == IDENT:
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def table_refs(self):
        tables = [self.table_ref()]
        while self.accept_punct(","):
            tables.append(self.table_ref())
        return tables

    def table_ref(self):
        name = self.expect_ident()
        alias = name
        if self.peek().kind == IDENT:
            alias = self.advance().value
        return ast.TableRef(name, alias)

    def expr_list(self):
        exprs = [self.add_expr()]
        while self.accept_punct(","):
            exprs.append(self.add_expr())
        return exprs

    def order_items(self):
        items = [self.order_item()]
        while self.accept_punct(","):
            items.append(self.order_item())
        return items

    def order_item(self):
        expr = self.add_expr()
        descending = False
        if self.accept_kw("DESC"):
            descending = True
        else:
            self.accept_kw("ASC")
        return ast.OrderItem(expr, descending)

    # ------------------------------------------------------------------
    # boolean expressions
    # ------------------------------------------------------------------
    def or_expr(self):
        terms = [self.and_expr()]
        while self.accept_kw("OR"):
            terms.append(self.and_expr())
        if len(terms) == 1:
            return terms[0]
        return ast.BoolOp("OR", tuple(terms))

    def and_expr(self):
        terms = [self.not_expr()]
        while self.accept_kw("AND"):
            terms.append(self.not_expr())
        if len(terms) == 1:
            return terms[0]
        return ast.BoolOp("AND", tuple(terms))

    def not_expr(self):
        if self.accept_kw("NOT"):
            return ast.NotOp(self.not_expr())
        return self.predicate()

    def predicate(self):
        left = self.add_expr()
        token = self.peek()
        if token.kind == OP and token.value in _CMP_OPS:
            op = self.advance().value
            right = self.comparand()
            return ast.BinaryOp(op, left, right)
        if token.is_kw("BETWEEN"):
            self.advance()
            lo = self.add_expr()
            self.expect_kw("AND")
            hi = self.add_expr()
            return ast.BetweenOp(left, lo, hi)
        if token.is_kw("IN"):
            self.advance()
            self.expect_punct("(")
            sub = self.select_stmt()
            self.expect_punct(")")
            return ast.InOp(left, ast.Subquery(sub))
        return left

    def comparand(self):
        """Right side of a comparison: expression or scalar subquery."""
        if self.peek().kind == PUNCT and self.peek().value == "(":
            # lookahead: '(' SELECT ... is a subquery
            nxt = self._tokens[self._pos + 1]
            if nxt.is_kw("SELECT"):
                self.advance()
                sub = self.select_stmt()
                self.expect_punct(")")
                return ast.Subquery(sub)
        return self.add_expr()

    # ------------------------------------------------------------------
    # arithmetic expressions
    # ------------------------------------------------------------------
    def add_expr(self):
        left = self.mul_expr()
        while True:
            token = self.peek()
            if token.kind == OP and token.value in ("+", "-"):
                op = self.advance().value
                left = ast.BinaryOp(op, left, self.mul_expr())
            else:
                return left

    def mul_expr(self):
        left = self.primary()
        while True:
            token = self.peek()
            if token.kind == OP and token.value in ("*", "/"):
                op = self.advance().value
                left = ast.BinaryOp(op, left, self.primary())
            else:
                return left

    def primary(self):
        token = self.peek()
        if token.kind == NUMBER:
            self.advance()
            return ast.Literal(token.value)
        if token.kind == STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.is_kw("DATE"):
            self.advance()
            lit = self.advance()
            if lit.kind != STRING:
                raise SqlSyntaxError(f"DATE needs a string literal at {lit.pos}")
            return ast.Literal(date_to_int(lit.value))
        if token.kind == KW and token.value in _AGG_FUNCS:
            return self.aggregate()
        if token.kind == OP and token.value == "-":
            self.advance()
            inner = self.primary()
            if isinstance(inner, ast.Literal):
                return ast.Literal(-inner.value)
            return ast.BinaryOp("-", ast.Literal(0), inner)
        if token.kind == PUNCT and token.value == "(":
            self.advance()
            if self.peek().is_kw("SELECT"):
                sub = self.select_stmt()
                self.expect_punct(")")
                return ast.Subquery(sub)
            expr = self.or_expr()
            self.expect_punct(")")
            return expr
        if token.kind == IDENT:
            return self.column_ref()
        raise SqlSyntaxError(f"unexpected token {token.value!r} at {token.pos}")

    def aggregate(self):
        func = self.advance().value.lower()
        self.expect_punct("(")
        token = self.peek()
        if token.kind == OP and token.value == "*":
            self.advance()
            arg = None
        else:
            arg = self.add_expr()
        self.expect_punct(")")
        return ast.Aggregate(func, arg)

    def column_ref(self):
        first = self.expect_ident()
        if self.accept_punct("."):
            second = self.expect_ident()
            return ast.ColumnRef(first, second)
        return ast.ColumnRef("", first)
