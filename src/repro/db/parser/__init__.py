"""SQL front end: tokenizer, AST, recursive-descent parser."""

from repro.db.parser.parser import parse
from repro.db.parser.tokenizer import tokenize

__all__ = ["parse", "tokenize"]
