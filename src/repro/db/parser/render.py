"""SQL unparser: render an AST back to SQL text.

``parse(render(stmt))`` returns an equal AST for every statement the
parser accepts (the round-trip property is enforced by tests over both
random ASTs and the full workload query corpus).  Useful for logging
plans, normalizing queries, and golden tests.
"""

from __future__ import annotations

from repro.db.parser import ast_nodes as ast
from repro.errors import SqlError


def render(stmt):
    """Render any supported statement AST to SQL text."""
    if isinstance(stmt, ast.SelectStmt):
        return render_select(stmt)
    if isinstance(stmt, ast.InsertStmt):
        return _render_insert(stmt)
    if isinstance(stmt, ast.UpdateStmt):
        return _render_update(stmt)
    if isinstance(stmt, ast.DeleteStmt):
        return _render_delete(stmt)
    if isinstance(stmt, ast.CreateTableStmt):
        return _render_create_table(stmt)
    if isinstance(stmt, ast.CreateIndexStmt):
        clustered = "CLUSTERED " if stmt.clustered else ""
        return f"CREATE {clustered}INDEX ON {stmt.table} ({stmt.column})"
    if isinstance(stmt, ast.DropTableStmt):
        return f"DROP TABLE {stmt.table}"
    raise SqlError(f"cannot render {type(stmt).__name__}")


def render_select(stmt):
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    if stmt.items:
        parts.append(", ".join(_render_item(item) for item in stmt.items))
    else:
        parts.append("*")
    parts.append("FROM")
    parts.append(", ".join(_render_table(table) for table in stmt.tables))
    if stmt.where is not None:
        parts.append("WHERE")
        parts.append(render_expr(stmt.where))
    if stmt.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(render_expr(g) for g in stmt.group_by))
    if stmt.having is not None:
        parts.append("HAVING")
        parts.append(render_expr(stmt.having))
    if stmt.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(
            render_expr(item.expr) + (" DESC" if item.descending else "")
            for item in stmt.order_by
        ))
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    return " ".join(parts)


def _render_item(item):
    text = render_expr(item.expr)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def _render_table(table):
    if table.alias != table.name:
        return f"{table.name} {table.alias}"
    return table.name


def _render_insert(stmt):
    columns = f" ({', '.join(stmt.columns)})" if stmt.columns else ""
    rows = ", ".join(
        "(" + ", ".join(render_expr(v) for v in row) + ")" for row in stmt.rows
    )
    return f"INSERT INTO {stmt.table}{columns} VALUES {rows}"


def _render_update(stmt):
    sets = ", ".join(
        f"{column} = {render_expr(expr)}" for column, expr in stmt.assignments
    )
    where = f" WHERE {render_expr(stmt.where)}" if stmt.where is not None else ""
    return f"UPDATE {stmt.table} SET {sets}{where}"


def _render_create_table(stmt):
    columns = ", ".join(
        f"{name} {_render_type(spec)}" for name, spec in stmt.columns
    )
    return f"CREATE TABLE {stmt.table} ({columns})"


def _render_type(spec):
    if spec == "int":
        return "int"
    if spec == "float":
        return "float"
    return f"varchar({spec[1]})"


def _render_delete(stmt):
    where = f" WHERE {render_expr(stmt.where)}" if stmt.where is not None else ""
    return f"DELETE FROM {stmt.table}{where}"


def render_expr(node):
    """Render an expression AST; parenthesizes conservatively so the
    round trip preserves structure."""
    if isinstance(node, ast.Literal):
        return _render_literal(node.value)
    if isinstance(node, ast.ColumnRef):
        if node.qualifier:
            return f"{node.qualifier}.{node.name}"
        return node.name
    if isinstance(node, ast.BinaryOp):
        return (
            f"({render_expr(node.left)} {node.op} {render_expr(node.right)})"
        )
    if isinstance(node, ast.BetweenOp):
        return (
            f"{render_expr(node.expr)} BETWEEN {render_expr(node.lo)} "
            f"AND {render_expr(node.hi)}"
        )
    if isinstance(node, ast.BoolOp):
        joiner = f" {node.op} "
        return "(" + joiner.join(render_expr(t) for t in node.terms) + ")"
    if isinstance(node, ast.NotOp):
        return f"NOT {render_expr(node.term)}"
    if isinstance(node, ast.Aggregate):
        arg = "*" if node.arg is None else render_expr(node.arg)
        return f"{node.func.upper()}({arg})"
    if isinstance(node, ast.Subquery):
        return f"({render_select(node.select)})"
    if isinstance(node, ast.InOp):
        return (
            f"{render_expr(node.expr)} IN "
            f"({render_select(node.subquery.select)})"
        )
    raise SqlError(f"cannot render expression {node!r}")


def _render_literal(value):
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, int) and value < 0:
        return f"({value})"
    return str(value)
