"""SQL tokenizer.

Produces a list of :class:`Token`; keywords are case-insensitive and
uppercased, identifiers are lowercased.  String literals use single
quotes with ``''`` as the escape.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import SqlSyntaxError

KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY ORDER ASC DESC LIMIT AS AND OR NOT
    BETWEEN IN SUM COUNT AVG MIN MAX DATE INTERVAL DISTINCT HAVING
    INSERT INTO VALUES UPDATE SET DELETE
    CREATE TABLE INDEX ON DROP CLUSTERED
    """.split()
)

# token kinds
KW = "KW"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
PUNCT = "PUNCT"
END = "END"

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),.;"


class Token(NamedTuple):
    kind: str
    value: object
    pos: int

    def is_kw(self, word):
        return self.kind == KW and self.value == word


def tokenize(text):
    """Tokenize ``text``; raises :class:`SqlSyntaxError` on bad input."""
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            i = _lex_number(text, i, tokens)
            continue
        if ch.isalpha() or ch == "_":
            i = _lex_word(text, i, tokens)
            continue
        if ch == "'":
            i = _lex_string(text, i, tokens)
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                value = "<>" if op == "!=" else op
                tokens.append(Token(OP, value, i))
                i += len(op)
                break
        else:
            if ch in _PUNCT:
                tokens.append(Token(PUNCT, ch, i))
                i += 1
            else:
                raise SqlSyntaxError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token(END, None, n))
    return tokens


def _lex_number(text, i, tokens):
    start = i
    n = len(text)
    seen_dot = False
    while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
        if text[i] == ".":
            # a trailing dot followed by non-digit is punctuation, stop
            if i + 1 >= n or not text[i + 1].isdigit():
                break
            seen_dot = True
        i += 1
    raw = text[start:i]
    value = float(raw) if "." in raw else int(raw)
    tokens.append(Token(NUMBER, value, start))
    return i


def _lex_word(text, i, tokens):
    start = i
    n = len(text)
    while i < n and (text[i].isalnum() or text[i] == "_"):
        i += 1
    word = text[start:i]
    upper = word.upper()
    if upper in KEYWORDS:
        tokens.append(Token(KW, upper, start))
    else:
        tokens.append(Token(IDENT, word.lower(), start))
    return i


def _lex_string(text, i, tokens):
    start = i
    i += 1
    parts = []
    n = len(text)
    while i < n:
        if text[i] == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            tokens.append(Token(STRING, "".join(parts), start))
            return i + 1
        parts.append(text[i])
        i += 1
    raise SqlSyntaxError(f"unterminated string starting at {start}")
