"""Unbound SQL AST.

The parser produces these nodes; the planner binds names to tuple
positions and lowers them to :mod:`repro.db.exec.expressions`.
"""

from __future__ import annotations

from typing import NamedTuple


class ColumnRef(NamedTuple):
    """``name`` or ``qualifier.name``."""

    qualifier: str  # "" when unqualified
    name: str


class Literal(NamedTuple):
    value: object  # int, float, or str (dates already converted to int)


class BinaryOp(NamedTuple):
    """Arithmetic (+ - * /) or comparison (= <> < <= > >=)."""

    op: str
    left: object
    right: object


class BetweenOp(NamedTuple):
    expr: object
    lo: object
    hi: object


class BoolOp(NamedTuple):
    """AND / OR over two or more terms."""

    op: str  # "AND" | "OR"
    terms: tuple


class NotOp(NamedTuple):
    term: object


class Aggregate(NamedTuple):
    """SUM/COUNT/AVG/MIN/MAX.  ``arg`` is None for COUNT(*)."""

    func: str
    arg: object


class Subquery(NamedTuple):
    """A parenthesized SELECT used as a scalar value or IN source."""

    select: object  # SelectStmt


class InOp(NamedTuple):
    """``expr IN (subquery)``."""

    expr: object
    subquery: object


class SelectItem(NamedTuple):
    expr: object
    alias: str  # "" if none


class TableRef(NamedTuple):
    name: str
    alias: str  # defaults to name


class OrderItem(NamedTuple):
    expr: object
    descending: bool


class SelectStmt(NamedTuple):
    items: tuple  # of SelectItem; empty means SELECT *
    tables: tuple  # of TableRef
    where: object  # expression or None
    group_by: tuple  # of ColumnRef/expressions
    having: object  # expression or None (may contain Aggregates)
    order_by: tuple  # of OrderItem
    limit: object  # int or None
    distinct: bool


class InsertStmt(NamedTuple):
    table: str
    columns: tuple  # of column names ("" tuple means schema order)
    rows: tuple  # of tuples of expressions


class UpdateStmt(NamedTuple):
    table: str
    assignments: tuple  # of (column name, expression)
    where: object  # expression or None


class DeleteStmt(NamedTuple):
    table: str
    where: object  # expression or None


class CreateTableStmt(NamedTuple):
    table: str
    columns: tuple  # of (name, type_spec) pairs


class CreateIndexStmt(NamedTuple):
    table: str
    column: str
    clustered: bool


class DropTableStmt(NamedTuple):
    table: str
