"""Chaos-under-load: crash consistency with live multi-session traffic.

PR 4's torture harness proved crash consistency *at rest*: one driver,
raw storage calls, a planned fault, recovery, invariants.  This module
proves the same guarantees *under serving conditions*: a seeded mix of
SQL clients (OLTP point transactions, scans with deadlines, bulk loads)
runs against a deterministic :class:`~repro.db.server.SqlServer` while a
:class:`~repro.db.storage.faults.FaultInjector` fires; the planned fault
kills the "process" mid-traffic; the harness plays the role of the
operating system (volatile state gone, log truncated at the forced
horizon via :func:`~repro.db.storage.torture.surviving_log`); the
storage manager restarts through recovery; and the invariant suite
checks, per client:

* **durability** — every commit acknowledged durable is a recovery
  winner and its rows are on disk;
* **atomicity** — no partial transaction is visible: the recovered heap
  is *exactly* the fold of winner commits, and within one client the
  winners form a prefix of its commit order (group commit may only lose
  a suffix);
* **clean failure** — every error any client observed, before or during
  the crash, carries the :class:`~repro.errors.TransientError` mixin
  (``ServerBusy``, ``DeadlineExceeded``, ``TransactionAborted``,
  ``ConnectionLost``, ...): a chaos run may slow clients down but never
  hands them a non-retryable failure;
* **index integrity** — the secondary index passes its structural
  invariants and agrees entry-for-entry with the heap;
* **service resumes** — after recovery a fresh server accepts the
  reconnecting clients and a faultless resume round completes, leaving
  the heap equal to the oracle again.

Everything is deterministic and replayable from ``(seed, schedule)``:
client scripts come from per-client seeded RNGs, the server runs in
deterministic pump mode on a virtual clock (every backoff decision draws
from per-session seeded RNGs), and the fault plan is pure in its inputs
— the report's volume fingerprint is bit-identical across re-runs.
"""

from __future__ import annotations

import random
from typing import NamedTuple

from repro.db.database import Database
from repro.db.server import ServerConfig, SqlServer
from repro.db.storage.faults import (
    GROUP_COMMIT_SCHEDULES,
    SCHEDULES,
    CrashPoint,
    FaultInjector,
    derive_plan,
)
from repro.db.storage.torture import (
    InvariantViolation,
    disk_fingerprint,
    surviving_log,
)
from repro.errors import ServerBusy, TransientError

TABLE = "kv"
INDEX_NAME = "kv.k"

#: tenant -> fairness weight; four tenants so quota/fairness paths are
#: always exercised (the acceptance soak uses the same shape, larger)
TENANT_WEIGHTS = {"oltp": 4, "analytics": 2, "batch": 1, "admin": 1}

#: (tenant, role) per client: four writers, two scanners with
#: deadlines, one bulk loader, one cross-partition reader
CLIENT_ROLES = (
    ("oltp", "write"),
    ("oltp", "write"),
    ("oltp", "write"),
    ("analytics", "scan"),
    ("batch", "bulk"),
    ("analytics", "scan"),
    ("admin", "read"),
    ("oltp", "write"),
)

#: key-space layout: writers own [1000*cid, 1000*cid + keys); the bulk
#: loader appends fresh keys from its own high band
_BULK_BASE = 500_000

#: hard ceilings that turn a livelock into a failure, not a hang
_MAX_ROUNDS = 60_000
_MAX_CLIENT_RESTARTS = 24


class ChaosReport(NamedTuple):
    """Outcome of one chaos scenario."""

    seed: object
    schedule: str
    plan: dict
    crashed: bool            # did the planned fault fire mid-traffic
    crash_reason: str
    fired: list              # injector journal
    acked: int               # commits acknowledged durable pre-crash
    unforced: int            # group-commit returns before their force
    resurrected: int         # in-flight commits that proved durable
    client_errors: dict      # error type name -> count (all retryable)
    shed: int                # admission-control rejections
    server_retries: int      # budgeted statement restarts
    client_restarts: int     # whole-transaction client restarts
    rounds: int
    resumed_commits: int     # commits completed after recovery
    rows: int                # live heap rows at the end
    fingerprint: str         # digest of the final volume

    def to_dict(self):
        return {
            "seed": self.seed,
            "schedule": self.schedule,
            "plan": self.plan,
            "crashed": self.crashed,
            "crash_reason": self.crash_reason,
            "fired": [list(f) for f in self.fired],
            "acked": self.acked,
            "unforced": self.unforced,
            "resurrected": self.resurrected,
            "client_errors": dict(self.client_errors),
            "shed": self.shed,
            "server_retries": self.server_retries,
            "client_restarts": self.client_restarts,
            "rounds": self.rounds,
            "resumed_commits": self.resumed_commits,
            "rows": self.rows,
            "fingerprint": self.fingerprint,
        }


class _Client:
    """One scripted session: deterministic traffic over its own keys.

    Writers run explicit transactions (insert/update/delete plus
    validated read-your-writes point queries) and keep the torture-style
    epoch oracle; scanners and the admin reader run autocommit
    statements whose only obligation is that failures stay retryable.
    """

    def __init__(self, cid, tenant, role, seed_label, keys_per_client,
                 txns_left):
        self.cid = cid
        self.tenant = tenant
        self.role = role
        self.rng = random.Random(f"chaos:{seed_label}:client:{cid}")
        self.keys = keys_per_client
        self.base = 1000 * cid
        self.conn = None
        self.committed = {}      # key -> value as of last commit
        self.working = None      # key -> value inside the open txn
        self.script = None
        self.pos = 0
        self.in_txn = False
        self.txns_left = txns_left
        self.ticket = None
        self.ticket_op = None
        self.pending = None      # (txn_id, state) snapshotted pre-commit
        self.epochs = []         # (txn_id, state, durable_acked)
        self.restarts = 0
        self.cooldown = 0
        self.errors = []         # every exception this client observed
        self.next_value = cid * 1_000_000 + 1
        self.bulk_cursor = 0

    @property
    def done(self):
        return (self.txns_left == 0 and not self.in_txn
                and self.ticket is None)

    # ------------------------------------------------------------------
    # deterministic script generation (no storage calls)
    # ------------------------------------------------------------------
    def _take_value(self):
        value = self.next_value
        self.next_value += 1
        return value

    def _make_script(self):
        rng = self.rng
        if self.role == "bulk":
            count = rng.randint(8, 20)
            start = _BULK_BASE + 1000 * self.cid + self.bulk_cursor
            self.bulk_cursor += count
            return [("bulk", start, count)]
        if self.role == "scan":
            return [
                ("scan", rng.randint(0, 10_000),
                 rng.choice((None, None, 20 + rng.randint(0, 30))))
                for _ in range(rng.randint(2, 4))
            ]
        if self.role == "read":
            writer_bases = [1000 * i for i, (_t, r) in
                            enumerate(CLIENT_ROLES) if r == "write"]
            return [
                ("peek",
                 rng.choice(writer_bases) + rng.randint(0, self.keys - 1))
                for _ in range(rng.randint(2, 5))
            ]
        # write role: torture-style insert-biased mix + validated reads
        ops = []
        live = sorted(self.committed)
        for _ in range(rng.randint(3, 7)):
            roll = rng.random()
            if not live:
                op = "ins"
            elif len(live) >= self.keys:
                op = "del" if roll < 0.4 else "upd"
            elif roll < 0.5:
                op = "ins"
            elif roll < 0.72:
                op = "upd"
            elif roll < 0.88:
                op = "del"
            else:
                op = "get"
            if op == "ins":
                free = [k for k in range(self.base, self.base + self.keys)
                        if k not in live]
                key = rng.choice(free)
                live.append(key)
                live.sort()
            else:
                key = rng.choice(live)
                if op == "del":
                    live.remove(key)
            ops.append((op, key, self._take_value()))
        return ops

    # ------------------------------------------------------------------
    # one turn of the client state machine
    # ------------------------------------------------------------------
    def turn(self, driver):
        if self.done:
            return
        if self.cooldown > 0:
            self.cooldown -= 1
            return
        if self.ticket is not None:
            if self.ticket.done:
                self._absorb(driver)
            return
        if self.role in ("scan", "read"):
            self._turn_autocommit(driver)
            return
        if not self.in_txn:
            if self.script is None:
                self.script = self._make_script()
            self.conn.begin()  # a CrashPoint here flies to the driver
            self.in_txn = True
            self.working = dict(self.committed)
            self.pos = 0
            return
        if self.pos >= len(self.script):
            self._commit(driver)
            return
        self._submit(driver, self.script[self.pos])

    def _turn_autocommit(self, driver):
        if self.script is None:
            self.script = self._make_script()
            self.pos = 0
        if self.pos >= len(self.script):
            self.script = None
            self.txns_left -= 1
            return
        self._submit(driver, self.script[self.pos])

    def _submit(self, driver, op):
        kind = op[0]
        try:
            if kind == "bulk":
                _verb, start, count = op
                rows = [(start + i, self._take_value())
                        for i in range(count)]
                ticket = self.conn.submit_bulk(TABLE, rows)
                op = ("bulk", start, rows)
            elif kind == "scan":
                _verb, threshold, deadline = op
                ticket = self.conn.submit(
                    f"SELECT k FROM {TABLE} WHERE v >= {threshold}",
                    deadline=deadline,
                )
            elif kind == "peek":
                ticket = self.conn.submit(
                    f"SELECT v FROM {TABLE} WHERE k = {op[1]}")
            elif kind == "get":
                ticket = self.conn.submit(
                    f"SELECT v FROM {TABLE} WHERE k = {op[1]}")
            elif kind == "ins":
                _verb, key, value = op
                ticket = self.conn.submit(
                    f"INSERT INTO {TABLE} (k, v) VALUES ({key}, {value})")
            elif kind == "upd":
                _verb, key, value = op
                ticket = self.conn.submit(
                    f"UPDATE {TABLE} SET v = {value} WHERE k = {key}")
            else:  # del
                _verb, key, _value = op
                ticket = self.conn.submit(
                    f"DELETE FROM {TABLE} WHERE k = {key}")
        except ServerBusy as exc:
            self.errors.append(exc)
            self.cooldown = 1 + self.rng.randint(0, 2)
            return
        self.ticket = ticket
        self.ticket_op = op

    def _absorb(self, driver):
        ticket, op = self.ticket, self.ticket_op
        self.ticket = None
        self.ticket_op = None
        try:
            result = ticket.outcome()
        except Exception as exc:
            self.errors.append(exc)
            if not isinstance(exc, TransientError):
                driver.fail(
                    f"client {self.cid} saw non-retryable "
                    f"{type(exc).__name__}: {exc}"
                )
            if self.in_txn:
                self._restart_txn(driver)
            else:
                self.pos += 1  # autocommit op: record the error, move on
            return
        self._apply(driver, op, result)
        self.pos += 1

    def _apply(self, driver, op, result):
        """Validate one successful result against the oracle."""
        kind = op[0]
        if kind in ("scan", "peek"):
            return
        if kind == "get":
            expected = self.working.get(op[1])
            got = [row[0] for row in result.rows]
            want = [] if expected is None else [expected]
            if got != want:
                driver.fail(
                    f"client {self.cid} read k={op[1]} -> {got}, "
                    f"expected {want} (read-your-writes violated)"
                )
            return
        if kind == "bulk":
            _verb, _start, rows = op
            if result.rows[0][0] != len(rows):
                driver.fail(
                    f"bulk load reported {result.rows[0][0]} rows "
                    f"for {len(rows)}"
                )
            for key, value in rows:
                self.working[key] = value
            return
        _verb, key, value = op
        affected = result.rows[0][0]
        if affected != 1:
            driver.fail(
                f"client {self.cid} {kind} k={key} touched {affected} "
                "rows (expected exactly 1)"
            )
        if kind == "ins" or kind == "upd":
            self.working[key] = value
        else:
            del self.working[key]

    def _commit(self, driver):
        txn_id = self.conn.session.txn.txn_id
        self.pending = (txn_id, dict(self.working))
        try:
            # a planned fault may kill the process inside this commit;
            # self.pending survives for the resurrection oracle
            durable = self.conn.commit()
        except CrashPoint:
            raise
        except Exception as exc:
            if not isinstance(exc, TransientError):
                raise
            self.errors.append(exc)
            self.pending = None
            self._restart_txn(driver)
            return
        self.epochs.append((txn_id, self.pending[1], durable))
        (driver.acked if durable else driver.unforced).append(txn_id)
        self.committed = self.pending[1]
        self.pending = None
        self.in_txn = False
        self.script = None
        self.working = None
        self.txns_left -= 1
        self.restarts = 0

    def _restart_txn(self, driver):
        """The server aborted our transaction (conflict, deadline,
        deadlock): rollback and replay the same script from the top."""
        try:
            self.conn.rollback()
        except CrashPoint:
            raise
        except Exception as exc:
            if not isinstance(exc, TransientError):
                raise
            self.errors.append(exc)  # e.g. ConnectionLost after a crash
        self.in_txn = False
        self.working = None
        self.pos = 0
        self.restarts += 1
        driver.client_restarts += 1
        if self.restarts > _MAX_CLIENT_RESTARTS:
            driver.fail(
                f"client {self.cid} exceeded {_MAX_CLIENT_RESTARTS} "
                "transaction restarts (livelock?)"
            )
        # capped exponential backoff with seeded jitter: UPDATE/DELETE
        # statements scan (and share-lock) the whole table, so write
        # transactions serialize under no-wait 2PL — losers must back
        # off long enough for a whole competing transaction to finish
        self.cooldown = (min(3 * (2 ** min(self.restarts, 5)), 72)
                         + self.rng.randint(0, 7))


class _ChaosDriver:
    """Builds the database + server + clients and drives the traffic."""

    def __init__(self, seed, schedule, *, pool_pages, keys_per_client,
                 txns_per_client, intensity):
        self.seed = seed
        self.schedule = schedule
        self.label = f"{seed}:{schedule}"
        self.plan = derive_plan(seed, schedule, intensity=intensity)
        self.grouped = schedule in GROUP_COMMIT_SCHEDULES
        self.db = Database(
            pool_pages=pool_pages,
            wal_group_size=3 if self.grouped else 1,
            wal_group_window=24 if self.grouped else 0,
        )
        # schema setup is not under test: build it before faults install
        self.db.execute(f"CREATE TABLE {TABLE} (k INT, v INT)")
        self.db.create_index(TABLE, "k")
        self.server = self.make_server()
        self.clients = [
            _Client(cid, tenant, role, self.label, keys_per_client,
                    txns_per_client if role in ("write", "bulk") else 2)
            for cid, (tenant, role) in enumerate(CLIENT_ROLES)
        ]
        for client in self.clients:
            client.conn = self.server.connect(client.tenant)
        self.acked = []
        self.unforced = []
        self.client_restarts = 0
        self.rounds = 0

    def make_server(self):
        return SqlServer(self.db, ServerConfig(
            workers=0,
            quantum_rows=6,
            max_queue=6,          # tight: admission sheds under bursts
            tenants=TENANT_WEIGHTS,
            stmt_cache_size=8,
            retry_budget=5,
            seed=self.label,
            sync_commits=not self.grouped,
        ))

    def fail(self, message):
        raise InvariantViolation(
            f"{message} [plan {self.plan.to_json()}]"
        )

    def drive(self):
        """Run traffic until every client finishes or the fault fires.

        Returns ``(crashed, crash_reason)``.  On a crash the server is
        abandoned: every in-flight ticket fails with a retryable
        ConnectionLost, exactly what clients of a dead process see.
        """
        try:
            while not all(client.done for client in self.clients):
                for client in self.clients:
                    client.turn(self)
                self.server.step()
                self.server.step()
                self.rounds += 1
                if self.rounds > _MAX_ROUNDS:
                    self.fail("chaos driver exceeded round ceiling")
            self.server.pump()
            return False, ""
        except CrashPoint as death:
            self.server.abandon(str(death))
            return True, str(death)


def run_chaos(seed, schedule, *, pool_pages=12, keys_per_client=18,
              txns_per_client=4, resume_txns=2, intensity=3.0):
    """Run one chaos scenario; returns a :class:`ChaosReport` or raises
    :class:`~repro.db.storage.torture.InvariantViolation` with the
    replayable fault plan embedded in the message."""
    driver = _ChaosDriver(
        seed, schedule, pool_pages=pool_pages,
        keys_per_client=keys_per_client, txns_per_client=txns_per_client,
        intensity=intensity,
    )
    injector = FaultInjector(driver.plan)
    driver.db.storage.install_faults(injector)
    crashed, crash_reason = driver.drive()
    pre_crash_stats = driver.server.stats()

    # -- play the operating system: volatile state dies, the log is what
    # the forced horizon (plus any torn tail) left behind, then recover
    sm = driver.db.storage
    stats = sm.restart(surviving_log(sm, driver.plan))
    table = driver.db.catalog.table(TABLE)
    table.row_count = sm.file_record_count(table.file_id)

    _collect_inflight_errors(driver)
    _check_errors_retryable(driver)
    resurrected, expected = _recovered_oracle(driver, stats)
    actual = _check_heap(driver, sm, table, expected)
    _check_index(driver, sm, actual)

    # -- service resumes: a fresh server, reconnecting clients, one
    # faultless round; the heap must equal the oracle again
    pre_resume_commits = sum(len(c.epochs) for c in driver.clients)
    driver.server = driver.make_server()
    for client in driver.clients:
        client.conn = driver.server.connect(client.tenant)
        client.script = None
        client.pos = 0
        client.in_txn = False
        client.working = None
        client.pending = None
        client.ticket = None
        client.ticket_op = None
        client.restarts = 0
        client.cooldown = 0
        client.txns_left = (resume_txns
                            if client.role in ("write", "bulk") else 1)
    resumed_crash, reason = driver.drive()
    if resumed_crash:
        driver.fail(f"faultless resume phase crashed: {reason}")
    _check_errors_retryable(driver)
    final_expected = {}
    for client in driver.clients:
        final_expected.update(client.committed)
    actual = _check_heap(driver, sm, table, final_expected)
    _check_index(driver, sm, actual)
    resumed_commits = (
        sum(len(c.epochs) for c in driver.clients) - pre_resume_commits
    )
    resume_stats = driver.server.stats()

    sm.pool.flush_all()
    errors = {}
    for client in driver.clients:
        for exc in client.errors:
            name = type(exc).__name__
            errors[name] = errors.get(name, 0) + 1
    return ChaosReport(
        seed=seed, schedule=schedule, plan=driver.plan.to_dict(),
        crashed=crashed, crash_reason=crash_reason,
        fired=list(injector.fired), acked=len(driver.acked),
        unforced=len(driver.unforced), resurrected=resurrected,
        client_errors=errors,
        shed=pre_crash_stats["shed"] + resume_stats["shed"],
        server_retries=(pre_crash_stats["retries"]
                        + resume_stats["retries"]),
        client_restarts=driver.client_restarts, rounds=driver.rounds,
        resumed_commits=resumed_commits, rows=len(actual),
        fingerprint=disk_fingerprint(sm.disk),
    )


def _collect_inflight_errors(driver):
    """Absorb tickets that were in flight when the server died."""
    for client in driver.clients:
        if client.ticket is not None and client.ticket.done:
            try:
                client.ticket.outcome()
            except Exception as exc:
                client.errors.append(exc)
            client.ticket = None
            client.ticket_op = None


def _check_errors_retryable(driver):
    for client in driver.clients:
        for exc in client.errors:
            if not isinstance(exc, TransientError):
                driver.fail(
                    f"client {client.cid} observed non-retryable "
                    f"{type(exc).__name__}: {exc}"
                )


def _recovered_oracle(driver, stats):
    """Fold every client's commit history against the winner set.

    Returns ``(resurrected, expected)`` and resets each client's
    ``committed`` view to its recovered state so the resume phase starts
    from truth."""
    for txn_id in driver.acked:
        if txn_id not in stats.winners:
            driver.fail(f"acked txn {txn_id} lost by recovery")
    resurrected = 0
    expected = {}
    for client in driver.clients:
        won = [txn_id in stats.winners
               for txn_id, _state, _durable in client.epochs]
        if any(won[i] and not won[i - 1] for i in range(1, len(won))):
            driver.fail(
                f"client {client.cid} has non-prefix winners "
                f"{[e[0] for e in client.epochs]} -> {won}"
            )
        state = {}
        for pos in range(len(client.epochs) - 1, -1, -1):
            if won[pos]:
                state = client.epochs[pos][1]
                break
        if (client.pending is not None
                and client.pending[0] in stats.winners):
            # the crash landed inside commit(): the client never got the
            # ack, but the commit record proved durable — resurrection
            state = client.pending[1]
            resurrected += 1
        client.pending = None
        client.committed = dict(state)
        expected.update(state)
    return resurrected, expected


def _check_heap(driver, sm, table, expected):
    """The heap must hold exactly the oracle's rows; returns key->rid."""
    txn = sm.begin()
    actual = {}
    values = {}
    for rid, row in table.scan(txn):
        key, value = row
        if key in actual:
            driver.fail(f"duplicate key {key} in heap")
        actual[key] = rid
        values[key] = value
    txn.commit()
    if values != expected:
        missing = sorted(set(expected) - set(values))
        extra = sorted(set(values) - set(expected))
        wrong = sorted(k for k in set(expected) & set(values)
                       if expected[k] != values[k])
        driver.fail(
            f"heap mismatch: missing {missing}, extra {extra}, "
            f"wrong values at {wrong}"
        )
    return actual


def _check_index(driver, sm, actual):
    """Index invariants + entry-for-entry agreement with the heap."""
    tree = sm.index(INDEX_NAME)
    tree.check_invariants()
    entries = list(tree.range_scan())
    if len(entries) != len(actual):
        driver.fail(
            f"index has {len(entries)} entries for {len(actual)} rows"
        )
    for key, rid in entries:
        if key not in actual:
            driver.fail(f"index entry {key} has no heap row (orphan)")
        if actual[key] != rid:
            driver.fail(
                f"index rid {rid} disagrees with heap rid {actual[key]} "
                f"at key {key}"
            )


def run_sweep(seeds, schedules=SCHEDULES, **kwargs):
    """Run a scenario grid; yields ``(seed, schedule, report_or_error)``.

    Convenience for tests and the CLI: invariant violations are yielded,
    not raised, so one bad scenario does not mask the rest of the sweep.
    """
    for schedule in schedules:
        for seed in seeds:
            try:
                yield seed, schedule, run_chaos(seed, schedule, **kwargs)
            except InvariantViolation as violation:
                yield seed, schedule, violation
