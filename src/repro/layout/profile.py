"""Execution profiles: call-edge weights and function heat from traces.

This is the feedback information OM consumes (the paper generated it by
running wisc-prof and wisc+tpch and merging the two profiles, §5.1).
"""

from __future__ import annotations

from collections import Counter

from repro.instrument.trace import CALL, EXEC


class CallGraphProfile:
    """Aggregated profile over one or more traces."""

    def __init__(self):
        self.edge_counts = Counter()  # (caller_fid, callee_fid) -> calls
        self.call_counts = Counter()  # callee_fid -> calls
        self.instr_counts = Counter()  # fid -> dynamic instructions

    def add_trace(self, trace):
        edges = self.edge_counts
        calls = self.call_counts
        instrs = self.instr_counts
        for kind, a, b, c in trace.events():
            if kind == CALL:
                calls[a] += 1
                if b >= 0:
                    edges[(b, a)] += 1
            elif kind == EXEC:
                instrs[a] += abs(c - b) + 1
        return self

    def merge(self, other):
        """Fold another profile in (the paper merges two profile runs)."""
        self.edge_counts.update(other.edge_counts)
        self.call_counts.update(other.call_counts)
        self.instr_counts.update(other.instr_counts)
        return self

    def hottest_functions(self, n=10):
        return self.instr_counts.most_common(n)

    def callee_fanout(self):
        """Distinct-callee count per caller (paper §3.2: 80% call < 8)."""
        fanout = Counter()
        for (caller, _callee), _count in self.edge_counts.items():
            fanout[caller] += 1
        return dict(fanout)

    def fraction_with_fanout_below(self, limit=8):
        """Fraction of calling functions with fewer than ``limit`` distinct
        callees (the paper's ATOM statistic)."""
        fanout = self.callee_fanout()
        if not fanout:
            return 1.0
        small = sum(1 for count in fanout.values() if count < limit)
        return small / len(fanout)


def profile_of(*traces):
    """Build a profile from traces."""
    profile = CallGraphProfile()
    for trace in traces:
        profile.add_trace(trace)
    return profile
