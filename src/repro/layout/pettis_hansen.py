"""Pettis–Hansen "closest is best" function ordering.

The second level of OM's code layout (§5.1): functions that call each
other frequently are placed adjacently.  Classic greedy chain merging:
process call edges by descending weight; when both endpoints are at the
ends of different chains, splice the chains so the endpoints touch.
Finally, chains are emitted by descending total edge weight, and
never-called functions follow in a deterministic order.
"""

from __future__ import annotations


def pettis_hansen_order(all_fids, edge_counts):
    """Return a list of fids: the closest-is-best placement order."""
    chain_of = {}  # fid -> chain id
    chains = {}  # chain id -> list of fids
    chain_weight = {}
    next_chain = 0

    def chain_for(fid):
        nonlocal next_chain
        if fid not in chain_of:
            chain_of[fid] = next_chain
            chains[next_chain] = [fid]
            chain_weight[next_chain] = 0
            next_chain += 1
        return chain_of[fid]

    # deterministic order: weight desc, then edge for tie-break
    edges = sorted(edge_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    for (caller, callee), weight in edges:
        ca = chain_for(caller)
        cb = chain_for(callee)
        if ca == cb:
            chain_weight[ca] += weight
            continue
        a = chains[ca]
        b = chains[cb]
        # orient so that caller sits at the tail of its chain and callee
        # at the head of its chain, when possible
        if a[0] == caller:
            a.reverse()
        if b[-1] == callee:
            b.reverse()
        if a[-1] != caller or b[0] != callee:
            # endpoints buried inside chains: cannot splice adjacently
            chain_weight[ca] += weight
            continue
        a.extend(b)
        for fid in b:
            chain_of[fid] = ca
        chain_weight[ca] += chain_weight.pop(cb) + weight
        del chains[cb]

    ordered_chains = sorted(
        chains.items(), key=lambda kv: (-chain_weight[kv[0]], kv[1][0])
    )
    placed = []
    seen = set()
    for _cid, chain in ordered_chains:
        for fid in chain:
            placed.append(fid)
            seen.add(fid)
    for fid in all_fids:
        if fid not in seen:
            placed.append(fid)
    return placed
