"""Code layout: profiles, Pettis-Hansen ordering, O5/OM address maps."""

from repro.layout.layouts import (
    INSTRS_PER_LINE,
    AddressMap,
    link_order,
    o5_layout,
    om_layout,
)
from repro.layout.pettis_hansen import pettis_hansen_order
from repro.layout.profile import CallGraphProfile, profile_of

__all__ = [
    "AddressMap",
    "CallGraphProfile",
    "INSTRS_PER_LINE",
    "link_order",
    "o5_layout",
    "om_layout",
    "pettis_hansen_order",
    "profile_of",
]
