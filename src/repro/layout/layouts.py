"""Address layouts: O5 vs OM binaries as pure address transforms.

The same trace (function ids + intra-function instruction offsets) is
replayed under different *address maps*, exactly as the paper runs the
same program compiled two ways.  An address map models the three layout
properties that matter to I-cache behaviour:

* **function order** — O5 uses an arbitrary (link-order) sequence; OM
  uses Pettis–Hansen closest-is-best order from a profile (§5.1 level 2).
* **intra-function sequentiality** — compiled code takes a branch every
  few instructions; the hot path is *not* laid out contiguously unless a
  feedback-directed pass straightens it.  Each function's cache-line
  blocks are permuted with a per-function deterministic shuffle;
  ``sequentiality`` is the fraction of blocks left in fall-through
  position (O5 low, OM high — §5.1 level 1: "conditional branches are
  most likely not taken ... increases the average number of instructions
  executed between two taken branches").  Block 0 (the entry) is always
  in place, which is what lets CGP prefetch "the first N lines" of a
  function usefully.
* **code inflation** — O5 binaries interleave cold basic blocks with the
  hot path, spreading hot offsets over more lines; OM's layout compacts
  them (inflation 1.0).

OM additionally executes 12% fewer dynamic instructions (OM's link-time
re-optimizations, §5.1): ``instr_scale`` = 0.88.

Addresses are in units of 32-byte cache lines (8 virtual instructions).
"""

from __future__ import annotations

import random
import zlib
from array import array

from repro.errors import LayoutError
from repro.layout.pettis_hansen import pettis_hansen_order

INSTRS_PER_LINE = 8
O5_INFLATION = 1.10
OM_INFLATION = 1.0
O5_SEQUENTIALITY = 0.72
OM_SEQUENTIALITY = 0.90
OM_INSTR_SCALE = 0.88


class AddressMap:
    """Maps (fid, instruction offset) -> cache line address.

    The fetch engine inlines the mapping arithmetic using the exported
    arrays (``base_line``, ``perm``, ``num``, ``den``) for speed:
    ``line = base_line[fid] + perm[fid][(offset * num) // den]``.
    """

    def __init__(self, image, order, inflation, sequentiality, instr_scale,
                 name, seed=7):
        if inflation < 1.0:
            raise LayoutError("inflation must be >= 1.0")
        if not 0.0 <= sequentiality <= 1.0:
            raise LayoutError("sequentiality must be in [0, 1]")
        self.name = name
        self.instr_scale = instr_scale
        self.sequentiality = sequentiality
        # integer inflation arithmetic: block index = off * num // den
        self.num = int(round(inflation * 64))
        self.den = 64 * INSTRS_PER_LINE
        n = image.function_count
        self.base_line = [0] * n
        self.size_lines = [0] * n
        self.perm = [None] * n
        self.order = list(order)
        if sorted(self.order) != list(range(n)):
            raise LayoutError("order must be a permutation of all fids")
        cursor = 0
        rng = random.Random(seed)
        for fid in self.order:
            info = image.info(fid)
            span = (info.size_instrs * self.num) // self.den + 1
            self.base_line[fid] = cursor
            self.size_lines[fid] = span
            self.perm[fid] = _block_permutation(span, sequentiality, rng)
            cursor += span
        self.total_lines = cursor
        self._flat_translation = None  # built lazily by translation_table()
        self._head_extents = {}  # n_lines -> array, built by head_extents()

    def line_of(self, fid, offset_instr):
        """Cache line address of an instruction offset inside ``fid``."""
        block = (offset_instr * self.num) // self.den
        return self.base_line[fid] + self.perm[fid][block]

    def translation_table(self):
        """Flat precomputed block -> global line translation.

        Returns ``(table, block_base)`` — two contiguous int64 arrays
        (buffer-protocol compatible, so the optimized replay core can
        take zero-copy numpy views) with, for every function ``fid`` and
        block index ``k < size_lines[fid]``::

            table[block_base[fid] + k] == base_line[fid] + perm[fid][k]

        One lookup in ``table`` replaces the per-event
        ``base_line[fid] + perm[fid][block]`` nested indexing.  Built
        lazily once per layout (O(total_lines)) and cached.
        """
        cached = self._flat_translation
        if cached is None:
            block_base = array("q", bytes(8 * len(self.base_line)))
            table = array("q")
            cursor = 0
            for fid, (base, perm) in enumerate(zip(self.base_line, self.perm)):
                block_base[fid] = cursor
                table.extend([base + block for block in perm])
                cursor += len(perm)
            cached = (table, block_base)
            self._flat_translation = cached
        return cached

    def head_extents(self, n_lines):
        """Per-function end line of an ``n_lines`` head-prefetch window.

        Returns a contiguous int64 array ``end`` with, for every
        ``fid``::

            end[fid] == base_line[fid] + min(n_lines, size_lines[fid])

        so a CGP/CGHC head prefetch for ``fid`` targets exactly the
        span ``[base_line[fid], end[fid])`` — the ``min`` clamp is
        folded in here, at table-build time, and the replay core's
        head-prefetch resolution becomes two table lookups plus one
        range scan.  Built lazily once per (layout, ``n_lines``) and
        cached (``getattr``: layouts unpickled from older artifact
        caches may lack the cache attribute).
        """
        cache = getattr(self, "_head_extents", None)
        if cache is None:
            cache = self._head_extents = {}
        ends = cache.get(n_lines)
        if ends is None:
            ends = array("q", [
                base + (n_lines if n_lines < span else span)
                for base, span in zip(self.base_line, self.size_lines)
            ])
            cache[n_lines] = ends
        return ends

    def entry_line(self, fid):
        """A function's entry is always its first line (block 0 pinned)."""
        return self.base_line[fid]

    def extent(self, fid):
        """(first line, line count) of the function's body."""
        return self.base_line[fid], self.size_lines[fid]

    def footprint_bytes(self):
        return self.total_lines * 32

    def __repr__(self):
        return (
            f"AddressMap({self.name}, {len(self.base_line)} functions, "
            f"{self.footprint_bytes() // 1024}KB, seq={self.sequentiality})"
        )


def _block_permutation(span, sequentiality, rng):
    """Permute a function's blocks, keeping ``sequentiality`` of them in
    fall-through position and pinning the entry block."""
    perm = list(range(span))
    if span <= 2 or sequentiality >= 1.0:
        return perm
    movable = [
        k for k in range(1, span) if rng.random() >= sequentiality
    ]
    if len(movable) >= 2:
        targets = movable[:]
        for i in range(len(targets) - 1, 0, -1):
            j = rng.randrange(i + 1)
            targets[i], targets[j] = targets[j], targets[i]
        for position, target in zip(movable, targets):
            perm[position] = target
    return perm


def link_order(image):
    """O5's arbitrary-but-deterministic function order (link order)."""
    return sorted(
        range(image.function_count),
        key=lambda fid: (zlib.crc32(image.name_of(fid).encode("utf-8")), fid),
    )


def o5_layout(image, inflation=O5_INFLATION, sequentiality=O5_SEQUENTIALITY):
    """The O5-optimized binary: no profile feedback."""
    return AddressMap(
        image, link_order(image), inflation, sequentiality, 1.0, "O5"
    )


def om_layout(image, profile, inflation=OM_INFLATION,
              sequentiality=OM_SEQUENTIALITY, instr_scale=OM_INSTR_SCALE):
    """The OM binary: profile-directed layout (both OM levels)."""
    order = pettis_hansen_order(range(image.function_count), profile.edge_counts)
    return AddressMap(
        image, order, inflation, sequentiality, instr_scale, "O5+OM"
    )
