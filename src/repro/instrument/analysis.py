"""Trace analysis: the measurements behind the paper's workload claims.

Pure functions over a trace (plus an image/layout where addresses are
needed) computing the characterization numbers §2–§5.4 of the paper cite:
call spacing, call-depth distribution, function heat, I-line working
sets, and reuse distances (the quantity that decides whether a 32KB L1
can hold the hot code).
"""

from __future__ import annotations

from collections import Counter

from repro.instrument.trace import CALL, EXEC, RET


def call_depth_histogram(trace):
    """Histogram {depth: instructions executed at that depth}."""
    histogram = Counter()
    depth = 0
    for kind, _a, b, c in trace.events():
        if kind == CALL:
            depth += 1
        elif kind == RET:
            depth = max(0, depth - 1)
        elif kind == EXEC:
            histogram[depth] += abs(c - b) + 1
    return dict(histogram)


def instructions_between_calls(trace):
    """Mean straight-line instructions executed per call (§5.4)."""
    calls = trace.call_count()
    if calls == 0:
        return float(trace.total_instructions())
    return trace.total_instructions() / calls


def function_heat(trace, image, top=20):
    """The hottest functions by executed instructions:
    [(name, instructions, fraction of total)]."""
    heat = Counter()
    for kind, a, b, c in trace.events():
        if kind == EXEC:
            heat[a] += abs(c - b) + 1
    total = sum(heat.values()) or 1
    return [
        (image.name_of(fid), count, count / total)
        for fid, count in heat.most_common(top)
    ]


def touched_lines(trace, layout):
    """Set of distinct I-cache lines the trace touches under a layout."""
    lines = set()
    base = layout.base_line
    perm = layout.perm
    num = layout.num
    den = layout.den
    for kind, a, b, c in trace.events():
        if kind != EXEC:
            continue
        lo, hi = (b, c) if b <= c else (c, b)
        fbase = base[a]
        fperm = perm[a]
        for block in range((lo * num) // den, (hi * num) // den + 1):
            lines.add(fbase + fperm[block])
    return lines


def working_set_curve(trace, layout, window_instructions=100_000):
    """Distinct lines touched per fixed-size instruction window.

    Returns a list of per-window counts — the instantaneous code working
    set, the number that decides L1 pressure.
    """
    counts = []
    current = set()
    budget = window_instructions
    base = layout.base_line
    perm = layout.perm
    num = layout.num
    den = layout.den
    for kind, a, b, c in trace.events():
        if kind != EXEC:
            continue
        lo, hi = (b, c) if b <= c else (c, b)
        fbase = base[a]
        fperm = perm[a]
        for block in range((lo * num) // den, (hi * num) // den + 1):
            current.add(fbase + fperm[block])
        budget -= hi - lo + 1
        if budget <= 0:
            counts.append(len(current))
            current = set()
            budget = window_instructions
    if current:
        counts.append(len(current))
    return counts


def line_reuse_distances(trace, layout, cap=100_000):
    """Histogram of I-line reuse distances (distinct lines between two
    touches of the same line), bucketed by powers of two.

    A reuse distance above the L1 capacity (1024 lines for the paper's
    32KB/32B cache) means the second touch misses under LRU.  ``cap``
    bounds the per-line tracking cost.
    """
    last_touch = {}  # line -> index in the distinct-access sequence
    stack = []  # approximate LRU stack of lines (most recent last)
    positions = {}  # line -> position in stack
    buckets = Counter()

    def bucket_of(distance):
        label = 1
        while label < distance:
            label <<= 1
        return label

    base = layout.base_line
    perm = layout.perm
    num = layout.num
    den = layout.den
    for kind, a, b, c in trace.events():
        if kind != EXEC:
            continue
        lo, hi = (b, c) if b <= c else (c, b)
        fbase = base[a]
        fperm = perm[a]
        for block in range((lo * num) // den, (hi * num) // den + 1):
            line = fbase + fperm[block]
            position = positions.get(line)
            if position is None:
                buckets["cold"] += 1
            else:
                distance = len(stack) - 1 - position
                # entries behind `position` marked stale count high; an
                # exact LRU stack would be O(n) per access, so distances
                # are upper bounds within one bucket
                buckets[bucket_of(max(1, distance))] += 1
                stack[position] = None  # tombstone
            positions[line] = len(stack)
            stack.append(line)
            if len(stack) > cap:
                stack = [entry for entry in stack if entry is not None]
                positions = {line: i for i, line in enumerate(stack)}
    return dict(buckets)


def characterize(trace, image, layout, l1_lines=1024):
    """One-call workload characterization summary (dict)."""
    depths = call_depth_histogram(trace)
    weighted_depth = (
        sum(d * n for d, n in depths.items()) / max(1, sum(depths.values()))
    )
    lines = touched_lines(trace, layout)
    windows = working_set_curve(trace, layout)
    reuse = line_reuse_distances(trace, layout)
    far = sum(n for key, n in reuse.items()
              if key == "cold" or (isinstance(key, int) and key > l1_lines))
    total_reuse = sum(reuse.values()) or 1
    return {
        "instructions": trace.total_instructions(),
        "calls": trace.call_count(),
        "instrs_between_calls": instructions_between_calls(trace),
        "mean_call_depth": weighted_depth,
        "touched_lines": len(lines),
        "touched_kb": len(lines) * 32 // 1024,
        "mean_window_working_set": (
            sum(windows) / len(windows) if windows else 0
        ),
        "reuse_beyond_l1_fraction": far / total_reuse,
        "hottest": function_heat(trace, image, top=5),
    }
