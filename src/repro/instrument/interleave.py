"""Trace interleaving: compose independent traces into one multiprogrammed
stream with context switches every ``quantum`` instructions.

The DB workloads are already interleaved at query granularity by the
cooperative scheduler inside one trace; this module serves mixes of
*separate* programs (e.g. CPU2000 pairings) where each program has its
own call stack.  A ``SWITCH tid`` event precedes each burst so the fetch
engine can keep per-thread architectural stacks while hardware structures
(caches, RAS, CGHC) stay shared — exactly the interference a real context
switch causes.
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.instrument.trace import EXEC, SWITCH, Trace


def interleave(traces, quantum=20000, call_overhead=2):
    """Round-robin merge of ``traces`` at ``quantum`` instructions.

    Each input trace must not itself contain SWITCH events.  Switching
    happens only at event boundaries, so a quantum may overshoot by one
    event.  Returns a new :class:`Trace`.
    """
    if not traces:
        raise TraceError("nothing to interleave")
    if quantum <= 0:
        raise TraceError("quantum must be positive")
    cursors = [0] * len(traces)
    merged = Trace()
    active = [tid for tid, t in enumerate(traces) if len(t) > 0]
    while active:
        still = []
        for tid in active:
            trace = traces[tid]
            merged.add_switch(tid)
            cursors[tid] = _copy_burst(
                merged, trace, cursors[tid], quantum, call_overhead
            )
            if cursors[tid] < len(trace):
                still.append(tid)
        active = still
    return merged


def _copy_burst(merged, trace, start, quantum, call_overhead):
    budget = quantum
    index = start
    kinds, a, b, c = trace.kinds, trace.a, trace.b, trace.c
    n = len(kinds)
    while index < n and budget > 0:
        kind = kinds[index]
        if kind == SWITCH:
            raise TraceError("input traces must not contain SWITCH events")
        merged.kinds.append(kind)
        merged.a.append(a[index])
        merged.b.append(b[index])
        merged.c.append(c[index])
        if kind == EXEC:
            budget -= abs(c[index] - b[index]) + 1
        else:
            budget -= call_overhead
        index += 1
    return index
