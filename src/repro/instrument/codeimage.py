"""Virtual code image: mapping Python functions to code addresses.

The paper traces Alpha binaries; we trace Python.  To get an instruction
stream, every Python function of the traced system is assigned a *virtual
code segment* whose length derives from its real bytecode size (one
Python bytecode op expands to :data:`INSTRS_PER_PYOP` RISC-ish
instructions — SHORE-era C++ member functions compile to a few
instructions per source operation, and the exact constant only scales
footprints uniformly).

During tracing, intra-function progress is read from ``frame.f_lasti``
(the current bytecode offset), so the generated fetch stream has genuine
intra-function structure: call-site positions, loops, early returns.

The image is *layout independent*: it knows function sizes, not
addresses.  :mod:`repro.layout` assigns addresses.
"""

from __future__ import annotations

import types

from repro.errors import TraceError

INSTRS_PER_PYOP = 3
MIN_FUNC_INSTRS = 8
BYTES_PER_INSTR = 4


class FunctionInfo:
    """One traced function in the code image.

    ``module`` is the dotted path of the defining module (None for
    synthetic runtime helpers) — observability metadata only: layouts
    key on ``name``, so adding or changing modules can never move code.
    """

    __slots__ = ("fid", "name", "code", "size_instrs", "module")

    def __init__(self, fid, name, code, size_instrs, module=None):
        self.fid = fid
        self.name = name
        self.code = code
        self.size_instrs = size_instrs
        self.module = module

    def __repr__(self):
        return f"FunctionInfo({self.fid}, {self.name!r}, {self.size_instrs})"


class CodeImage:
    """Symbol table of traced functions.

    Build one with :func:`build_image` (or ``register_*`` directly), then
    hand it to :class:`repro.instrument.tracer.Tracer`.
    """

    def __init__(self, instrs_per_pyop=INSTRS_PER_PYOP):
        self._by_code = {}  # code object -> FunctionInfo
        self._functions = []  # fid -> FunctionInfo
        self._instrs_per_pyop = instrs_per_pyop

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_code(self, code, name=None, module=None):
        """Register one code object (and nested code objects within it)."""
        info = self._by_code.get(code)
        if info is not None:
            return info
        pyops = max(1, len(code.co_code) // 2)
        size = max(MIN_FUNC_INSTRS, pyops * self._instrs_per_pyop)
        info = FunctionInfo(
            len(self._functions), name or code.co_qualname, code, size,
            module=module,
        )
        self._by_code[code] = info
        self._functions.append(info)
        for const in code.co_consts:
            if isinstance(const, types.CodeType):
                self.register_code(const, module=module)
        return info

    def register_synthetic(self, name, size_instrs):
        """Register a synthetic function (no code object), e.g. a runtime
        helper materialized by :mod:`repro.instrument.expand`.  Idempotent
        per name."""
        for info in self._functions:
            if info.name == name and info.code is None:
                return info
        info = FunctionInfo(
            len(self._functions), name, None, max(MIN_FUNC_INSTRS, size_instrs)
        )
        self._functions.append(info)
        return info

    def register_module(self, module):
        """Register every function/method defined in ``module``."""
        seen = 0
        for value in vars(module).values():
            seen += self._register_value(value, module.__name__)
        return seen

    def _register_value(self, value, module_name):
        if isinstance(value, types.FunctionType):
            if value.__module__ == module_name:
                self.register_code(value.__code__, module=module_name)
                return 1
            return 0
        if isinstance(value, (staticmethod, classmethod)):
            return self._register_value(value.__func__, module_name)
        if isinstance(value, property):
            count = 0
            for accessor in (value.fget, value.fset, value.fdel):
                if accessor is not None:
                    count += self._register_value(accessor, module_name)
            return count
        if isinstance(value, type):
            if getattr(value, "__module__", None) != module_name:
                return 0
            count = 0
            for attr in vars(value).values():
                count += self._register_value(attr, module_name)
            return count
        if isinstance(value, dict):
            count = 0
            for item in value.values():
                if isinstance(item, types.FunctionType):
                    count += self._register_value(item, module_name)
            return count
        return 0

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def fid_of(self, code):
        """Function id for a code object, or None if untracked."""
        info = self._by_code.get(code)
        return None if info is None else info.fid

    def info(self, fid):
        try:
            return self._functions[fid]
        except IndexError:
            raise TraceError(f"unknown function id {fid}") from None

    def offset_instr(self, fid, lasti):
        """Convert a bytecode offset to a virtual instruction offset,
        clamped inside the function's segment."""
        info = self._functions[fid]
        offset = (max(lasti, 0) // 2) * self._instrs_per_pyop
        if offset >= info.size_instrs:
            return info.size_instrs - 1
        return offset

    def functions(self):
        return list(self._functions)

    @property
    def function_count(self):
        return len(self._functions)

    def total_instrs(self):
        """Total static code size, in virtual instructions."""
        return sum(info.size_instrs for info in self._functions)

    def name_of(self, fid):
        return self._functions[fid].name

    def fid_by_name(self, name):
        """Find a function id by (qual)name suffix; raises if ambiguous."""
        matches = [
            info.fid
            for info in self._functions
            if info.name == name or info.name.endswith("." + name)
        ]
        if not matches:
            raise TraceError(f"no traced function named {name!r}")
        if len(matches) > 1:
            names = [self._functions[m].name for m in matches]
            raise TraceError(f"ambiguous function name {name!r}: {names}")
        return matches[0]


class FrozenImage:
    """A picklable snapshot of a CodeImage (names, sizes, modules).

    Simulation, layout, and profiling never need live code objects, so
    traces are cached on disk together with a FrozenImage.
    """

    def __init__(self, names, sizes, modules=None):
        if modules is None:
            modules = [None] * len(names)
        self._functions = [
            FunctionInfo(fid, name, None, size, module=module)
            for fid, (name, size, module) in enumerate(
                zip(names, sizes, modules)
            )
        ]

    def info(self, fid):
        try:
            return self._functions[fid]
        except IndexError:
            raise TraceError(f"unknown function id {fid}") from None

    def functions(self):
        return list(self._functions)

    @property
    def function_count(self):
        return len(self._functions)

    def total_instrs(self):
        return sum(info.size_instrs for info in self._functions)

    def name_of(self, fid):
        return self._functions[fid].name

    def register_synthetic(self, name, size_instrs):
        for info in self._functions:
            if info.name == name:
                return info
        info = FunctionInfo(
            len(self._functions), name, None, max(MIN_FUNC_INSTRS, size_instrs)
        )
        self._functions.append(info)
        return info

    def __getstate__(self):
        return {
            "names": [f.name for f in self._functions],
            "sizes": [f.size_instrs for f in self._functions],
            "modules": [f.module for f in self._functions],
        }

    def __setstate__(self, state):
        # images pickled before module metadata existed have no
        # "modules" entry; they load with every module set to None
        self.__init__(state["names"], state["sizes"],
                      state.get("modules"))


def freeze_image(image):
    """Snapshot any image into a :class:`FrozenImage`."""
    functions = image.functions()
    return FrozenImage(
        [f.name for f in functions],
        [f.size_instrs for f in functions],
        [getattr(f, "module", None) for f in functions],
    )


def build_image(modules, instrs_per_pyop=INSTRS_PER_PYOP):
    """Build a :class:`CodeImage` covering ``modules``."""
    image = CodeImage(instrs_per_pyop=instrs_per_pyop)
    for module in modules:
        image.register_module(module)
    return image


def db_modules():
    """The DBMS modules traced in the paper's experiments (all layers)."""
    from repro.db import database, scheduler, server
    from repro.db.exec import expressions, operators, schema, table
    from repro.db.optimizer import cost, planner, stats
    from repro.db.parser import ast_nodes, parser, tokenizer
    from repro.db.storage import (
        btree,
        buffer_pool,
        codec,
        disk,
        hash_index,
        lock_manager,
        page,
        recovery,
        storage_manager,
        transaction,
        wal,
    )

    return [
        database, scheduler,
        expressions, operators, schema, table,
        cost, planner, stats,
        ast_nodes, parser, tokenizer,
        btree, buffer_pool, codec, disk, hash_index, lock_manager, page,
        recovery, storage_manager, transaction, wal,
        # appended last so layouts derived from earlier images keep the
        # same leading function order
        server,
    ]


def build_db_image(instrs_per_pyop=INSTRS_PER_PYOP):
    """Code image covering the whole DBMS."""
    return build_image(db_modules(), instrs_per_pyop=instrs_per_pyop)
