"""The tracer: converts live Python execution into an instruction trace.

A ``sys.setprofile`` hook observes every Python-level call and return.
For functions in the :class:`~repro.instrument.codeimage.CodeImage` it
emits CALL/RET events plus EXEC events describing the caller's
intra-function progress, read from ``frame.f_lasti`` — the caller's real
bytecode position — so call-site offsets, loops over call sites, and
early returns all appear in the trace exactly where they happen.

Untracked frames (standard library, builtins) are kept on the shadow
stack as sentinels so call/return pairing stays balanced, but emit no
events: their instructions belong to code the paper's tools would also
not attribute to the DBMS image.
"""

from __future__ import annotations

import gc
import sys

from repro.errors import TraceError
from repro.instrument.trace import Trace

_UNTRACKED = -1


class Tracer:
    """Trace execution of code registered in a :class:`CodeImage`."""

    def __init__(self, image):
        self._image = image
        self.trace = Trace()
        # shadow stack entries: [fid, last_offset_instr] or untracked marker
        self._stack = []
        self._active = False
        self._gc_was_enabled = False

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def start(self):
        if self._active:
            raise TraceError("tracer already active")
        self._active = True
        # The cycle collector may fire finalizers and weakref callbacks —
        # Python-level calls injected at arbitrary points of the traced
        # code, so *when* a collection happens (a function of everything
        # the process allocated before this trace) would leak into the
        # event stream.  Flush pending garbage now, then keep the
        # collector off until stop() so the trace depends only on the
        # traced execution itself.
        self._gc_was_enabled = gc.isenabled()
        if self._gc_was_enabled:
            gc.collect()
            gc.disable()
        sys.setprofile(self._profile)

    def stop(self):
        sys.setprofile(None)
        self._active = False
        if self._gc_was_enabled:
            gc.enable()

    def run(self, fn, *args, **kwargs):
        """Trace one call; returns ``fn``'s result."""
        self.start()
        try:
            return fn(*args, **kwargs)
        finally:
            self.stop()

    # ------------------------------------------------------------------
    # the profile hook
    # ------------------------------------------------------------------
    def _profile(self, frame, event, _arg):
        if event == "call":
            stack = self._stack
            fid = self._image.fid_of(frame.f_code)
            # record the caller's progress up to this call site
            if stack:
                top = stack[-1]
                if top[0] != _UNTRACKED:
                    caller = frame.f_back
                    if caller is not None and top[2] is caller.f_code:
                        offset = self._image.offset_instr(top[0], caller.f_lasti)
                        self.trace.add_exec(top[0], top[1], offset)
                        top[1] = offset
            if fid is None:
                stack.append([_UNTRACKED, 0, None])
            else:
                entry_offset = self._image.offset_instr(fid, frame.f_lasti)
                caller_fid = -1
                callsite = 0
                if stack and stack[-1][0] != _UNTRACKED:
                    caller_fid = stack[-1][0]
                    callsite = stack[-1][1]
                self.trace.add_call(fid, caller_fid, callsite)
                stack.append([fid, entry_offset, frame.f_code])
        elif event == "return":
            stack = self._stack
            if not stack:
                return  # frames entered before tracing started
            top = stack.pop()
            if top[0] == _UNTRACKED:
                return
            if top[2] is not frame.f_code:
                # unbalanced (tracing started mid-call-tree); tolerate
                stack.append(top)
                return
            offset = self._image.offset_instr(top[0], frame.f_lasti)
            self.trace.add_exec(top[0], top[1], offset)
            caller_fid = -1
            if stack and stack[-1][0] != _UNTRACKED:
                caller_fid = stack[-1][0]
            self.trace.add_return(top[0], caller_fid, offset)
        # c_call / c_return / c_exception: progress shows up in f_lasti at
        # the next Python-level event; nothing to emit here.


def trace_workload(image, fn, *args, **kwargs):
    """Convenience: trace ``fn(*args, **kwargs)``; returns (trace, result)."""
    tracer = Tracer(image)
    result = tracer.run(fn, *args, **kwargs)
    return tracer.trace, result
