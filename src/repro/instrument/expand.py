"""Runtime-library expansion: materializing the hidden call layer.

**Why this exists.**  The paper traces compiled C++ where the storage
manager averages one function call every ~43 instructions (§5.4), and a
single tuple's processing touches far more code than a 32KB L1 I-cache
holds.  Python hides exactly that layer: each bytecode op (attribute
lookup, struct pack, list append, dict probe ...) is a call into the
CPython runtime that ``sys.setprofile`` cannot see, so the raw traces
have unrealistically long straight-line segments and a hot code
footprint far below a real DBMS's.

This pass restores that layer *deterministically*: every ``S``
instructions of straight-line execution inside a traced function F, a
call to a **runtime helper** is inserted.  Helper identity is a pure
function of (F, call-site block), so the same call site always calls the
same helper — stable call sequences, which is precisely the property
CGP exploits and the property real call sites have.  Helpers are drawn
from a shared pool (collisions model shared utilities like the paper's
``lock_record``, called from many places); a fixed fraction of helpers
call a second-level sub-helper, giving the call graph depth.

The expansion is applied identically before every layout/prefetcher
configuration, so it shifts the *workload model*, never the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError
from repro.instrument.trace import CALL, EXEC, RET, Trace

_MIX_1 = 2654435761
_MIX_2 = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1


def _mix(a, b):
    value = (a * _MIX_1 + b * 1013904223 + 0x5BD1E995) & _MASK
    value ^= value >> 29
    value = (value * _MIX_2) & _MASK
    value ^= value >> 32
    return value


@dataclass(frozen=True)
class ExpansionConfig:
    """Geometry of the synthetic runtime library."""

    call_every_instrs: int = 32  # S: helper call spacing in caller code
    helpers_per_function: int = 6  # distinct helper slots per caller
    pool_size: int = 320  # shared helper pool
    helper_min_instrs: int = 8
    helper_max_instrs: int = 64
    two_level_every: int = 4  # 1 in k helpers calls a sub-helper
    seed: int = 97


class RuntimeLibrary:
    """The synthetic helper pool, registered into a code image."""

    def __init__(self, image, config=ExpansionConfig()):
        if config.call_every_instrs <= 0 or config.pool_size <= 0:
            raise TraceError("bad expansion configuration")
        self.config = config
        self.image = image
        self.helper_fids = []
        self.helper_sizes = []
        spread = config.helper_max_instrs - config.helper_min_instrs + 1
        for index in range(config.pool_size):
            size = config.helper_min_instrs + _mix(config.seed, index) % spread
            info = image.register_synthetic(f"rt::helper_{index:03d}", size)
            self.helper_fids.append(info.fid)
            self.helper_sizes.append(info.size_instrs)

    def helper_for(self, caller_fid, callsite_offset):
        """Deterministic helper for one call site of one caller."""
        slot = (
            callsite_offset // self.config.call_every_instrs
        ) % self.config.helpers_per_function
        index = _mix(caller_fid, slot) % self.config.pool_size
        return index

    def sub_helper_of(self, helper_index):
        """Second-level helper, or None (a fixed fraction have one)."""
        if _mix(helper_index, 7919) % self.config.two_level_every != 0:
            return None
        return _mix(helper_index, 104729) % self.config.pool_size


def expand_trace(trace, image, config=ExpansionConfig()):
    """Insert runtime-helper calls into ``trace``.

    Registers the helper pool into ``image`` (idempotent growth) and
    returns a new :class:`Trace`.
    """
    library = RuntimeLibrary(image, config)
    spacing = config.call_every_instrs
    out = Trace()
    kinds_out, a_out, b_out, c_out = out.kinds, out.a, out.b, out.c
    helper_fids = library.helper_fids
    helper_sizes = library.helper_sizes
    helpers_per_function = config.helpers_per_function
    pool_size = config.pool_size
    two_level_every = config.two_level_every

    for kind, a, b, c in trace.events():
        if kind != EXEC:
            kinds_out.append(kind)
            a_out.append(a)
            b_out.append(b)
            c_out.append(c)
            continue
        fid, start, end = a, b, c
        step = spacing if end >= start else -spacing
        cursor = start
        while True:
            remaining = end - cursor
            if abs(remaining) <= spacing:
                kinds_out.append(EXEC)
                a_out.append(fid)
                b_out.append(cursor)
                c_out.append(end)
                break
            nxt = cursor + step
            kinds_out.append(EXEC)
            a_out.append(fid)
            b_out.append(cursor)
            c_out.append(nxt)
            # helper call at this site (identity fixed per site)
            slot = (abs(nxt) // spacing) % helpers_per_function
            index = _mix(fid, slot) % pool_size
            helper = helper_fids[index]
            size = helper_sizes[index]
            kinds_out.append(CALL)
            a_out.append(helper)
            b_out.append(fid)
            c_out.append(abs(nxt))
            sub = None
            if _mix(index, 7919) % two_level_every == 0:
                sub = _mix(index, 104729) % pool_size
            if sub is None or sub == index:
                kinds_out.append(EXEC)
                a_out.append(helper)
                b_out.append(0)
                c_out.append(size - 1)
            else:
                mid = size // 2
                sub_fid = helper_fids[sub]
                sub_size = helper_sizes[sub]
                kinds_out.append(EXEC)
                a_out.append(helper)
                b_out.append(0)
                c_out.append(mid)
                kinds_out.append(CALL)
                a_out.append(sub_fid)
                b_out.append(helper)
                c_out.append(mid)
                kinds_out.append(EXEC)
                a_out.append(sub_fid)
                b_out.append(0)
                c_out.append(sub_size - 1)
                kinds_out.append(RET)
                a_out.append(sub_fid)
                b_out.append(helper)
                c_out.append(sub_size - 1)
                kinds_out.append(EXEC)
                a_out.append(helper)
                b_out.append(mid)
                c_out.append(size - 1)
            kinds_out.append(RET)
            a_out.append(helper)
            b_out.append(fid)
            c_out.append(size - 1)
            cursor = nxt
    return out
