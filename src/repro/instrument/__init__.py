"""Instrumentation: Python execution -> virtual instruction traces."""

from repro.instrument.analysis import (
    call_depth_histogram,
    characterize,
    function_heat,
    instructions_between_calls,
    line_reuse_distances,
    touched_lines,
    working_set_curve,
)
from repro.instrument.codeimage import (
    CodeImage,
    FrozenImage,
    FunctionInfo,
    build_db_image,
    build_image,
    freeze_image,
)
from repro.instrument.interleave import interleave
from repro.instrument.trace import CALL, EXEC, RET, SWITCH, Trace, validate_trace
from repro.instrument.tracer import Tracer, trace_workload

__all__ = [
    "CALL",
    "CodeImage",
    "EXEC",
    "FrozenImage",
    "FunctionInfo",
    "RET",
    "SWITCH",
    "Trace",
    "Tracer",
    "build_db_image",
    "build_image",
    "call_depth_histogram",
    "characterize",
    "freeze_image",
    "function_heat",
    "instructions_between_calls",
    "interleave",
    "line_reuse_distances",
    "touched_lines",
    "trace_workload",
    "validate_trace",
    "working_set_curve",
]
