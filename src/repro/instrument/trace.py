"""Instruction trace containers.

A trace is a sequence of events in parallel integer lists (fast to build
and to replay in pure Python):

* ``EXEC  (fid, from_offset, to_offset)`` — straight-line progress inside
  a function, in virtual instruction offsets (either direction; a
  backwards delta is a loop back-edge),
* ``CALL  (callee_fid, caller_fid, callsite_offset)`` — a call,
* ``RET   (fid, caller_fid, return_offset)`` — a return from ``fid``,
* ``SWITCH (tid, 0, 0)`` — context switch marker (multiprogrammed mixes).

Traces are layout independent: they carry function ids and offsets, never
addresses.
"""

from __future__ import annotations

import pickle

from repro.errors import TraceError

EXEC = 0
CALL = 1
RET = 2
SWITCH = 3

_KIND_NAMES = {EXEC: "EXEC", CALL: "CALL", RET: "RET", SWITCH: "SWITCH"}


class Trace:
    """Append-only event trace (parallel lists)."""

    __slots__ = ("kinds", "a", "b", "c")

    def __init__(self):
        self.kinds = []
        self.a = []
        self.b = []
        self.c = []

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def add_exec(self, fid, from_offset, to_offset):
        self.kinds.append(EXEC)
        self.a.append(fid)
        self.b.append(from_offset)
        self.c.append(to_offset)

    def add_call(self, callee_fid, caller_fid=-1, callsite_offset=0):
        self.kinds.append(CALL)
        self.a.append(callee_fid)
        self.b.append(caller_fid)
        self.c.append(callsite_offset)

    def add_return(self, fid, caller_fid=-1, return_offset=0):
        self.kinds.append(RET)
        self.a.append(fid)
        self.b.append(caller_fid)
        self.c.append(return_offset)

    def add_switch(self, tid):
        self.kinds.append(SWITCH)
        self.a.append(tid)
        self.b.append(0)
        self.c.append(0)

    def extend(self, other):
        self.kinds.extend(other.kinds)
        self.a.extend(other.a)
        self.b.extend(other.b)
        self.c.extend(other.c)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.kinds)

    def events(self):
        """Yield (kind, a, b, c) tuples."""
        return zip(self.kinds, self.a, self.b, self.c)

    def counts(self):
        """Event counts by kind name."""
        out = {name: 0 for name in _KIND_NAMES.values()}
        for kind in self.kinds:
            out[_KIND_NAMES[kind]] += 1
        return out

    def total_instructions(self, call_overhead=2):
        """Dynamic instruction count implied by the trace.

        EXEC contributes |to - from| + 1; each CALL and RET contributes
        ``call_overhead`` (the call/return instructions themselves).
        """
        total = 0
        for kind, _a, b, c in zip(self.kinds, self.a, self.b, self.c):
            if kind == EXEC:
                total += abs(c - b) + 1
            elif kind != SWITCH:
                total += call_overhead
        return total

    def call_count(self):
        return sum(1 for kind in self.kinds if kind == CALL)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path):
        with open(path, "wb") as fh:
            pickle.dump(
                {"kinds": self.kinds, "a": self.a, "b": self.b, "c": self.c},
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )

    @classmethod
    def load(cls, path):
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        trace = cls()
        try:
            trace.kinds = payload["kinds"]
            trace.a = payload["a"]
            trace.b = payload["b"]
            trace.c = payload["c"]
        except (KeyError, TypeError) as exc:
            raise TraceError(f"malformed trace file {path}: {exc}") from exc
        if not (
            len(trace.kinds) == len(trace.a) == len(trace.b) == len(trace.c)
        ):
            raise TraceError(f"inconsistent trace arrays in {path}")
        return trace


def validate_trace(trace, image):
    """Check stack balance and offset sanity; raises TraceError.

    Returns the maximum call depth observed.
    """
    depth = 0
    max_depth = 0
    for kind, a, b, c in trace.events():
        if kind == CALL:
            depth += 1
            max_depth = max(max_depth, depth)
            image.info(a)
        elif kind == RET:
            depth -= 1
            if depth < 0:
                raise TraceError("RET without matching CALL")
        elif kind == EXEC:
            info = image.info(a)
            if not (0 <= b < info.size_instrs and 0 <= c < info.size_instrs):
                raise TraceError(
                    f"EXEC offsets ({b}, {c}) outside {info.name} "
                    f"(size {info.size_instrs})"
                )
    return max_depth
