"""Instruction trace containers.

A trace is a sequence of events in compact parallel integer arrays
(``array('b')`` for the kind, ``array('q')`` for the three operands —
contiguous C buffers, so the optimized replay core can take zero-copy
``numpy`` views over them):

* ``EXEC  (fid, from_offset, to_offset)`` — straight-line progress inside
  a function, in virtual instruction offsets (either direction; a
  backwards delta is a loop back-edge),
* ``CALL  (callee_fid, caller_fid, callsite_offset)`` — a call,
* ``RET   (fid, caller_fid, return_offset)`` — a return from ``fid``,
* ``SWITCH (tid, 0, 0)`` — context switch marker (multiprogrammed mixes).

Traces are layout independent: they carry function ids and offsets, never
addresses.

Building stays append-friendly: the ``add_*`` methods (and direct
``.append``/``.extend`` on the parallel arrays, which several producers
use for speed) are plain amortized-O(1) appends.  Aggregates
(``counts()``, ``call_count()``, ``total_instructions()``) are O(1) per
query: running counters are maintained *lazily* — each query folds in
only the events appended since the previous query, so no full pass over
the arrays ever repeats.

Persistence is a versioned binary format (magic, format version, event
count, raw little-endian array payloads, CRC-32) — see :meth:`Trace.save`.
Truncated, corrupted, or wrong-version files raise
:class:`~repro.errors.TraceError` instead of executing arbitrary pickle.
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array

from repro.errors import TraceError

try:  # optional vectorized counter folds; pure Python otherwise
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None

EXEC = 0
CALL = 1
RET = 2
SWITCH = 3

_KIND_NAMES = {EXEC: "EXEC", CALL: "CALL", RET: "RET", SWITCH: "SWITCH"}

#: On-disk trace format (see Trace.save): magic, u16 version, u16 flags,
#: u64 event count, then kinds (i8) and a/b/c (i64 LE), then u32 CRC-32
#: of the four payloads.
TRACE_MAGIC = b"RTRC"
TRACE_FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")
_CRC = struct.Struct("<I")

_KIND_TYPECODE = "b"
_FIELD_TYPECODE = "q"


class Trace:
    """Append-only event trace (parallel arrays)."""

    __slots__ = ("kinds", "a", "b", "c",
                 "_counted", "_n_exec", "_n_call", "_n_ret", "_n_switch",
                 "_exec_instrs", "__weakref__")

    def __init__(self):
        self.kinds = array(_KIND_TYPECODE)
        self.a = array(_FIELD_TYPECODE)
        self.b = array(_FIELD_TYPECODE)
        self.c = array(_FIELD_TYPECODE)
        self._counted = 0
        self._n_exec = 0
        self._n_call = 0
        self._n_ret = 0
        self._n_switch = 0
        self._exec_instrs = 0

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def add_exec(self, fid, from_offset, to_offset):
        self.kinds.append(EXEC)
        self.a.append(fid)
        self.b.append(from_offset)
        self.c.append(to_offset)

    def add_call(self, callee_fid, caller_fid=-1, callsite_offset=0):
        self.kinds.append(CALL)
        self.a.append(callee_fid)
        self.b.append(caller_fid)
        self.c.append(callsite_offset)

    def add_return(self, fid, caller_fid=-1, return_offset=0):
        self.kinds.append(RET)
        self.a.append(fid)
        self.b.append(caller_fid)
        self.c.append(return_offset)

    def add_switch(self, tid):
        self.kinds.append(SWITCH)
        self.a.append(tid)
        self.b.append(0)
        self.c.append(0)

    def extend(self, other):
        self.kinds.extend(other.kinds)
        self.a.extend(other.a)
        self.b.extend(other.b)
        self.c.extend(other.c)

    def extend_arrays(self, kinds, a, b, c):
        """Bulk-append parallel event sequences (lists or arrays)."""
        if not (len(kinds) == len(a) == len(b) == len(c)):
            raise TraceError("parallel event arrays must share one length")
        self.kinds.extend(kinds)
        self.a.extend(a)
        self.b.extend(b)
        self.c.extend(c)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.kinds)

    def events(self):
        """Yield (kind, a, b, c) tuples."""
        return zip(self.kinds, self.a, self.b, self.c)

    def _refresh_counters(self):
        """Fold events appended since the last aggregate query into the
        running counters (amortized O(1) per appended event)."""
        n = len(self.kinds)
        start = self._counted
        if start == n:
            return
        if start > n:  # arrays were replaced/truncated: recount from zero
            start = 0
            self._n_exec = self._n_call = self._n_ret = self._n_switch = 0
            self._exec_instrs = 0
        kinds = self.kinds
        b = self.b
        c = self.c
        if _np is not None and n - start > 4096:
            kn = _np.frombuffer(kinds, dtype=_np.int8, count=n)[start:]
            if kn.min() < EXEC or kn.max() > SWITCH:
                bad = int(kn[(kn < EXEC) | (kn > SWITCH)][0])
                raise TraceError(f"unknown trace event kind {bad}")
            ex = kn == EXEC
            n_exec = int(ex.sum())
            n_call = int((kn == CALL).sum())
            n_ret = int((kn == RET).sum())
            n_switch = int((kn == SWITCH).sum())
            bn = _np.frombuffer(self.b, dtype=_np.int64, count=n)[start:][ex]
            cn = _np.frombuffer(self.c, dtype=_np.int64, count=n)[start:][ex]
            exec_instrs = int(_np.abs(cn - bn).sum()) + n_exec
        else:
            n_exec = n_call = n_ret = n_switch = 0
            exec_instrs = 0
            for i in range(start, n):
                kind = kinds[i]
                if kind == EXEC:
                    n_exec += 1
                    exec_instrs += abs(c[i] - b[i]) + 1
                elif kind == CALL:
                    n_call += 1
                elif kind == RET:
                    n_ret += 1
                elif kind == SWITCH:
                    n_switch += 1
                else:
                    raise TraceError(f"unknown trace event kind {kind}")
        self._n_exec += n_exec
        self._n_call += n_call
        self._n_ret += n_ret
        self._n_switch += n_switch
        self._exec_instrs += exec_instrs
        self._counted = n

    def counts(self):
        """Event counts by kind name (O(1) amortized)."""
        self._refresh_counters()
        return {
            "EXEC": self._n_exec,
            "CALL": self._n_call,
            "RET": self._n_ret,
            "SWITCH": self._n_switch,
        }

    def total_instructions(self, call_overhead=2):
        """Dynamic instruction count implied by the trace (O(1) amortized).

        EXEC contributes |to - from| + 1; each CALL and RET contributes
        ``call_overhead`` (the call/return instructions themselves).
        """
        self._refresh_counters()
        return self._exec_instrs + (self._n_call + self._n_ret) * call_overhead

    def call_count(self):
        self._refresh_counters()
        return self._n_call

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _payload_chunks(self):
        chunks = [self.kinds, self.a, self.b, self.c]
        if sys.byteorder != "little":
            swapped = []
            for chunk in chunks:
                copy = array(chunk.typecode, chunk)
                copy.byteswap()
                swapped.append(copy)
            chunks = swapped
        return [chunk.tobytes() for chunk in chunks]

    def save(self, path):
        """Write the versioned binary trace format.

        Layout: ``RTRC`` magic, u16 format version, u16 reserved flags,
        u64 event count, the four raw array payloads (kinds as int8,
        a/b/c as int64, little endian), and a trailing CRC-32 over the
        payloads.  :meth:`load` rejects anything that does not parse.
        """
        chunks = self._payload_chunks()
        crc = 0
        for blob in chunks:
            crc = zlib.crc32(blob, crc)
        with open(path, "wb") as fh:
            fh.write(_HEADER.pack(TRACE_MAGIC, TRACE_FORMAT_VERSION, 0,
                                  len(self.kinds)))
            for blob in chunks:
                fh.write(blob)
            fh.write(_CRC.pack(crc & 0xFFFFFFFF))

    @classmethod
    def load(cls, path):
        """Read a trace written by :meth:`save`.

        Raises :class:`TraceError` on bad magic, unsupported format
        version, truncation, or checksum mismatch — never unpickles.
        """
        with open(path, "rb") as fh:
            data = fh.read()
        if len(data) < _HEADER.size + _CRC.size:
            raise TraceError(f"truncated trace file {path}")
        magic, version, _flags, count = _HEADER.unpack_from(data)
        if magic != TRACE_MAGIC:
            raise TraceError(f"{path} is not a trace file (bad magic)")
        if version != TRACE_FORMAT_VERSION:
            raise TraceError(
                f"{path} has trace format version {version}, "
                f"this build reads version {TRACE_FORMAT_VERSION}"
            )
        kind_bytes = count  # int8
        field_bytes = count * 8  # int64
        expected = _HEADER.size + kind_bytes + 3 * field_bytes + _CRC.size
        if len(data) != expected:
            raise TraceError(
                f"truncated or oversized trace file {path}: "
                f"{len(data)} bytes, expected {expected}"
            )
        payload = data[_HEADER.size:expected - _CRC.size]
        (crc,) = _CRC.unpack_from(data, expected - _CRC.size)
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise TraceError(f"corrupt trace file {path}: checksum mismatch")
        trace = cls()
        offset = 0
        for attr, typecode, nbytes in (
            ("kinds", _KIND_TYPECODE, kind_bytes),
            ("a", _FIELD_TYPECODE, field_bytes),
            ("b", _FIELD_TYPECODE, field_bytes),
            ("c", _FIELD_TYPECODE, field_bytes),
        ):
            arr = array(typecode)
            arr.frombytes(payload[offset:offset + nbytes])
            if sys.byteorder != "little":
                arr.byteswap()
            setattr(trace, attr, arr)
            offset += nbytes
        return trace


def validate_trace(trace, image):
    """Check stack balance and offset sanity; raises TraceError.

    Returns the maximum call depth observed.
    """
    depth = 0
    max_depth = 0
    for kind, a, b, c in trace.events():
        if kind == CALL:
            depth += 1
            max_depth = max(max_depth, depth)
            image.info(a)
        elif kind == RET:
            depth -= 1
            if depth < 0:
                raise TraceError("RET without matching CALL")
        elif kind == EXEC:
            info = image.info(a)
            if not (0 <= b < info.size_instrs and 0 <= c < info.size_instrs):
                raise TraceError(
                    f"EXEC offsets ({b}, {c}) outside {info.name} "
                    f"(size {info.size_instrs})"
                )
    return max_depth
