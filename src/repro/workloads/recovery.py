"""The ``recovery`` workload: traced restart recovery over a crashed volume.

The paper's four workloads measure steady-state query execution.  This one
instead traces the *restart path* of the storage manager — ARIES-lite
analysis/redo/undo, torn-tail truncation, B+-tree rebuild from the log,
and a verification scan — over a volume left behind by a deterministic
injected crash (see :mod:`repro.db.storage.faults`).

The workload is split the same way the steady-state suites split database
construction from query execution:

* **build** (untraced, in the constructor): drive the torture workload
  into its planned crash via
  :func:`repro.db.storage.torture.build_crashed_state`;
* **run** (traced): ``StorageManager.restart`` over the surviving log,
  then a full scan validating what recovery produced.

Recovery code paths have a very different call-graph shape from query
execution — deep, data-dependent, and cold — which is exactly where the
paper argues call-graph prefetching should beat next-N-line.  The
``recovery`` suite lets the experiment harness measure that claim.

Everything is pure in ``(seed, schedule)``: the same pair always yields
the same crashed volume, the same surviving log, and therefore the same
traced recovery run.
"""

from __future__ import annotations

import types

from repro.db.storage import torture

#: Crash shape used for the traced run: ``mixed`` exercises transient
#: read faults, a randomized crash trigger, and a torn log tail in one
#: scenario, so the traced recovery visits every tolerance path.
DEFAULT_SCHEDULE = "mixed"


class RecoveryWorkload:
    """Build/crash/recover workload with the ``WorkloadSuite`` interface.

    ``scale`` multiplies the number of transactions each slot runs before
    the crash (more transactions -> a longer log -> a longer recovery).
    ``quantum_rows`` is accepted for interface compatibility; recovery is
    a single sequential pass, not a scheduled query mix.
    """

    def __init__(self, scale=1.0, seed=1234, schedule=DEFAULT_SCHEDULE,
                 quantum_rows=16):
        self.name = "recovery"
        self.schedule = schedule
        self.seed = seed
        self.quantum_rows = quantum_rows
        txns = max(2, int(round(6 * scale)))
        self._state = torture.build_crashed_state(
            seed, schedule, txns_per_slot=txns,
        )
        #: what the run recovered, filled in by :meth:`run`
        self.recovery_stats = None
        # the experiment runner reads buffer-pool statistics through
        # ``suite.database.storage``
        self.database = types.SimpleNamespace(storage=self._state.sm)

    def run(self):
        """Traced part: restart recovery plus a verification scan.

        Returns ``{"recovery": rows}`` where ``rows`` are the
        ``(key, value)`` pairs surviving on the recovered heap, matching
        the ``name -> rows`` shape of ``WorkloadSuite.run``.
        """
        sm = self._state.sm
        self.recovery_stats = sm.restart(self._state.survived)
        rows = []
        txn = sm.begin()
        for _rid, raw in sm.scan_file(txn, self._state.file_id):
            rows.append(torture._unpack_row(raw))
        txn.commit()
        return {"recovery": rows}

    def query_names(self):
        return ["recovery"]
