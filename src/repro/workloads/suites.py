"""The paper's four database workloads (§4.1).

1. **wisc-prof**    — Wisconsin q1, q5, q9 on a small database (the paper:
   2,100 tuples); also the profile workload for OM.
2. **wisc-large-1** — the same three queries on the full-size database
   (paper: 21,000 tuples, 10MB).
3. **wisc-large-2** — all eight Wisconsin queries on the full database.
4. **wisc+tpch**    — all eight Wisconsin queries plus TPC-H 1, 2, 3, 5, 6
   running concurrently (paper: 40MB total).

All queries in a workload run concurrently under the round-robin
scheduler, one "thread" per query, mirroring the paper's threaded server.

Scale: the paper's tuple counts make pure-Python cycle simulation
infeasible, so each suite takes a ``scale`` multiplier applied to the
paper's counts (default 0.1).  §4 of the paper argues (and experiment
E-scale verifies here) that CGP behaviour is insensitive to this.
"""

from __future__ import annotations

from repro.db import Database
from repro.errors import ConfigError
from repro.workloads import tpch, wisconsin

PAPER_WISC_PROF_TUPLES = 2100 // 3  # 2,100 total over three relations
PAPER_WISC_LARGE_TUPLES = 10000  # tenk1/tenk2 at full size

SUITE_NAMES = ("wisc-prof", "wisc-large-1", "wisc-large-2", "wisc+tpch")

#: Every traceable workload: the paper's four suites plus the crash
#: ``recovery`` workload, the storage scale-out suite ``wisc-scale``,
#: and the multi-tenant ``serving`` workload (kept out of SUITE_NAMES so
#: the paper's figures stay exactly the paper's workload set).
ALL_SUITE_NAMES = SUITE_NAMES + ("recovery", "wisc-scale", "serving")


class WorkloadSuite:
    """A configured workload: a database plus concurrent queries."""

    def __init__(self, name, database, queries, quantum_rows=16):
        self.name = name
        self.database = database
        self.queries = list(queries)  # (name, sql, hints)
        self.quantum_rows = quantum_rows

    def run(self):
        """Execute all queries concurrently; returns name -> rows."""
        hints = {name: h for name, _sql, h in self.queries if h}
        pairs = [(name, sql) for name, sql, _h in self.queries]
        return self.database.run_concurrent(
            pairs, quantum_rows=self.quantum_rows, hints=hints
        )

    def query_names(self):
        return [name for name, _sql, _h in self.queries]


def _wisconsin_db(n_tuples, pool_pages, seed):
    db = Database(pool_pages=pool_pages)
    wisconsin.setup(db, n_tuples=n_tuples, seed=seed)
    return db


def build_suite(name, scale=0.1, pool_pages=4096, seed=1234, quantum_rows=16):
    """Construct one of the paper's four workloads, scaled."""
    if name == "wisc-prof":
        n = max(60, int(PAPER_WISC_PROF_TUPLES * 3 * scale) // 3)
        db = _wisconsin_db(n, pool_pages, seed)
        queries = wisconsin.query_subset(("wisc_q1", "wisc_q5", "wisc_q9"), n)
        return WorkloadSuite(name, db, queries, quantum_rows)
    if name == "wisc-large-1":
        n = max(100, int(PAPER_WISC_LARGE_TUPLES * scale))
        db = _wisconsin_db(n, pool_pages, seed)
        queries = wisconsin.query_subset(("wisc_q1", "wisc_q5", "wisc_q9"), n)
        return WorkloadSuite(name, db, queries, quantum_rows)
    if name == "wisc-large-2":
        n = max(100, int(PAPER_WISC_LARGE_TUPLES * scale))
        db = _wisconsin_db(n, pool_pages, seed)
        return WorkloadSuite(name, db, wisconsin.queries(n), quantum_rows)
    if name == "wisc+tpch":
        n = max(100, int(PAPER_WISC_LARGE_TUPLES * scale))
        db = Database(pool_pages=pool_pages)
        wisconsin.setup(db, n_tuples=n, seed=seed)
        tpch.setup(db, scale_factor=max(scale * 3.0, 0.05), seed=seed + 99)
        queries = wisconsin.queries(n) + tpch.queries()
        return WorkloadSuite(name, db, queries, quantum_rows)
    if name == "wisc-scale":
        # storage scale-out: the database is built 10x larger than
        # wisc-large at the same ``scale`` (so scale 1.0 = 100,000-tuple
        # relations, loaded through the streaming bulk path with group
        # commit on), while the *traced* queries stay selective — point
        # and 1% index probes, including a hash-index equality probe —
        # so tracing stays feasible as the heap outgrows the pool
        n = max(200, int(PAPER_WISC_LARGE_TUPLES * 10 * scale))
        db = Database(
            pool_pages=pool_pages,
            wal_group_size=8, wal_group_window=64,
            hash_buckets=max(16, n // 128),
        )
        wisconsin.setup(db, n_tuples=n, seed=seed, hash_unique3=True,
                        analyze=False)
        return WorkloadSuite(name, db, wisconsin.scale_queries(n),
                             quantum_rows)
    if name == "recovery":
        # imported lazily: the crash workload drags in the fault/torture
        # machinery, which steady-state suites never need
        from repro.workloads.recovery import RecoveryWorkload

        return RecoveryWorkload(scale=scale, seed=seed,
                                quantum_rows=quantum_rows)
    if name == "serving":
        # imported lazily: the serving workload drags in the SQL server
        # front end, which steady-state suites never need
        from repro.workloads.serving import ServingWorkload

        return ServingWorkload(scale=scale, seed=seed,
                               quantum_rows=quantum_rows)
    raise ConfigError(
        f"unknown workload suite {name!r}; pick from {ALL_SUITE_NAMES}"
    )
