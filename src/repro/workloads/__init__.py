"""Workloads: Wisconsin, TPC-H, CPU2000, the paper's suites, and crash
recovery."""

from repro.workloads import cpu2000, tpch, wisconsin
from repro.workloads.suites import (
    ALL_SUITE_NAMES,
    SUITE_NAMES,
    WorkloadSuite,
    build_suite,
)

__all__ = [
    "ALL_SUITE_NAMES",
    "SUITE_NAMES",
    "WorkloadSuite",
    "build_suite",
    "cpu2000",
    "tpch",
    "wisconsin",
]
