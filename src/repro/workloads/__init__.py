"""Workloads: Wisconsin, TPC-H, synthetic CPU2000, and the paper's suites."""

from repro.workloads import cpu2000, tpch, wisconsin
from repro.workloads.suites import SUITE_NAMES, WorkloadSuite, build_suite

__all__ = [
    "SUITE_NAMES",
    "WorkloadSuite",
    "build_suite",
    "cpu2000",
    "tpch",
    "wisconsin",
]
