"""Synthetic SPEC CPU2000 integer workloads (§5.7 / Figure 10).

The paper's point with CPU2000 is *negative*: these codes have small
I-footprints, long loops, and infrequent calls, so their I-cache miss
ratios are near zero (gcc 0.5%, crafty 0.3%, everything else ~0%) and
neither NL nor CGP helps much; where misses exist, NL alone matches CGP.

Since the actual SPEC sources/inputs are licensed and compiling Alpha
binaries is impossible here, each benchmark is modeled as a synthetic
trace generator parameterized by the properties that drive I-cache
behaviour: code footprint, loop working-set size, loop trip counts, call
depth and call spacing.  Parameters are set so the simulated 32KB-I-cache
miss ratios land near the paper's reported values; everything downstream
(layout, prefetchers, fetch engine) is the identical code the DB
workloads use.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.instrument.codeimage import CodeImage
from repro.instrument.trace import Trace


@dataclass(frozen=True)
class Cpu2000Params:
    """Knobs for one synthetic benchmark."""

    name: str
    n_functions: int  # static code size, in functions
    mean_function_instrs: int
    hot_fraction: float  # fraction of functions in the steady-state loop
    loop_trip_instrs: int  # straight-line instructions per loop body visit
    calls_per_loop: int  # function calls made per loop body visit
    phase_length: int  # loop visits before migrating to a new hot set
    n_phases: int


# Footprints (functions) and phase behaviour chosen so that simulated
# miss ratios approximate Figure 10's: gcc and crafty miss, others don't.
BENCHMARKS = {
    "gzip": Cpu2000Params("gzip", 60, 220, 0.10, 400, 2, 4000, 3),
    "gcc": Cpu2000Params("gcc", 900, 260, 0.45, 90, 5, 260, 40),
    "crafty": Cpu2000Params("crafty", 220, 300, 0.50, 120, 5, 450, 30),
    "parser": Cpu2000Params("parser", 160, 200, 0.12, 220, 3, 1500, 5),
    "gap": Cpu2000Params("gap", 350, 240, 0.18, 160, 4, 2800, 10),
    "bzip2": Cpu2000Params("bzip2", 50, 260, 0.10, 500, 1, 5000, 3),
    "twolf": Cpu2000Params("twolf", 140, 250, 0.12, 260, 3, 3000, 4),
}

BENCHMARK_NAMES = tuple(BENCHMARKS)


def build_benchmark(name, target_instructions=2_000_000, seed=2000):
    """Build (image, trace) for one synthetic CPU2000 benchmark.

    The trace is a phased loop nest: within a phase, a fixed hot set of
    functions is iterated (big loops, high locality); phase changes
    migrate the hot set (gcc/crafty change often — their code working
    sets churn, which is where their real misses come from).
    """
    params = BENCHMARKS[name]
    rng = random.Random(seed + zlib.crc32(name.encode("utf-8")) % 1000)
    image = CodeImage()
    fids = []
    for index in range(params.n_functions):
        size = max(
            16, int(rng.gauss(params.mean_function_instrs,
                              params.mean_function_instrs * 0.4))
        )
        info = image.register_synthetic(f"{name}::fn_{index:04d}", size)
        fids.append(info.fid)

    trace = Trace()
    hot_count = max(2, int(params.n_functions * params.hot_fraction))
    instructions = 0
    phase = 0
    while instructions < target_instructions:
        start = (phase * hot_count // 2) % params.n_functions
        hot = [fids[(start + k) % params.n_functions] for k in range(hot_count)]
        for _visit in range(params.phase_length):
            instructions += _emit_loop_visit(trace, image, rng, params, hot)
            if instructions >= target_instructions:
                break
        phase += 1
    return image, trace


def _emit_loop_visit(trace, image, rng, params, hot):
    """One loop-body visit: straight-line code plus a few calls."""
    driver = hot[0]
    driver_size = image.info(driver).size_instrs
    emitted = 0
    span = min(params.loop_trip_instrs, driver_size - 1)
    chunk = max(1, span // (params.calls_per_loop + 1))
    offset = 0
    for call_index in range(params.calls_per_loop):
        trace.add_exec(driver, offset, min(offset + chunk, driver_size - 1))
        emitted += chunk + 1
        callee = hot[1 + (call_index * 7 + rng.randrange(3)) % (len(hot) - 1)]
        callee_size = image.info(callee).size_instrs
        callsite = min(offset + chunk, driver_size - 1)
        trace.add_call(callee, driver, callsite)
        visit = max(8, int(callee_size * 0.7))
        trace.add_exec(callee, 0, visit - 1)
        trace.add_return(callee, driver, visit - 1)
        emitted += visit + 4
        offset = min(offset + chunk, driver_size - 2)
    trace.add_exec(driver, offset, min(offset + chunk, driver_size - 1))
    emitted += chunk + 1
    return emitted


def perfect_gap_expected(name):
    """The paper's reported gap between a 32KB I-cache and a perfect
    I-cache (Figure 10), for shape checks."""
    return {
        "gzip": 0.01,
        "gcc": 0.17,
        "crafty": 0.09,
        "parser": 0.01,
        "gap": 0.02,
        "bzip2": 0.01,
        "twolf": 0.01,
    }[name]
