"""TPC-H schema, data generator, and queries 1, 2, 3, 5, 6.

The paper (§4.1) uses these five queries: "queries with aggregations and
many joins, and also ... a simple nested query (query 2)".  The generator
follows the TPC-H population rules in miniature (value distributions and
key relationships preserved; cardinalities scaled by ``scale_factor``
relative to a small base so pure-Python simulation stays tractable).

Dates are stored as integer days since 1970-01-01 (see
:mod:`repro.db.exec.schema`).
"""

from __future__ import annotations

import random

from repro.db.exec.schema import date_to_int

REGION_NAMES = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
NATION_ROWS = [
    # name, regionkey
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
MARKET_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
RETURN_FLAGS = ("R", "A", "N")
LINE_STATUSES = ("O", "F")
PART_TYPES = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")

SCHEMAS = {
    "region": [("r_regionkey", "int"), ("r_name", ("str", 12))],
    "nation": [
        ("n_nationkey", "int"),
        ("n_name", ("str", 16)),
        ("n_regionkey", "int"),
    ],
    "supplier": [
        ("s_suppkey", "int"),
        ("s_name", ("str", 16)),
        ("s_nationkey", "int"),
        ("s_acctbal", "float"),
    ],
    "customer": [
        ("c_custkey", "int"),
        ("c_name", ("str", 16)),
        ("c_nationkey", "int"),
        ("c_mktsegment", ("str", 12)),
        ("c_acctbal", "float"),
    ],
    "part": [
        ("p_partkey", "int"),
        ("p_name", ("str", 16)),
        ("p_size", "int"),
        ("p_type", ("str", 8)),
    ],
    "partsupp": [
        ("ps_partkey", "int"),
        ("ps_suppkey", "int"),
        ("ps_availqty", "int"),
        ("ps_supplycost", "float"),
    ],
    "orders": [
        ("o_orderkey", "int"),
        ("o_custkey", "int"),
        ("o_totalprice", "float"),
        ("o_orderdate", "int"),
        ("o_shippriority", "int"),
    ],
    "lineitem": [
        ("l_orderkey", "int"),
        ("l_partkey", "int"),
        ("l_suppkey", "int"),
        ("l_linenumber", "int"),
        ("l_quantity", "float"),
        ("l_extendedprice", "float"),
        ("l_discount", "float"),
        ("l_tax", "float"),
        ("l_returnflag", ("str", 1)),
        ("l_linestatus", ("str", 1)),
        ("l_shipdate", "int"),
    ],
}

# indexes created at load time: (table, column, clustered)
INDEXES = [
    ("region", "r_regionkey", True),
    ("nation", "n_nationkey", True),
    ("nation", "n_regionkey", False),
    ("supplier", "s_suppkey", True),
    ("supplier", "s_nationkey", False),
    ("customer", "c_custkey", True),
    ("customer", "c_nationkey", False),
    ("part", "p_partkey", True),
    ("partsupp", "ps_partkey", False),
    ("partsupp", "ps_suppkey", False),
    ("orders", "o_orderkey", True),
    ("orders", "o_custkey", False),
    # lineitem intentionally unindexed: joins to it go through the grace
    # hash join, matching the operator mix the paper implemented.
]

_START_DATE = date_to_int("1992-01-01")
_END_DATE = date_to_int("1998-08-02")


def table_sizes(scale_factor=1.0):
    """Cardinalities at ``scale_factor`` (1.0 = the mini base schema)."""
    base = {
        "supplier": 20,
        "customer": 150,
        "part": 200,
        "orders_per_customer": 10,
        "lineitems_per_order": 4,
        "partsupp_per_part": 4,
    }
    return {
        "region": len(REGION_NAMES),
        "nation": len(NATION_ROWS),
        "supplier": max(5, int(base["supplier"] * scale_factor)),
        "customer": max(10, int(base["customer"] * scale_factor)),
        "part": max(10, int(base["part"] * scale_factor)),
        "orders_per_customer": base["orders_per_customer"],
        "lineitems_per_order": base["lineitems_per_order"],
        "partsupp_per_part": base["partsupp_per_part"],
    }


def setup(db, scale_factor=1.0, seed=4321):
    """Create, load, index, and analyze all eight TPC-H tables."""
    sizes = table_sizes(scale_factor)
    rng = random.Random(seed)
    for name, columns in SCHEMAS.items():
        db.create_table(name, columns)

    db.load_rows("region", [(i, name) for i, name in enumerate(REGION_NAMES)])
    db.load_rows(
        "nation", [(i, name, region) for i, (name, region) in enumerate(NATION_ROWS)]
    )
    db.load_rows(
        "supplier",
        [
            (
                i,
                f"Supplier#{i:09d}",
                rng.randrange(len(NATION_ROWS)),
                round(rng.uniform(-999.99, 9999.99), 2),
            )
            for i in range(sizes["supplier"])
        ],
    )
    db.load_rows(
        "customer",
        [
            (
                i,
                f"Customer#{i:09d}",
                rng.randrange(len(NATION_ROWS)),
                MARKET_SEGMENTS[rng.randrange(len(MARKET_SEGMENTS))],
                round(rng.uniform(-999.99, 9999.99), 2),
            )
            for i in range(sizes["customer"])
        ],
    )
    db.load_rows(
        "part",
        [
            (
                i,
                f"Part#{i:011d}",
                rng.randrange(1, 51),
                PART_TYPES[rng.randrange(len(PART_TYPES))],
            )
            for i in range(sizes["part"])
        ],
    )
    partsupp_rows = []
    for part in range(sizes["part"]):
        for k in range(sizes["partsupp_per_part"]):
            supplier = (part + k * (sizes["supplier"] // 4 + 1)) % sizes["supplier"]
            partsupp_rows.append(
                (part, supplier, rng.randrange(1, 10000),
                 round(rng.uniform(1.0, 1000.0), 2))
            )
    db.load_rows("partsupp", partsupp_rows)

    orders_rows = []
    lineitem_rows = []
    order_key = 0
    for customer in range(sizes["customer"]):
        for _ in range(rng.randrange(1, 2 * sizes["orders_per_customer"])):
            order_date = rng.randrange(_START_DATE, _END_DATE - 200)
            n_lines = rng.randrange(1, 2 * sizes["lineitems_per_order"])
            total = 0.0
            lines = []
            for line_no in range(1, n_lines + 1):
                part = rng.randrange(sizes["part"])
                supplier = rng.randrange(sizes["supplier"])
                quantity = float(rng.randrange(1, 51))
                price = round(quantity * rng.uniform(900.0, 1100.0), 2)
                discount = round(rng.randrange(0, 11) / 100.0, 2)
                tax = round(rng.randrange(0, 9) / 100.0, 2)
                ship_date = order_date + rng.randrange(1, 122)
                returnflag = RETURN_FLAGS[rng.randrange(3)]
                linestatus = LINE_STATUSES[rng.randrange(2)]
                total += price
                lines.append(
                    (order_key, part, supplier, line_no, quantity, price,
                     discount, tax, returnflag, linestatus, ship_date)
                )
            orders_rows.append(
                (order_key, customer, round(total, 2), order_date,
                 rng.randrange(0, 2))
            )
            lineitem_rows.extend(lines)
            order_key += 1
    db.load_rows("orders", orders_rows)
    db.load_rows("lineitem", lineitem_rows)

    for table, column, clustered in INDEXES:
        db.create_index(table, column, clustered=clustered)
    for table in SCHEMAS:
        db.analyze_table(table)
    return {
        "orders": len(orders_rows),
        "lineitem": len(lineitem_rows),
        **{t: sizes[t] for t in ("supplier", "customer", "part")},
    }


QUERY_1 = """
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

QUERY_2 = """
SELECT s_acctbal, s_name, n_name, p_partkey
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey
  AND s_suppkey = ps_suppkey
  AND p_size = 15
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'EUROPE'
  AND ps_supplycost = (
      SELECT min(ps2.ps_supplycost)
      FROM partsupp ps2, supplier s2, nation n2, region r2
      WHERE p_partkey = ps2.ps_partkey
        AND s2.s_suppkey = ps2.ps_suppkey
        AND s2.s_nationkey = n2.n_nationkey
        AND n2.n_regionkey = r2.r_regionkey
        AND r2.r_name = 'EUROPE')
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
"""

QUERY_3 = """
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""

QUERY_5 = """
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1995-01-01'
GROUP BY n_name
ORDER BY revenue DESC
"""

QUERY_6 = """
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24
"""


def queries():
    """The paper's TPC-H queries as (name, sql, hints) triples."""
    return [
        ("tpch_q1", QUERY_1, None),
        ("tpch_q2", QUERY_2, None),
        ("tpch_q3", QUERY_3, None),
        ("tpch_q5", QUERY_5, None),
        ("tpch_q6", QUERY_6, None),
    ]
