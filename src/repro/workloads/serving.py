"""The ``serving`` workload: traced multi-tenant SQL serving.

The paper's premise (§1-2) is a *threaded database server*: many client
query streams interleaved by the scheduler, wrecking the instruction
cache far worse than any single query would.  The steady-state suites
approximate that with ``run_concurrent``; this workload runs the real
thing — :class:`repro.db.server.SqlServer` in deterministic mode,
serving four client streams across three tenants (OLTP transactions,
repeated point lookups through the prepared-statement cache, analytic
scans under a deadline, and a streaming bulk load), one quantum per
server step so the streams interleave exactly as the paper describes.

Split like every other suite:

* **build** (untraced, in the constructor): create and populate the
  ``acct`` table, start the server, connect the streams, and precompute
  each stream's statement script from the seed;
* **run** (traced): drive the streams to completion — admission,
  statement-cache hits and parse-on-miss, deficit-weighted tenant
  dispatch, quantum execution through parser/optimizer/exec/storage,
  conflict aborts and budgeted retries — then a verification scan.

Under no-wait two-phase locking the OLTP transaction's UPDATE conflicts
with concurrent scans, so some statements abort and replay.  All of it
is deterministic: ``workers=0`` uses the virtual clock, every RNG is
seeded from ``(seed, stream)``, so the same ``(scale, seed)`` always
yields the same trace and the same rows.
"""

from __future__ import annotations

import random

from repro.db import Database
from repro.db.server import ServerConfig, SqlServer
from repro.errors import ServerError, TransientError

#: Tenant weights for the serving mix: OLTP gets the lion's share, the
#: analytic scans half of that, the bulk loader runs in the background.
TENANT_WEIGHTS = {"oltp": 4, "analytics": 2, "batch": 1}

#: Per-stream floor on the transparent-replay cap; the actual cap grows
#: with the stream's script length (larger scales conflict more per
#: attempt).  The mix is deterministic, so hitting the cap means the
#: workload itself livelocked.
_MIN_STREAM_RETRIES = 48
_RETRIES_PER_OP = 16

#: Scans get a generous deadline (virtual ticks): the deadline arm/cancel
#: machinery runs on every quantum without ever actually firing.
_SCAN_DEADLINE = 250_000


class _Stream:
    """One client connection driving a precomputed statement script.

    ``ops`` entries are tuples: ``("begin",)``, ``("commit",)``,
    ``("stmt", sql, deadline)``, ``("bulk", table, rows)``.  At most one
    request is in flight at a time; transient failures (conflict aborts,
    admission sheds) replay the failed statement — or the whole
    transaction when one is open — exactly like a real client would.
    """

    __slots__ = ("name", "conn", "ops", "pos", "ticket", "txn_start",
                 "retries", "max_retries", "done")

    def __init__(self, name, conn, ops):
        self.name = name
        self.conn = conn
        self.ops = ops
        self.pos = 0
        self.ticket = None
        self.txn_start = None  # op index of the open BEGIN, if any
        self.retries = 0
        self.max_retries = max(_MIN_STREAM_RETRIES,
                               _RETRIES_PER_OP * len(ops))
        self.done = False

    def turn(self):
        """Advance by at most one op; no-op while a request is in flight."""
        if self.done:
            return
        if self.ticket is not None:
            if not self.ticket.done:
                return
            ticket, self.ticket = self.ticket, None
            try:
                ticket.outcome()
            except Exception as exc:
                self._recover(exc)
                return
        if self.pos >= len(self.ops):
            self.done = True
            return
        op = self.ops[self.pos]
        self.pos += 1
        try:
            if op[0] == "begin":
                self.txn_start = self.pos - 1
                self.conn.begin()
            elif op[0] == "commit":
                self.conn.commit()
                self.txn_start = None
            elif op[0] == "stmt":
                self.ticket = self.conn.submit(op[1], deadline=op[2])
            else:  # bulk
                self.ticket = self.conn.submit_bulk(op[1], op[2])
        except Exception as exc:
            self._recover(exc)

    def _recover(self, exc):
        """Replay after a retryable failure; anything else is a bug."""
        if not isinstance(exc, TransientError):
            raise exc
        self.retries += 1
        if self.retries > self.max_retries:
            raise ServerError(
                f"serving stream {self.name!r} exceeded "
                f"{self.max_retries} replays"
            ) from exc
        restart = self.pos - 1 if self.txn_start is None else self.txn_start
        if self.conn.in_transaction or self.conn.session.poisoned:
            self.conn.rollback()
        self.txn_start = None
        self.pos = restart


class ServingWorkload:
    """Multi-tenant serving workload with the ``WorkloadSuite`` interface.

    ``scale`` multiplies the table size and the number of statements each
    stream issues.  ``quantum_rows`` is the server's scheduling quantum,
    the knob that controls how finely the streams interleave.
    """

    def __init__(self, scale=1.0, seed=1234, quantum_rows=16):
        self.name = "serving"
        self.seed = seed
        self.quantum_rows = quantum_rows
        rng = random.Random(f"serving:{seed}")
        n = max(48, int(round(300 * scale)))
        txns = max(2, int(round(6 * scale)))
        scans = max(2, int(round(4 * scale)))
        bulk_rows = max(16, int(round(120 * scale)))

        self.database = Database(pool_pages=512)
        db = self.database
        db.execute("CREATE TABLE acct (id INT, bal INT)")
        db.create_index("acct", "id")
        for i in range(n):
            db.execute(
                f"INSERT INTO acct (id, bal) "
                f"VALUES ({i}, {rng.randrange(1000)})"
            )
        db.analyze_table("acct")

        self._server = SqlServer(db, ServerConfig(
            workers=0,
            quantum_rows=quantum_rows,
            max_queue=8,
            tenants=TENANT_WEIGHTS,
            stmt_cache_size=8,
            retry_budget=8,
            seed=f"serving:{seed}",
        ))
        self._streams = [
            _Stream("oltp-txn", self._server.connect("oltp"),
                    self._oltp_txn_ops(rng, n, txns)),
            _Stream("oltp-point", self._server.connect("oltp"),
                    self._point_ops(rng, n, txns * 3)),
            _Stream("analytics", self._server.connect("analytics"),
                    self._scan_ops(rng, scans)),
            _Stream("batch", self._server.connect("batch"),
                    self._bulk_ops(rng, n, bulk_rows)),
        ]
        self._admin = self._server.connect("batch")

    # ------------------------------------------------------------------
    # script builders (untraced; pure in the constructor's rng)
    # ------------------------------------------------------------------
    @staticmethod
    def _oltp_txn_ops(rng, n, txns):
        ops = []
        for _ in range(txns):
            k = rng.randrange(n)
            ops.append(("begin",))
            ops.append(("stmt",
                        f"UPDATE acct SET bal = {rng.randrange(1000)} "
                        f"WHERE id = {k}", None))
            ops.append(("stmt",
                        f"SELECT bal FROM acct WHERE id = {k}", None))
            ops.append(("commit",))
        return ops

    @staticmethod
    def _point_ops(rng, n, count):
        # a small cycle of identical statements: after the first lap the
        # prepared-statement cache serves every parse
        cycle = [
            ("stmt", f"SELECT bal FROM acct WHERE id = {rng.randrange(n)}",
             None)
            for _ in range(4)
        ]
        return [cycle[i % len(cycle)] for i in range(count)]

    @staticmethod
    def _scan_ops(rng, scans):
        return [
            ("stmt",
             f"SELECT id FROM acct WHERE bal >= {rng.randrange(200, 900)}",
             _SCAN_DEADLINE)
            for _ in range(scans)
        ]

    @staticmethod
    def _bulk_ops(rng, n, bulk_rows):
        rows = [(n + i, rng.randrange(1000)) for i in range(bulk_rows)]
        probe = n + rng.randrange(bulk_rows)
        return [
            ("bulk", "acct", rows),
            ("stmt", f"SELECT bal FROM acct WHERE id = {probe}", None),
        ]

    # ------------------------------------------------------------------
    def run(self):
        """Traced part: serve every stream to completion, then verify.

        Returns ``{"serving": rows}`` where ``rows`` is the final content
        of ``acct`` in scan order, matching ``WorkloadSuite.run``'s
        ``name -> rows`` shape.
        """
        streams = self._streams
        rounds = 0
        while not all(s.done for s in streams):
            for stream in streams:
                stream.turn()
            self._server.step()
            rounds += 1
            if rounds > 500_000:
                raise ServerError("serving workload exceeded round ceiling")
        self._server.pump()
        result = self._admin.execute("SELECT id, bal FROM acct")
        return {"serving": [tuple(row) for row in result.rows]}

    def query_names(self):
        return ["serving"]

    def stats(self):
        """Server-side counters after :meth:`run` (for tests/diagnostics)."""
        return self._server.stats()
