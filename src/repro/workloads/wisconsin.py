"""The Wisconsin benchmark (Bitton, DeWitt, Turbyfill 1983).

Schema, data generator, and the selection/join queries the paper uses
(queries 1-7 and 9, §4.1):

* q1/q2 — 1% / 10% range selection, **no index** (sequential scan)
* q3/q4 — 1% / 10% range selection via the **clustered** index (unique2)
* q5/q6 — 1% / 10% range selection via the **non-clustered** index (unique1)
* q7    — single-tuple select via the clustered index
* q9    — two-way join (JoinAselB): tenk1 x tenk2 on unique2 with a
  selection keeping the first 10% of unique2

The classic relations ``tenk1``/``tenk2`` (10,000 tuples at full scale)
and ``onek`` (1,000) hold 13 integer attributes and 3 string attributes
derived from ``unique1``/``unique2``.  Rows are loaded in ``unique2``
order, making the unique2 index clustered.
"""

from __future__ import annotations

import random

WISCONSIN_COLUMNS = [
    ("unique1", "int"),
    ("unique2", "int"),
    ("two", "int"),
    ("four", "int"),
    ("ten", "int"),
    ("twenty", "int"),
    ("onepercent", "int"),
    ("tenpercent", "int"),
    ("twentypercent", "int"),
    ("fiftypercent", "int"),
    ("unique3", "int"),
    ("evenonepercent", "int"),
    ("oddonepercent", "int"),
    ("stringu1", ("str", 12)),
    ("stringu2", ("str", 12)),
    ("string4", ("str", 4)),
]

_STRING4 = ("AAAA", "HHHH", "OOOO", "VVVV")


def _unique_string(value):
    """Compact analog of the benchmark's 52-char cyclic strings."""
    letters = []
    v = value
    for _ in range(7):
        letters.append(chr(ord("A") + v % 26))
        v //= 26
    return "".join(reversed(letters))


def generate_rows(n_tuples, seed):
    """Yield Wisconsin rows in ``unique2`` (clustered) order."""
    rng = random.Random(seed)
    unique1 = list(range(n_tuples))
    rng.shuffle(unique1)
    for unique2, u1 in enumerate(unique1):
        yield (
            u1,
            unique2,
            u1 % 2,
            u1 % 4,
            u1 % 10,
            u1 % 20,
            u1 % 100,
            u1 % 10,
            u1 % 5,
            u1 % 2,
            u1,
            (u1 % 100) * 2,
            (u1 % 100) * 2 + 1,
            _unique_string(u1),
            _unique_string(unique2),
            _STRING4[unique2 % 4],
        )


def setup(db, n_tuples=10000, onek_tuples=None, seed=1234,
          hash_unique3=False, analyze=True):
    """Create and load tenk1, tenk2, onek with clustered (unique2) and
    non-clustered (unique1) indexes, then analyze.

    ``hash_unique3`` additionally builds a hash index on ``unique3``
    (the scale-out suite's equality-probe column).  ``analyze=False``
    skips the full-scan ANALYZE and leaves the planner on the tables'
    incremental statistics — at 100x scale the scan costs more than the
    load.
    """
    if onek_tuples is None:
        onek_tuples = max(10, n_tuples // 10)
    sizes = {"tenk1": n_tuples, "tenk2": n_tuples, "onek": onek_tuples}
    for i, (name, size) in enumerate(sizes.items()):
        db.create_table(name, WISCONSIN_COLUMNS)
        # indexes first: the bulk loader then collects keys inline and
        # feeds each index's sorted bulk build, instead of a second
        # decode-everything backfill scan after the load
        db.create_index(name, "unique2", clustered=True)
        db.create_index(name, "unique1", clustered=False)
        if hash_unique3:
            db.create_index(name, "unique3", kind="hash")
        db.load_rows(name, generate_rows(size, seed + i))
        if analyze:
            db.analyze_table(name)
    return sizes


def queries(n_tuples=10000):
    """The paper's Wisconsin queries as (name, sql, hints) triples.

    Range widths scale with the table size so q1/q3/q5 always select 1%
    and q2/q4/q6 select 10%.
    """
    one_pct = max(1, n_tuples // 100)
    ten_pct = max(1, n_tuples // 10)
    no_index = {("access", "tenk1"): "scan"}
    use_index = {("access", "tenk1"): "index"}
    return [
        (
            "wisc_q1",
            f"SELECT * FROM tenk1 WHERE unique2 BETWEEN 0 AND {one_pct - 1}",
            no_index,
        ),
        (
            "wisc_q2",
            f"SELECT * FROM tenk1 WHERE unique2 BETWEEN 0 AND {ten_pct - 1}",
            no_index,
        ),
        (
            "wisc_q3",
            f"SELECT * FROM tenk1 WHERE unique2 BETWEEN {one_pct} AND {2 * one_pct - 1}",
            use_index,
        ),
        (
            "wisc_q4",
            f"SELECT * FROM tenk1 WHERE unique2 BETWEEN {ten_pct} AND {2 * ten_pct - 1}",
            use_index,
        ),
        (
            "wisc_q5",
            f"SELECT * FROM tenk1 WHERE unique1 BETWEEN {one_pct} AND {2 * one_pct - 1}",
            use_index,
        ),
        (
            "wisc_q6",
            f"SELECT * FROM tenk1 WHERE unique1 BETWEEN {ten_pct} AND {2 * ten_pct - 1}",
            use_index,
        ),
        (
            "wisc_q7",
            f"SELECT * FROM tenk1 WHERE unique2 = {n_tuples // 2}",
            use_index,
        ),
        (
            "wisc_q9",
            "SELECT t1.unique1, t2.unique1 FROM tenk1 t1, tenk2 t2 "
            f"WHERE t1.unique2 = t2.unique2 AND t1.unique2 < {ten_pct}",
            None,
        ),
    ]


def scale_queries(n_tuples):
    """The storage scale-out trio (suite ``wisc-scale``): selective
    index work that stays traceable while the database itself grows
    100-1000x — a 1% clustered range, a clustered point select, and an
    equality probe the planner serves from the ``unique3`` hash index.
    """
    one_pct = max(1, n_tuples // 100)
    use_index = {("access", "tenk1"): "index"}
    return [
        (
            "wisc_sq3",
            f"SELECT * FROM tenk1 WHERE unique2 BETWEEN {one_pct} AND {2 * one_pct - 1}",
            use_index,
        ),
        (
            "wisc_sq7",
            f"SELECT * FROM tenk1 WHERE unique2 = {n_tuples // 2}",
            use_index,
        ),
        (
            "wisc_sqh",
            f"SELECT * FROM tenk1 WHERE unique3 = {n_tuples // 3}",
            None,  # no hint: cost model must pick the hash index itself
        ),
    ]


def query_subset(names, n_tuples=10000):
    """Pick queries by name (e.g. the wisc-prof trio q1, q5, q9)."""
    wanted = set(names)
    out = [q for q in queries(n_tuples) if q[0] in wanted]
    missing = wanted - {q[0] for q in out}
    if missing:
        raise ValueError(f"unknown Wisconsin queries: {sorted(missing)}")
    return out


def expected_selection_count(name, n_tuples):
    """Ground-truth result sizes for the selection queries (tests)."""
    one_pct = max(1, n_tuples // 100)
    ten_pct = max(1, n_tuples // 10)
    return {
        "wisc_q1": one_pct,
        "wisc_q2": ten_pct,
        "wisc_q3": one_pct,
        "wisc_q4": ten_pct,
        "wisc_q5": one_pct,
        "wisc_q6": ten_pct,
        "wisc_q7": 1,
        "wisc_q9": ten_pct,
    }[name]
