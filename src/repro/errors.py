"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StorageError(ReproError):
    """Base class for storage-manager failures."""


class PageFullError(StorageError):
    """Raised when a record does not fit into the target page."""


class RecordNotFoundError(StorageError):
    """Raised when a record id does not resolve to a live record."""


class BufferPoolFullError(StorageError):
    """Raised when every frame in the buffer pool is pinned."""


class LockConflictError(StorageError):
    """Raised when a lock request conflicts and waiting is not allowed."""


class DeadlockError(StorageError):
    """Raised when granting a lock would create a wait-for cycle."""


class TransactionError(StorageError):
    """Raised on illegal transaction state transitions."""


class RecoveryError(StorageError):
    """Raised when log replay encounters an inconsistent log."""


class CatalogError(ReproError):
    """Raised for unknown tables, columns, or indexes."""


class SqlError(ReproError):
    """Base class for SQL front-end failures."""


class SqlSyntaxError(SqlError):
    """Raised by the tokenizer/parser on malformed SQL."""


class PlanError(ReproError):
    """Raised when the optimizer cannot build a plan for a query."""


class ExecutionError(ReproError):
    """Raised when a physical operator fails at runtime."""


class TraceError(ReproError):
    """Raised for malformed traces or instrumentation misuse."""


class LayoutError(ReproError):
    """Raised when an address layout cannot be constructed."""


class SimulationError(ReproError):
    """Raised by the microarchitecture simulator on invalid input."""


class ConfigError(ReproError):
    """Raised for invalid simulator or harness configuration values."""


class CacheCorruptionError(ReproError):
    """Raised when an on-disk result-cache entry exists but is unreadable."""


class RunTimeoutError(ReproError):
    """Raised when one simulation exceeds the engine's per-run timeout."""


class WorkerCrashError(ReproError):
    """Raised when a worker process dies without returning a result."""
