"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TransientError:
    """Marker mixin for failures that are safe to retry.

    Retry logic (bounded retry-with-backoff in the buffer pool,
    transaction restart in :meth:`StorageManager.run_transaction`)
    catches ``TransientError`` instead of listing concrete classes, so
    adding a new retryable failure mode is a one-line change here and
    can never silently fall outside the retry net.  Everything not
    carrying this mixin is fatal: surfacing it to the caller is the
    only correct handling.
    """


class StorageError(ReproError):
    """Base class for storage-manager failures."""


class PageFullError(StorageError):
    """Raised when a record does not fit into the target page."""


class RecordNotFoundError(StorageError):
    """Raised when a record id does not resolve to a live record."""


class BufferPoolFullError(StorageError):
    """Raised when every frame in the buffer pool is pinned."""


class LockConflictError(StorageError):
    """Raised when a lock request conflicts and waiting is not allowed."""


class DeadlockError(StorageError, TransientError):
    """Raised when granting a lock would create a wait-for cycle.

    Transient: aborting one participant and re-running its transaction
    resolves the cycle, so deadlocks are retried (bounded) rather than
    surfaced."""


class TransientDiskError(StorageError, TransientError):
    """Raised when a simulated disk read fails transiently.

    Injected by :mod:`repro.db.storage.faults`; clears on retry, so the
    buffer pool's bounded retry-with-backoff absorbs it."""


class TornPageError(StorageError):
    """Raised when a page image fails its checksum (torn write).

    Fatal for ordinary reads; crash recovery treats the page as absent
    and rebuilds it from the durable log instead."""


class TransactionError(StorageError):
    """Raised on illegal transaction state transitions."""


class RecoveryError(StorageError):
    """Raised when log replay encounters an inconsistent log."""


class ServerError(ReproError):
    """Base class for SQL-server front-end failures."""


class ServerBusy(ServerError, TransientError):
    """Raised when admission control sheds a request (queue full or
    tenant quota exhausted).

    Transient: nothing about the request is wrong — re-submitting after
    a backoff is the correct client response, so load shedding can never
    be mistaken for a query failure."""


class DeadlineExceeded(ServerError, TransientError):
    """Raised when a query's deadline expires before it completes.

    The server cancels the query cooperatively at a quantum boundary:
    its plan is closed, its transaction aborted, and every lock and
    wait-for edge it held is released before this error is surfaced.
    Transient: the same query may well finish under a fresh deadline on
    a less loaded server."""


class ConnectionLost(ServerError, TransientError):
    """Raised to clients whose request was in flight when the server
    died (or whose connection was killed by a fatal error).

    Transient by design: the chaos invariant suite requires that a
    crash surfaces to clients only as clean retryable errors — the
    client re-connects and re-runs its transaction."""


class TransactionAborted(ServerError, TransientError):
    """Raised when a statement inside an explicit transaction hit a
    lock conflict or deadlock and the server aborted the transaction
    (no-wait two-phase locking cannot suspend mid-statement).

    Transient: the client owns the transaction boundary, so the retry
    unit is the whole transaction, not the statement."""


class CatalogError(ReproError):
    """Raised for unknown tables, columns, or indexes."""


class SqlError(ReproError):
    """Base class for SQL front-end failures."""


class SqlSyntaxError(SqlError):
    """Raised by the tokenizer/parser on malformed SQL."""


class PlanError(ReproError):
    """Raised when the optimizer cannot build a plan for a query."""


class ExecutionError(ReproError):
    """Raised when a physical operator fails at runtime."""


class TraceError(ReproError):
    """Raised for malformed traces or instrumentation misuse."""


class LayoutError(ReproError):
    """Raised when an address layout cannot be constructed."""


class SimulationError(ReproError):
    """Raised by the microarchitecture simulator on invalid input."""


class ConfigError(ReproError):
    """Raised for invalid simulator or harness configuration values."""


class CacheCorruptionError(ReproError):
    """Raised when an on-disk result-cache entry exists but is unreadable."""


class RunTimeoutError(ReproError):
    """Raised when one simulation exceeds the engine's per-run timeout."""


class WorkerCrashError(ReproError):
    """Raised when a worker process dies without returning a result."""
