"""Optimized replay core: compiled traces + a batched fast path.

The reference :class:`~repro.uarch.fetch_engine.FetchEngine` re-derives
the same facts for every event: it swaps offsets, divides them into
block indices, chases ``base_line[fid] + perm[fid][block]`` through two
list indirections, and funnels every line reference — even a guaranteed
L1 hit — through the full ``_access`` machinery (arrival delivery, LRU
lookup, untouched/in-flight bookkeeping, prefetcher hook).  This module
removes that per-event work without changing a single observable number:

* **compiled traces** — each (trace, layout) pair is translated once
  into flat parallel arrays: per-event opcodes, pre-scaled instruction
  counts, spans into one flat list of global line addresses (built with
  the layout's precomputed translation table), a per-event contiguity
  flag, and pre-resolved call-site lines.  Compilation is vectorized
  with numpy when available and cached per trace object (weakly) —
  traces are append-only, so a compiled image is reused as long as
  ``len(trace)`` is unchanged.
* **an O(1) residency index** — a bytearray mirror of the L1 content
  replaces the associative ``contains``/``lookup`` scans on the hot
  paths.  Squashed prefetches — the overwhelming majority under NL/CGP
  — become two array probes and a counter bump (or one C-level range
  scan for a whole fan-out window).
* **timestamp LRU** — within the run, the L1's per-set recency lists
  are replaced by unordered way slots plus a per-line last-use stamp
  from one global counter.  A hit is a single store (no set probe, no
  shift); the victim on a fill is the minimum-stamp way, which is
  provably the same line the reference recency list would evict.  The
  ``SetAssocCache`` is reconstructed (sorted by stamp) when the run
  ends, so post-run inspection sees the exact reference state.
* **a batched guaranteed-hit fast path** — an EXEC event whose lines
  are consecutive (compile-time flag) is checked against the residency
  and first-touch indexes with C-speed ``bytearray.count`` range scans;
  when every line is a resident re-touch, no arrival is due, and the
  inlined sequential prefetcher would squash every issue, the whole
  event collapses to counter adds and one stamp slice-assign.
  Single-line repeats (``OP_EXEC_REP``, also detected at compile time)
  shrink further to two counter increments under the
  ``repeat_transparent`` prefetcher contract.
* **specialized kernels** — a run with no prefetcher hooks at all (the
  paper's O5/OM baseline cells) takes a dedicated loop with the memory
  system's port + L2 arithmetic inlined and no in-flight/untouched
  bookkeeping (nothing can ever be in flight); prefetchers that export
  ``nl_component`` (NL, RA-NL, and CGP's within-function component)
  promise their ``on_line_access`` is exactly the sequential-NL
  automaton, so the leading-edge issue, the post-jump fan-out, and the
  repeat no-op are inlined, squash checks included; and
  :class:`~repro.core.cgp.CgpPrefetcher`'s call/return CGHC accesses
  are inlined with the first-level history-cache probe flattened.

Equivalence is bit-exact, not approximate: every floating-point
accumulation (cycle, stall, instructions, fetch/mispredict cycles)
performs the same IEEE-754 operations in the same order as the
reference engine, and anything the fast paths cannot prove (a pending
arrival, a non-resident line, a non-contiguous run, an unknown
prefetcher class) falls through to an inlined transcription — or the
actual hook call — of the reference classification.  The cross-engine
suites in ``tests/uarch/test_engine_equivalence.py`` and
``tests/harness/test_engine_equivalence.py`` enforce
``SimStats.to_dict()`` equality on golden workloads and randomized
traces.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.instrument.trace import CALL, EXEC, RET, SWITCH
from repro.uarch.fetch_engine import (
    FetchEngine,
    _LCG_ADD,
    _LCG_MASK,
    _LCG_MULT,
)
from repro.uarch.prefetch.base import Prefetcher
from repro.uarch.prefetch.nl import NextNLinePrefetcher, RunAheadNLPrefetcher
from repro.uarch.ras import RasEntry

try:  # numpy accelerates compilation; the engine runs without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the base image
    _np = None

OP_EXEC = EXEC
OP_CALL = CALL
OP_RET = RET
OP_SWITCH = SWITCH
OP_EXEC_REP = 4  # single-line EXEC repeating the previous access's line

# ``_state`` bits: a line is 0 when absent, RESIDENT while cached, and
# RESIDENT|UNTOUCHED while cached but never referenced since its
# prefetch arrived.
_RESIDENT = 1
_UNTOUCHED = 2


class CompiledTrace:
    """A trace pre-translated for one layout.

    Parallel per-event lists (plain Python lists — CPython indexes them
    faster than numpy scalars, and their elements are exact int/float,
    which the bit-identical arithmetic contract requires):

    * ``ops`` — opcode per event (``OP_*``),
    * ``ea``/``eb`` — the raw ``a``/``b`` operands (callee/caller fids),
    * ``n_scaled`` — EXEC instruction count pre-multiplied by the
      layout's ``instr_scale`` (float iff ``instr_scale`` is a float,
      matching the reference engine's arithmetic types),
    * ``seg_start``/``seg_end`` — an EXEC event's half-open span into
      ``lines``,
    * ``lines`` — flat global line addresses of every EXEC reference,
    * ``contig`` — 1 iff the event's lines are consecutive ascending
      addresses (the batched fast path's precondition),
    * ``callsite`` — pre-resolved call-site line for CALL events with a
      known caller,
    * ``run_s``/``run_e`` — flat half-open spans (positions into
      ``lines``) of every maximal *contiguous sub-run*: within a run,
      ``lines[p + 1] == lines[p] + 1``.  Runs never cross events.
    * ``run_lo``/``run_hi`` — an EXEC event's half-open span into
      ``run_s``/``run_e`` (its sub-runs, in order).

    The sub-run decomposition is what lets the replay kernels batch at a
    finer grain than whole events: every run is one address interval, so
    residency, first-touch, and the sequential prefetcher's entire
    issue-attempt span over the run are each provable with a single
    C-level range scan.
    """

    __slots__ = (
        "n_events", "ops", "ea", "eb", "n_scaled",
        "seg_start", "seg_end", "lines", "contig", "callsite",
        "run_s", "run_e", "run_lo", "run_hi", "_ops_plain",
    )

    def __init__(self, n_events, ops, ea, eb, n_scaled, seg_start,
                 seg_end, lines, contig, callsite, run_s, run_e,
                 run_lo, run_hi):
        self.n_events = n_events
        self.ops = ops
        self.ea = ea
        self.eb = eb
        self.n_scaled = n_scaled
        self.seg_start = seg_start
        self.seg_end = seg_end
        self.lines = lines
        self.contig = contig
        self.callsite = callsite
        self.run_s = run_s
        self.run_e = run_e
        self.run_lo = run_lo
        self.run_hi = run_hi
        self._ops_plain = None

    def ops_norepeat(self):
        """``ops`` with ``OP_EXEC_REP`` rewritten back to ``OP_EXEC``,
        cached — used whenever the prefetcher is not repeat-transparent
        (and by every segment of a sharded replay, so the rewrite is
        paid once per compiled image, not once per segment)."""
        plain = self._ops_plain
        if plain is None:
            plain = self._ops_plain = [
                OP_EXEC if op == OP_EXEC_REP else op for op in self.ops
            ]
        return plain


def compile_trace(trace, layout):
    """Translate ``trace`` for ``layout`` (no caching; see ``_compiled``)."""
    n = len(trace)
    if _np is not None and n:
        return _compile_np(trace, layout, n)
    return _compile_py(trace, layout, n)


def _compile_np(trace, layout, n):
    tbl, bb = layout.translation_table()
    tbl_np = _np.frombuffer(tbl, dtype=_np.int64)
    bb_np = _np.frombuffer(bb, dtype=_np.int64)
    sizes_np = _np.asarray(layout.size_lines, dtype=_np.int64)
    nfuncs = bb_np.shape[0]
    num = layout.num
    den = layout.den
    instr_scale = layout.instr_scale

    kinds = _np.frombuffer(trace.kinds, dtype=_np.int8, count=n)
    a = _np.frombuffer(trace.a, dtype=_np.int64, count=n)
    b = _np.frombuffer(trace.b, dtype=_np.int64, count=n)
    c = _np.frombuffer(trace.c, dtype=_np.int64, count=n)
    if ((kinds < EXEC) | (kinds > SWITCH)).any():
        bad = int(kinds[((kinds < EXEC) | (kinds > SWITCH))][0])
        raise SimulationError(f"unknown trace event kind {bad}")
    ops_np = kinds.astype(_np.int64)

    # ---- EXEC events: expand offset ranges into global line spans ----
    ex_idx = _np.nonzero(kinds == EXEC)[0]
    fid = a[ex_idx]
    lo = _np.minimum(b[ex_idx], c[ex_idx])
    hi = _np.maximum(b[ex_idx], c[ex_idx])
    if ex_idx.size:
        if (fid < 0).any() or (fid >= nfuncs).any():
            raise SimulationError("EXEC event references unknown function")
        if (lo < 0).any():
            raise SimulationError("EXEC event has a negative offset")
    first_blk = (lo * num) // den
    last_blk = (hi * num) // den
    if ex_idx.size and (last_blk >= sizes_np[fid]).any():
        raise SimulationError("EXEC offset beyond function extent")
    seg_lens = last_blk - first_blk + 1
    seg_end_ex = _np.cumsum(seg_lens)
    seg_start_ex = seg_end_ex - seg_lens
    total = int(seg_end_ex[-1]) if ex_idx.size else 0
    flat_idx = _np.repeat(
        bb_np[fid] + first_blk - seg_start_ex, seg_lens
    ) + _np.arange(total, dtype=_np.int64)
    lines_np = tbl_np[flat_idx]

    contig_full = _np.zeros(n, dtype=_np.int64)
    run_lo_full = _np.zeros(n, dtype=_np.int64)
    run_hi_full = _np.zeros(n, dtype=_np.int64)
    run_s_list = []
    run_e_list = []
    if ex_idx.size:
        # contiguity: no non-adjacent pair inside the segment
        breaks = _np.zeros(total, dtype=_np.int64)
        if total > 1:
            _np.cumsum(lines_np[1:] != lines_np[:-1] + 1, out=breaks[1:])
        contig_full[ex_idx] = breaks[seg_end_ex - 1] == breaks[seg_start_ex]

        # maximal contiguous sub-runs: a run starts at every event start
        # and at every break in line adjacency; events are stored
        # back-to-back in ``lines``, so the next run start (or the end
        # of the flat array) closes each run
        is_start = _np.ones(total, dtype=bool)
        if total > 1:
            is_start[1:] = lines_np[1:] != lines_np[:-1] + 1
        is_start[seg_start_ex] = True
        run_s_np = _np.nonzero(is_start)[0]
        run_e_np = _np.empty_like(run_s_np)
        if run_s_np.size > 1:
            run_e_np[:-1] = run_s_np[1:]
        run_e_np[-1] = total
        run_lo_full[ex_idx] = _np.searchsorted(run_s_np, seg_start_ex)
        run_hi_full[ex_idx] = _np.searchsorted(run_s_np, seg_end_ex)
        run_s_list = run_s_np.tolist()
        run_e_list = run_e_np.tolist()

        # mark single-line EXECs repeating the previous EXEC's last line
        first_line = lines_np[seg_start_ex]
        last_line = lines_np[seg_end_ex - 1]
        prev_last = _np.empty_like(last_line)
        prev_last[0] = -1
        prev_last[1:] = last_line[:-1]
        rep = (seg_lens == 1) & (first_line == prev_last)
        ops_np[ex_idx[rep]] = OP_EXEC_REP

    if isinstance(instr_scale, float):
        n_scaled_ex = (hi - lo + 1).astype(_np.float64) * instr_scale
        n_scaled_full = _np.zeros(n, dtype=_np.float64)
    else:
        n_scaled_ex = (hi - lo + 1) * instr_scale
        n_scaled_full = _np.zeros(n, dtype=_np.int64)
    n_scaled_full[ex_idx] = n_scaled_ex
    seg_start_full = _np.zeros(n, dtype=_np.int64)
    seg_end_full = _np.zeros(n, dtype=_np.int64)
    seg_start_full[ex_idx] = seg_start_ex
    seg_end_full[ex_idx] = seg_end_ex

    # ---- CALL events: pre-resolve the call-site line ----
    callsite_full = _np.zeros(n, dtype=_np.int64)
    call_idx = _np.nonzero(kinds == CALL)[0]
    callers = b[call_idx]
    known = call_idx[callers >= 0]
    kc = b[known]
    if known.size:
        if (kc >= nfuncs).any():
            raise SimulationError("CALL event references unknown caller")
        cs_off = c[known]
        if (cs_off < 0).any():
            raise SimulationError("CALL event has a negative call-site offset")
        cs_blk = (cs_off * num) // den
        if (cs_blk >= sizes_np[kc]).any():
            raise SimulationError("call-site offset beyond function extent")
        callsite_full[known] = tbl_np[bb_np[kc] + cs_blk]

    return CompiledTrace(
        n_events=n,
        ops=ops_np.tolist(),
        ea=a.tolist(),
        eb=b.tolist(),
        n_scaled=n_scaled_full.tolist(),
        seg_start=seg_start_full.tolist(),
        seg_end=seg_end_full.tolist(),
        lines=lines_np.tolist(),
        contig=contig_full.tolist(),
        callsite=callsite_full.tolist(),
        run_s=run_s_list,
        run_e=run_e_list,
        run_lo=run_lo_full.tolist(),
        run_hi=run_hi_full.tolist(),
    )


def _compile_py(trace, layout, n):
    """Pure-Python compilation (numpy-free fallback; same output)."""
    tbl, bb = layout.translation_table()
    sizes = layout.size_lines
    num = layout.num
    den = layout.den
    instr_scale = layout.instr_scale
    nfuncs = len(bb)
    kinds = trace.kinds
    a, b, c = trace.a, trace.b, trace.c

    ops = [0] * n
    n_scaled = [0] * n
    seg_start = [0] * n
    seg_end = [0] * n
    contig = [0] * n
    callsite = [0] * n
    run_lo = [0] * n
    run_hi = [0] * n
    run_s = []
    run_e = []
    lines = []
    prev_last = -1
    for i in range(n):
        kind = kinds[i]
        if kind == EXEC:
            fid = a[i]
            o1 = b[i]
            o2 = c[i]
            if o2 < o1:
                o1, o2 = o2, o1
            if fid < 0 or fid >= nfuncs:
                raise SimulationError("EXEC event references unknown function")
            if o1 < 0:
                raise SimulationError("EXEC event has a negative offset")
            fb = (o1 * num) // den
            lb = (o2 * num) // den
            if lb >= sizes[fid]:
                raise SimulationError("EXEC offset beyond function extent")
            tb = bb[fid]
            start = len(lines)
            lines.extend(tbl[tb + fb:tb + lb + 1])
            seg_start[i] = start
            seg_end[i] = len(lines)
            n_scaled[i] = (o2 - o1 + 1) * instr_scale
            contig[i] = 1
            run_lo[i] = len(run_s)
            run_s.append(start)
            for j in range(start + 1, len(lines)):
                if lines[j] != lines[j - 1] + 1:
                    contig[i] = 0
                    run_e.append(j)
                    run_s.append(j)
            run_e.append(len(lines))
            run_hi[i] = len(run_s)
            if lb == fb and lines[start] == prev_last:
                ops[i] = OP_EXEC_REP
            else:
                ops[i] = OP_EXEC
            prev_last = lines[-1]
        elif kind == CALL:
            ops[i] = OP_CALL
            caller = b[i]
            if caller >= 0:
                if caller >= nfuncs:
                    raise SimulationError("CALL event references unknown caller")
                off = c[i]
                if off < 0:
                    raise SimulationError(
                        "CALL event has a negative call-site offset"
                    )
                blk = (off * num) // den
                if blk >= sizes[caller]:
                    raise SimulationError(
                        "call-site offset beyond function extent"
                    )
                callsite[i] = tbl[bb[caller] + blk]
        elif kind == RET:
            ops[i] = OP_RET
        elif kind == SWITCH:
            ops[i] = OP_SWITCH
        else:
            raise SimulationError(f"unknown trace event kind {kind}")
    return CompiledTrace(
        n_events=n,
        ops=ops,
        ea=list(a),
        eb=list(b),
        n_scaled=n_scaled,
        seg_start=seg_start,
        seg_end=seg_end,
        lines=lines,
        contig=contig,
        callsite=callsite,
        run_s=run_s,
        run_e=run_e,
        run_lo=run_lo,
        run_hi=run_hi,
    )


#: trace -> [(layout, CompiledTrace), ...]; weak on the trace so cached
#: images die with it (and a recycled id can never alias a new trace).
_COMPILE_CACHE = weakref.WeakKeyDictionary()

#: content hash -> CompiledTrace (bounded LRU).  The weak per-object
#: cache above is the fast path; this layer is keyed like the harness
#: result cache — by a fingerprint of the *inputs* — so equal-content
#: (trace, layout) pairs with different identities (a shard worker's
#: unpickled copies, a benchmark's isolated per-engine layouts) reuse
#: one compiled image instead of recompiling.
_CONTENT_CACHE = OrderedDict()
_CONTENT_CACHE_LIMIT = 16


def compile_key(trace, layout):
    """Content fingerprint of everything a compiled image depends on.

    Hashes the trace's raw event buffers and the layout's flat
    translation tables plus its scaling parameters — the complete input
    set of :func:`compile_trace` — so the key is stable across object
    identities and process boundaries.
    """
    tbl, bb = layout.translation_table()
    h = hashlib.blake2b(digest_size=16)
    h.update(trace.kinds.tobytes())
    h.update(trace.a.tobytes())
    h.update(trace.b.tobytes())
    h.update(trace.c.tobytes())
    h.update(tbl.tobytes())
    h.update(bb.tobytes())
    h.update(repr((layout.num, layout.den, layout.instr_scale,
                   layout.total_lines)).encode("ascii"))
    return h.hexdigest()


def _content_compiled(trace, layout):
    key = compile_key(trace, layout)
    compiled = _CONTENT_CACHE.get(key)
    if compiled is not None:
        _CONTENT_CACHE.move_to_end(key)
        return compiled
    compiled = compile_trace(trace, layout)
    _CONTENT_CACHE[key] = compiled
    if len(_CONTENT_CACHE) > _CONTENT_CACHE_LIMIT:
        _CONTENT_CACHE.popitem(last=False)
    return compiled


#: layout -> {(n1_sets, n2_sets): (set1_of, set2_of)}; weak on the
#: layout, like the compile cache.  ``set1_of[fid]``/``set2_of[fid]``
#: are the CGHC set indices of the function's entry-line tag — compiled
#: once per (layout, CGHC geometry) so the flat-CGHC kernels never
#: compute a modulo on their per-event path.  Keying on the geometry
#: pair means two configs with different CGHC shapes on one layout can
#: never read each other's tables.
_CGHC_SET_CACHE = weakref.WeakKeyDictionary()


def _cghc_set_tables(layout, n1_sets, n2_sets):
    """fid -> L1/L2 set index tables for the flat-CGHC kernels.

    ``set2_of`` is ``None`` for one-level caches.  Cached per (layout,
    geometry); dropped by :func:`clear_compile_cache` with the compiled
    traces, so a swapped-out layout can never serve stale tables.
    """
    key = (n1_sets, n2_sets)
    try:
        per_layout = _CGHC_SET_CACHE.get(layout)
    except TypeError:  # un-weakref-able layout stand-in: build fresh
        per_layout = None
    if per_layout is None:
        per_layout = {}
        try:
            _CGHC_SET_CACHE[layout] = per_layout
        except TypeError:
            pass
    tables = per_layout.get(key)
    if tables is None:
        base = layout.base_line
        set1 = [line % n1_sets for line in base]
        set2 = [line % n2_sets for line in base] if n2_sets else None
        tables = per_layout[key] = (set1, set2)
    return tables


def clear_compile_cache():
    """Drop every cached compiled trace — the identity-keyed layer and
    the content-keyed LRU — and the compiled CGHC set-index tables.
    Benchmarks call this between engine timing regimes so neither
    engine's numbers ride on state the other built; tests use it to
    force cold compiles (and to prove layout swaps cannot read stale
    CGHC tables)."""
    _CONTENT_CACHE.clear()
    _COMPILE_CACHE.clear()
    _CGHC_SET_CACHE.clear()


def _compiled(trace, layout):
    try:
        entries = _COMPILE_CACHE.get(trace)
    except TypeError:  # un-weakref-able trace stand-in: compile fresh
        return compile_trace(trace, layout)
    if entries is None:
        entries = []
        _COMPILE_CACHE[trace] = entries
    for pos, (cached_layout, compiled) in enumerate(entries):
        if cached_layout is layout:
            if compiled.n_events == len(trace):
                return compiled
            compiled = _content_compiled(trace, layout)
            entries[pos] = (layout, compiled)
            return compiled
    compiled = _content_compiled(trace, layout)
    entries.append((layout, compiled))
    return compiled


class FastFetchEngine(FetchEngine):
    """Drop-in replacement for :class:`FetchEngine` with the same stats.

    The inlined paths are transcriptions of the reference ``_access``/
    ``issue_prefetch``/hook bodies (same branches, same operation order)
    with the associative scans replaced by the ``_state`` residency
    index and the recency lists by per-line timestamps.  During ``run()``
    the ``l1i`` way slots are *unordered* (stamps carry the LRU order);
    the reference recency layout is reconstructed before the run returns.
    """

    def __init__(self, config, layout, prefetcher=None, seed=12345,
                 collector=None):
        super().__init__(config, layout, prefetcher=prefetcher, seed=seed,
                         collector=collector)
        total = layout.total_lines
        #: per-line residency state, one byte per line: bit 0 set while
        #: the line is resident in L1, bit 1 set while it is resident AND
        #: still untouched since its prefetch arrived (the key set of
        #: ``_untouched``).  Non-resident lines are exactly the zero
        #: bytes, so the batched kernels' C-level range scans
        #: (``count(0, ...)``/``find(0, ...)``) keep working on the
        #: merged byte, and truthiness still means "resident".
        self._state = bytearray(total)
        #: bytearray mirror of the ``_in_flight`` key set — lets the
        #: batched paths prove "this prefetch target squashes" (resident
        #: OR in flight) with C-level range scans instead of dict probes
        self._iflag = bytearray(total)
        #: last-use stamp per resident line; victim = min stamp in set.
        #: Stamps are issued by one monotone counter, so min-stamp is
        #: exactly the head of the reference engine's recency list.
        self._stamp = [0] * total
        self._ctr = 0

    def _install(self, line, origin=None):
        """Reference ``_install`` on the stamp/slot representation.

        Only used outside ``run()`` (the run loop inlines this); kept
        so the inherited access machinery stays usable on this engine.
        """
        l1 = self.l1i
        ways = l1.ways
        assoc = l1.assoc
        base = (line % l1.n_sets) * assoc
        end = base + assoc
        stamp = self._stamp
        w = base
        while w < end and ways[w] >= 0:
            w += 1
        if w < end:
            ways[w] = line
        else:
            vs = base
            vmin = stamp[ways[base]]
            w = base + 1
            while w < end:
                sv = stamp[ways[w]]
                if sv < vmin:
                    vmin = sv
                    vs = w
                w += 1
            victim = ways[vs]
            ways[vs] = line
            if self._state[victim] & _UNTOUCHED:
                vo = self._untouched.pop(victim)
                self.stats.prefetch_origin(vo).useless += 1
                if self.collector is not None:
                    self.collector.useless(victim, vo, self.cycle)
            self._state[victim] = 0
        stamp[line] = self._ctr
        self._ctr += 1
        if origin is not None:
            self._untouched[line] = origin
            self._state[line] = _RESIDENT | _UNTOUCHED
        else:
            self._state[line] = _RESIDENT

    def issue_prefetch(self, line, origin, delay=0):
        """Reference semantics with the O(1) residency probe."""
        stats = self.stats.prefetch_origin(origin)
        collector = self.collector
        if line < 0 or line >= self.layout.total_lines:
            stats.out_of_range += 1
            if collector is not None:
                collector.out_of_range(origin)
            return False
        if line in self._in_flight or self._state[line]:
            stats.squashed += 1
            if collector is not None:
                collector.squashed(line, origin)
            return False
        completion, _from_mem = self.memsys.request(
            line, self.cycle + delay, is_prefetch=True
        )
        self._in_flight[line] = (completion, origin)
        self._iflag[line] = 1
        heappush(self._arrivals, (completion, line))
        stats.issued += 1
        if collector is not None:
            collector.issued(line, origin, self.cycle + delay, completion)
        return True

    def prefetch_function_head(self, fid, n_lines, origin, delay=0):
        """Batched head prefetch (CGP's CGHC-triggered requests)."""
        stats = self.stats.prefetch_origin(origin)
        start = self.layout.base_line[fid]
        span = self.layout.size_lines[fid]
        count = n_lines if n_lines < span else span
        total_lines = self.layout.total_lines
        in_flight = self._in_flight
        state = self._state
        iflag = self._iflag
        arrivals = self._arrivals
        request = self.memsys.request
        now = self.cycle + delay
        collector = self.collector
        for line in range(start, start + count):
            if line < 0 or line >= total_lines:
                stats.out_of_range += 1
                if collector is not None:
                    collector.out_of_range(origin)
            elif line in in_flight or state[line]:
                stats.squashed += 1
                if collector is not None:
                    collector.squashed(line, origin)
            else:
                completion, _from_mem = request(line, now, is_prefetch=True)
                in_flight[line] = (completion, origin)
                iflag[line] = 1
                heappush(arrivals, (completion, line))
                stats.issued += 1
                if collector is not None:
                    collector.issued(line, origin, now, completion)

    def _deliver_arrivals(self):
        """Reference semantics plus the ``_iflag`` mirror update."""
        arrivals = self._arrivals
        in_flight = self._in_flight
        iflag = self._iflag
        now = self.cycle
        while arrivals and arrivals[0][0] <= now:
            _arrival, line = heappop(arrivals)
            record = in_flight.pop(line, None)
            if record is None:
                continue  # superseded (already delivered via delayed hit)
            iflag[line] = 0
            self._install(line, record[1])

    def _rebuild_l1_order(self):
        """Sort each set's way slots back into reference recency order
        (LRU at the low index, empties below it)."""
        l1 = self.l1i
        ways = l1.ways
        assoc = l1.assoc
        key = self._stamp.__getitem__
        for base in range(0, l1.n_sets * assoc, assoc):
            slots = [ln for ln in ways[base:base + assoc] if ln >= 0]
            if slots:
                slots.sort(key=key)
                ways[base:base + assoc] = (
                    [-1] * (assoc - len(slots)) + slots
                )

    def _access_observed(self, line):
        """Reference ``_access`` on the state-byte/stamp representation,
        with the collector call sites of the reference engine.

        The resident-hit path mirrors ``SetAssocCache.lookup`` (count a
        hit, refresh recency — here: the stamp); the miss paths mirror
        the reference delayed-hit / demand-miss classification exactly,
        calling the same collector methods with the same arguments in
        the same order, so attribution payloads match bit for bit.
        """
        stats = self.stats
        stats.line_accesses += 1
        missed = False
        first_touch = False
        if self._arrivals:
            self._deliver_arrivals()  # installs via the stamp _install
        l1 = self.l1i
        if self._state[line]:
            l1.hits += 1
            self._stamp[line] = self._ctr
            self._ctr += 1
            if self._state[line] & _UNTOUCHED:
                self._state[line] = _RESIDENT
                origin = self._untouched.pop(line)
                stats.prefetch_origin(origin).pref_hits += 1
                first_touch = True
                if self.collector is not None:
                    self.collector.pref_hit(line, origin, self.cycle)
        else:
            l1.misses += 1
            record = self._in_flight.pop(line, None)
            if record is not None:
                self._iflag[line] = 0
                arrival, origin = record
                stall = arrival - self.cycle
                if stall > 0:
                    self.cycle += stall
                    stats.stall_cycles += stall
                stats.prefetch_origin(origin).delayed_hits += 1
                first_touch = True
                if self.collector is not None:
                    self.collector.delayed_hit(line, origin, stall, self.cycle)
                self._install(line)  # referenced: not "untouched"
            else:
                missed = True
                completion, from_mem = self.memsys.request(
                    line, self.cycle, is_prefetch=False
                )
                stats.demand_misses += 1
                if from_mem:
                    stats.memory_fetches += 1
                else:
                    stats.l2_hits += 1
                stall = completion - self.cycle
                self.cycle += stall
                stats.stall_cycles += stall
                if self.collector is not None:
                    self.collector.demand_miss(line, from_mem)
                self._install(line)
        self.last_access_missed = missed
        self.last_access_first_touch = first_touch
        self.prefetcher.on_line_access(line, self)

    def _run_observed(self, compiled, ev0, ev1, finalize):
        """Instrumented kernel: the reference event loop replayed over
        the compiled arrays.

        With a collector attached, batching would reorder or merge the
        very events being observed, so this kernel trades the fast
        paths for fidelity: engine state (``cycle``, ``stats``, RAS,
        in-flight/untouched maps) stays live at every event, real
        prefetcher hooks run (they flow through the instrumented
        ``issue_prefetch``/``prefetch_function_head``), and every
        floating-point operation matches the reference engine's order —
        the equivalence suites require identical ``SimStats`` *and*
        identical attribution payloads across engines.
        """
        config = self.config
        stats = self.stats
        prefetcher = self.prefetcher
        collector = self.collector
        sampler = collector.interval
        cpi = self._cpi
        instr_scale = self.layout.instr_scale
        overhead_instrs = config.call_overhead_instrs * instr_scale
        overhead_cycles = overhead_instrs * cpi
        penalty = config.mispredict_penalty
        perfect = config.perfect_icache
        base = self.layout.base_line
        ras = self.ras
        access = self._access_observed

        # CGP hooks on the flat CGHC arrays (exact class, finite
        # direct-mapped only): attribution still flows through the real
        # instrumented issue path — only the dict probe is flattened.
        from repro.core.cgp import ORIGIN_CGHC, CgpPrefetcher

        cgp_flat = (
            not perfect
            and type(prefetcher) is CgpPrefetcher
            and not prefetcher.cghc.infinite
            and prefetcher.cghc.l1.ways == 1
        )
        if cgp_flat:
            from repro.core.cghc import FlatCghc

            cghc = prefetcher.cghc
            cg_flat = FlatCghc.from_cache(cghc)
            cghc._live_flat = cg_flat
            cg_ensure = cg_flat.ensure
            f1_tag = cg_flat.l1_tag
            f1_idx = cg_flat.l1_idx
            f1_len = cg_flat.l1_len
            f1_seq = cg_flat.l1_seq
            cg_K = cg_flat.slots
            cg_lat1 = cg_flat.lat1
            cg_set1 = _cghc_set_tables(
                self.layout, cg_flat.n1, cg_flat.n2
            )[0]
            entry_lines = prefetcher._entry
            cgp_n = prefetcher.lines_per_prefetch
            cg_access = collector.cghc_access
            head_prefetch = self.prefetch_function_head

        ops = compiled.ops
        ea = compiled.ea
        eb = compiled.eb
        n_scaled = compiled.n_scaled
        seg_start = compiled.seg_start
        seg_end = compiled.seg_end
        lines = compiled.lines
        callsite = compiled.callsite

        for i in range(ev0, ev1):
            op = ops[i]
            if op == OP_EXEC or op == OP_EXEC_REP:
                nf = n_scaled[i]
                stats.instructions += nf
                d = nf * cpi
                self.cycle += d
                stats.fetch_cycles += d
                if not perfect:
                    for p in range(seg_start[i], seg_end[i]):
                        access(lines[p])
            elif op == OP_CALL:
                stats.calls += 1
                stats.instructions += overhead_instrs
                self.cycle += overhead_cycles
                stats.fetch_cycles += overhead_cycles
                caller = eb[i]
                predicted = self._predict_ok()
                if not predicted:
                    stats.mispredicted_calls += 1
                    self.cycle += penalty
                    stats.mispredict_cycles += penalty
                if caller >= 0:
                    ras.push(callsite[i], base[caller], caller)
                if not perfect:
                    if cgp_flat:
                        # ---- inlined CgpPrefetcher.on_call ----
                        if predicted:
                            callee = ea[i]
                            # prefetch access keyed by the target
                            tag = entry_lines[callee]
                            cs1 = cg_set1[callee]
                            if f1_tag[cs1] == tag:
                                cg_flat.l1_hits += 1
                                latency = cg_lat1
                                cg_access(tag, 0)
                            else:
                                latency, level = cg_ensure(tag)
                                cg_access(tag, level)
                            if f1_len[cs1]:
                                head_prefetch(
                                    f1_seq[cs1 * cg_K], cgp_n,
                                    ORIGIN_CGHC, delay=latency + 1,
                                )
                            # update access keyed by the caller
                            if caller >= 0:
                                tag = entry_lines[caller]
                                cs1 = cg_set1[caller]
                                if f1_tag[cs1] == tag:
                                    cg_flat.l1_hits += 1
                                    cg_access(tag, 0)
                                else:
                                    level = cg_ensure(tag)[1]
                                    cg_access(tag, level)
                                # inlined CghcEntry.record_call
                                slot = f1_idx[cs1] - 1
                                if slot < cg_K:
                                    f1_seq[cs1 * cg_K + slot] = callee
                                    if slot == f1_len[cs1]:
                                        f1_len[cs1] = slot + 1
                                    f1_idx[cs1] = slot + 2
                    else:
                        prefetcher.on_call(caller, ea[i], predicted, self)
            elif op == OP_RET:
                stats.returns += 1
                stats.instructions += overhead_instrs
                self.cycle += overhead_cycles
                stats.fetch_cycles += overhead_cycles
                entry = ras.pop()
                actual_caller = eb[i]
                predicted = entry is not None and (
                    actual_caller < 0 or entry.caller_fid == actual_caller
                )
                if not predicted:
                    self.cycle += penalty
                    stats.mispredict_cycles += penalty
                if not perfect:
                    if cgp_flat:
                        # ---- inlined CgpPrefetcher.on_return ----
                        if predicted:
                            if entry is not None:
                                # prefetch access keyed by the caller's
                                # start address from the modified RAS
                                tag = entry.caller_start_line
                                cs1 = cg_set1[entry.caller_fid]
                                if f1_tag[cs1] == tag:
                                    cg_flat.l1_hits += 1
                                    latency = cg_lat1
                                    cg_access(tag, 0)
                                else:
                                    latency, level = cg_ensure(tag)
                                    cg_access(tag, level)
                                # inlined CghcEntry.predicted_next
                                slot = f1_idx[cs1] - 1
                                if slot < f1_len[cs1]:
                                    head_prefetch(
                                        f1_seq[cs1 * cg_K + slot],
                                        cgp_n, ORIGIN_CGHC,
                                        delay=latency + 1,
                                    )
                            # update access keyed by the returner
                            ret_fid = ea[i]
                            tag = entry_lines[ret_fid]
                            cs1 = cg_set1[ret_fid]
                            if f1_tag[cs1] == tag:
                                cg_flat.l1_hits += 1
                                cg_access(tag, 0)
                            else:
                                level = cg_ensure(tag)[1]
                                cg_access(tag, level)
                            # inlined CghcEntry.reset_index
                            f1_idx[cs1] = 1
                    else:
                        prefetcher.on_return(ea[i], entry, predicted, self)
            # OP_SWITCH: hardware state is shared across threads
            if sampler is not None and stats.instructions >= sampler.next_at:
                sampler.take(self)

        if cgp_flat:
            # canonical dict representation (plus counter deltas) must
            # be restored before ``_finalize`` reads the CGHC totals —
            # and before any snapshot can observe the cache
            cg_flat.write_back(cghc)
            cghc._live_flat = None
        self._rebuild_l1_order()
        if finalize:
            self._finalize()
        return stats

    def run(self, trace):
        return self.run_range(trace, 0, None)

    def run_range(self, trace, start=0, end=None, finalize=None):
        """Replay events ``[start, end)`` of ``trace``.

        ``run()`` is ``run_range(trace, 0, None)``.  The sharded
        replayer (:mod:`repro.uarch.shard`) drives the same kernels one
        boundary-to-boundary segment at a time; ``finalize`` controls
        whether the end-of-run classification (untouched/in-flight
        prefetches become *useless*, derived totals are materialized)
        happens — it defaults to "only when the segment reaches the end
        of the trace", and a recording pass passes ``False`` explicitly
        to keep state live across a boundary at the trace's end.
        """
        compiled = _compiled(trace, self.layout)
        ev0 = start
        ev1 = compiled.n_events if end is None else end
        if not 0 <= ev0 <= ev1 <= compiled.n_events:
            raise SimulationError("event range outside the trace")
        if finalize is None:
            finalize = ev1 == compiled.n_events
        if self.collector is not None:
            # observation disables the batched fast paths; the
            # collection-off kernels below stay byte-for-byte untouched
            return self._run_observed(compiled, ev0, ev1, finalize)
        config = self.config
        stats = self.stats
        prefetcher = self.prefetcher
        layout = self.layout
        cpi = self._cpi
        instr_scale = layout.instr_scale
        overhead_instrs = config.call_overhead_instrs * instr_scale
        overhead_cycles = overhead_instrs * cpi
        penalty = config.mispredict_penalty
        accuracy = config.branch_predictor_accuracy
        perfect = config.perfect_icache
        base = layout.base_line
        total_lines = layout.total_lines
        memsys = self.memsys
        memsys_request = memsys.request
        ras_obj = self.ras
        rbuf = ras_obj._buffer
        rdepth = ras_obj._depth
        rtop = ras_obj._top
        rcount = ras_obj._count
        r_over = 0
        r_under = 0
        l1 = self.l1i
        ways = l1.ways
        n_sets = l1.n_sets
        assoc = l1.assoc
        state = self._state
        iflag = self._iflag
        stamp = self._stamp
        ctr = self._ctr
        untouched = self._untouched
        untouched_pop = untouched.pop
        in_flight = self._in_flight
        arrivals = self._arrivals
        sprefetch = stats.prefetch

        ops = compiled.ops
        ea = compiled.ea
        eb = compiled.eb
        n_scaled = compiled.n_scaled
        seg_start = compiled.seg_start
        seg_end = compiled.seg_end
        lines = compiled.lines
        contig = compiled.contig
        callsite = compiled.callsite

        cls = type(prefetcher)
        line_hook = cls.on_line_access is not Prefetcher.on_line_access
        do_call_hook = (
            not perfect and cls.on_call is not Prefetcher.on_call
        )
        do_ret_hook = (
            not perfect and cls.on_return is not Prefetcher.on_return
        )

        # the repeat opcode is only valid when the prefetcher ignores
        # same-line repeats and the cache model is actually exercised
        if perfect or not getattr(prefetcher, "repeat_transparent", False):
            ops = compiled.ops_norepeat()

        # local accumulators: floats replicate the reference engine's
        # operation order exactly; integer deltas are flushed at the end
        # (integer addition commutes with the reference's interleaving)
        cycle = self.cycle
        rng = self._rng_state
        instructions = stats.instructions
        fetch_cycles = stats.fetch_cycles
        mispredict_cycles = stats.mispredict_cycles
        stall_cycles = stats.stall_cycles
        calls = 0
        returns = 0
        mispredicted = 0
        line_accesses = 0
        hit_count = 0
        miss_count = 0
        demand_misses = 0
        l2_hits = 0
        memory_fetches = 0

        if (
            not perfect
            and not line_hook
            and not do_call_hook
            and not do_ret_hook
            and not getattr(memsys, "_demand_priority", False)
        ):
            # ---- specialized kernel: no prefetcher hooks at all ----
            # Nothing ever issues a prefetch, so the in-flight map, the
            # arrival heap, and the untouched index stay empty for the
            # whole run; every miss is a demand miss, and the memory
            # system's FIFO-port + L2 arithmetic is inlined.
            l2 = memsys.l2
            l2ways = l2.ways
            l2_nsets = l2.n_sets
            l2_assoc = l2.assoc
            l2_insert = l2.insert
            hit_lat = memsys._hit_latency
            mem_lat = memsys._memory_latency
            occupancy = memsys._occupancy
            port_free = memsys._port_free_at
            transactions = 0
            l2h = 0
            l2m = 0
            for i in range(ev0, ev1):
                op = ops[i]
                if op == OP_EXEC or op == OP_EXEC_REP:
                    nf = n_scaled[i]
                    d = nf * cpi
                    instructions += nf
                    cycle += d
                    fetch_cycles += d
                    if op == OP_EXEC_REP:
                        # resident and MRU by construction
                        line_accesses += 1
                        hit_count += 1
                        continue
                    s = seg_start[i]
                    e = seg_end[i]
                    # whole-event batch: with no prefetcher there are
                    # no arrivals and hits never read the clock, so a
                    # contiguous fully-resident event is pure hits —
                    # one C-level residency count decides it
                    if contig[i]:
                        a0 = lines[s]
                        k = e - s
                        aend = a0 + k
                        if state.count(0, a0, aend) == 0:
                            line_accesses += k
                            hit_count += k
                            stamp[a0:aend] = range(ctr, ctr + k)
                            ctr += k
                            continue
                    for line in lines[s:e]:
                        line_accesses += 1
                        if state[line]:
                            hit_count += 1
                            stamp[line] = ctr
                            ctr += 1
                            continue
                        miss_count += 1
                        demand_misses += 1
                        # inlined MemorySystem.request (non-priority)
                        start_t = (
                            cycle if cycle > port_free else port_free
                        )
                        port_free = start_t + occupancy
                        transactions += 1
                        i2 = (line % l2_nsets) * l2_assoc
                        t2 = i2 + l2_assoc - 1
                        if l2ways[t2] == line:
                            l2h += 1
                            l2_hits += 1
                            completion = start_t + hit_lat
                        else:
                            w = t2 - 1
                            while w >= i2:
                                if l2ways[w] == line:
                                    while w < t2:
                                        l2ways[w] = l2ways[w + 1]
                                        w += 1
                                    l2ways[t2] = line
                                    break
                                w -= 1
                            else:
                                w = -1
                            if w >= 0:
                                l2h += 1
                                l2_hits += 1
                                completion = start_t + hit_lat
                            else:
                                l2m += 1
                                memory_fetches += 1
                                l2_insert(line)
                                completion = start_t + hit_lat + mem_lat
                        stall = completion - cycle
                        cycle += stall
                        stall_cycles += stall
                        # inlined _install(line): known absent
                        idx = (line % n_sets) * assoc
                        iw = idx + assoc
                        w = idx
                        while w < iw and ways[w] >= 0:
                            w += 1
                        if w < iw:
                            ways[w] = line
                        else:
                            vs = idx
                            vmin = stamp[ways[idx]]
                            w = idx + 1
                            while w < iw:
                                sv = stamp[ways[w]]
                                if sv < vmin:
                                    vmin = sv
                                    vs = w
                                w += 1
                            state[ways[vs]] = 0
                            ways[vs] = line
                        state[line] = 1
                        stamp[line] = ctr
                        ctr += 1
                elif op == OP_CALL:
                    calls += 1
                    instructions += overhead_instrs
                    cycle += overhead_cycles
                    fetch_cycles += overhead_cycles
                    rng = (rng * _LCG_MULT + _LCG_ADD) & _LCG_MASK
                    if ((rng >> 32) & 0xFFFFFFFF) / 4294967296.0 >= accuracy:
                        mispredicted += 1
                        cycle += penalty
                        mispredict_cycles += penalty
                    caller = eb[i]
                    if caller >= 0:
                        # inlined RAS push (no hook ever sees entries,
                        # so a plain tuple stands in for RasEntry)
                        rbuf[rtop] = (callsite[i], base[caller], caller)
                        rtop += 1
                        if rtop == rdepth:
                            rtop = 0
                        if rcount < rdepth:
                            rcount += 1
                        else:
                            r_over += 1
                elif op == OP_RET:
                    returns += 1
                    instructions += overhead_instrs
                    cycle += overhead_cycles
                    fetch_cycles += overhead_cycles
                    # inlined RAS pop
                    if rcount == 0:
                        r_under += 1
                        entry = None
                    else:
                        rtop -= 1
                        if rtop < 0:
                            rtop = rdepth - 1
                        rcount -= 1
                        entry = rbuf[rtop]
                        rbuf[rtop] = None
                    actual_caller = eb[i]
                    if not (
                        entry is not None
                        and (
                            actual_caller < 0
                            or entry[2] == actual_caller
                        )
                    ):
                        cycle += penalty
                        mispredict_cycles += penalty
                # OP_SWITCH: hardware state is shared across threads
            memsys._port_free_at = port_free
            memsys._demand_free_at = port_free
            memsys.transactions += transactions
            memsys.l2_hits += l2h
            memsys.l2_misses += l2m
            l2.hits += l2h
            l2.misses += l2m
        else:
            # ---- general kernel ----
            # sequential-prefetch inlining (see module docstring)
            nl = None if perfect else getattr(
                prefetcher, "nl_component", None
            )
            if nl is not None and type(nl) not in (
                NextNLinePrefetcher, RunAheadNLPrefetcher
            ):
                nl = None
            nl_inline = nl is not None
            if nl_inline:
                nl_last = nl._last_line
                nl_lead = nl.seq_lead  # leading-edge issue distance
                nl_fan = getattr(nl, "run_ahead", 0)  # fan-out window
                nl_n = nl.n_lines
                nl_origin = nl.origin
                ps_nl = sprefetch.get(nl_origin)
            # on pure hits a flag-gated hook (tagged NL) is a no-op
            hook_on_hit = (
                line_hook
                and not nl_inline
                and not getattr(prefetcher, "hit_transparent", False)
            )
            # a sub-run that is entirely resident-and-touched can batch
            # when the only per-line work a pure hit performs is the
            # inlined NL automaton (or nothing at all: a hook that
            # skips pure hits never fires inside such a run)
            batch_ok = nl_inline or not hook_on_hit
            # first-touch-transparent batching: the plain-NL automaton
            # (and an absent line hook) is insensitive to whether a hit
            # first-touches a prefetched line, so runs may also batch
            # across resident-*untouched* lines (state 3) with the
            # touch accounting folded in by a find(3) walk; a
            # hit-transparent hook (tagged NL) fires on first touches
            # and must see them per-line
            batch_touch = nl_inline or not line_hook

            # CGP call/return CGHC accesses, inlined (exact class,
            # finite direct-mapped history cache only): the dict cache
            # is flattened into parallel arrays at kernel entry, the
            # dominant first-level probe becomes one tag compare
            # against a precompiled set-index table, and the rare
            # exchange/miss path runs ``FlatCghc.ensure`` on the same
            # arrays.  The dict representation is stale until
            # ``write_back`` at kernel exit; the live image is parked
            # on the cache so mid-run observers (``entry_count``) read
            # current state.
            cgp_inline = False
            if do_call_hook and do_ret_hook:
                from repro.core.cgp import ORIGIN_CGHC, CgpPrefetcher
                from repro.core.cghc import FlatCghc

                if (
                    type(prefetcher) is CgpPrefetcher
                    and not prefetcher.cghc.infinite
                    and prefetcher.cghc.l1.ways == 1
                ):
                    cgp_inline = True
                    cgp_n = prefetcher.lines_per_prefetch
                    cghc = prefetcher.cghc
                    cg_flat = FlatCghc.from_cache(cghc)
                    cghc._live_flat = cg_flat
                    cg_ensure = cg_flat.ensure
                    f1_tag = cg_flat.l1_tag
                    f1_idx = cg_flat.l1_idx
                    f1_len = cg_flat.l1_len
                    f1_seq = cg_flat.l1_seq
                    cg_K = cg_flat.slots
                    cg_lat1 = cg_flat.lat1
                    # fid -> L1 set index of the function's entry-line
                    # tag, compiled once per (layout, CGHC geometry)
                    cg_set1 = _cghc_set_tables(
                        layout, cg_flat.n1, cg_flat.n2
                    )[0]
                    entry_lines = prefetcher._entry
                    # per-layout head table: fid -> one-past-last line
                    # of the CGHC-triggered head-prefetch window, the
                    # min(N, size) clamp folded in at build time
                    cg_head_end = layout.head_extents(cgp_n)
                    cg_origin = ORIGIN_CGHC
                    ps_cg = sprefetch.get(cg_origin)
                    cg_h1 = 0

            # a plain tuple can stand in for RasEntry (index access is
            # identical) unless a real return hook receives the entries
            ras_plain = cgp_inline or not do_ret_hook

            # memory-system inlining is sound only when no real hook can
            # run (a hook could issue through the shared path and would
            # then see a stale port clock)
            inline_mem = (
                not getattr(memsys, "_demand_priority", False)
                and (nl_inline or not line_hook)
                and (cgp_inline or not do_call_hook)
                and (cgp_inline or not do_ret_hook)
            )
            if inline_mem:
                mem_l2 = memsys.l2
                l2ways = mem_l2.ways
                l2_nsets = mem_l2.n_sets
                l2_assoc = mem_l2.assoc
                l2_insert = mem_l2.insert
                m_hit_lat = memsys._hit_latency
                m_mem_lat = memsys._memory_latency
                m_occ = memsys._occupancy
                port_free = memsys._port_free_at
                m_trans = 0
                m_l2h = 0
                m_l2m = 0

            # completion time of the earliest outstanding prefetch,
            # hoisted out of the arrival heap: the per-line delivery
            # gate becomes one float compare
            _inf = float("inf")
            next_due = arrivals[0][0] if arrivals else _inf

            # ---- flat prefetch lifecycle ----
            # When every hook is inlined (no callback can reach the
            # engine's reference-path methods mid-kernel), the
            # in-flight and untouched maps are held as line-indexed
            # arrays for the whole kernel: membership stays the
            # existing ``iflag`` byte / state bit 2, a record is the
            # completion time plus the issuing origin's stats row in
            # two parallel slots, and the canonical dicts are rebuilt
            # at kernel exit — the FlatCghc write-back pattern — so
            # EngineState snapshots and ``_finalize`` never see the
            # flat form.  A record consumed by a delayed hit leaves its
            # heap entry behind, so a drain install additionally
            # requires the popped completion to match the live record
            # (the dict path gets this for free from ``pop``).
            fast_life = (
                (nl_inline or not line_hook)
                and (cgp_inline or not do_call_hook)
                and (cgp_inline or not do_ret_hook)
            )
            if fast_life:
                if_comp = [0.0] * total_lines
                if_ps = [None] * total_lines
                for fl, fr in in_flight.items():
                    if_comp[fl] = fr[0]
                    if_ps[fl] = sprefetch[fr[1]]
                u_ps = [None] * total_lines
                for fl, fo in untouched.items():
                    u_ps[fl] = sprefetch[fo]

            for i in range(ev0, ev1):
                op = ops[i]
                if op == OP_EXEC or op == OP_EXEC_REP:
                    nf = n_scaled[i]
                    d = nf * cpi
                    instructions += nf
                    cycle += d
                    fetch_cycles += d
                    if perfect:
                        continue
                    if op == OP_EXEC_REP and cycle < next_due:
                        # resident, MRU, already touched, prefetcher is
                        # repeat-transparent: pure counters (no stamp
                        # needed — the line holds its set's max stamp)
                        line_accesses += 1
                        hit_count += 1
                        continue
                    s = seg_start[i]
                    e = seg_end[i]
                    if batch_ok and contig[i] and e - s > 1:
                        # ---- whole-event batch attempt ----
                        # One cheap residency count decides it: a
                        # contiguous multi-line event whose lines are
                        # all resident is pure hits — the cycle clock
                        # is frozen across it, residency cannot change
                        # mid-event, and the inlined NL automaton's
                        # issue attempts over the event collapse into
                        # one ascending contiguous target span
                        # (docs/BENCHMARKS.md) walked in the
                        # reference's per-target FIFO-port order.  Due
                        # arrivals are drained up front (exactly what
                        # the per-line loop would do on its first
                        # iteration).  A blocked event — any line
                        # absent, in flight, or (under a first-touch
                        # sensitive hook) untouched — costs only the
                        # count and falls through to the per-line
                        # loop, which re-drains as it goes.
                        if cycle >= next_due:
                            # drain due arrivals (same install as
                            # the per-line loop) so a pending
                            # delivery never blocks batching
                            while arrivals and arrivals[0][0] <= cycle:
                                _arrival, aline = heappop(arrivals)
                                if fast_life:
                                    if (
                                        not iflag[aline]
                                        or if_comp[aline] != _arrival
                                    ):
                                        continue
                                else:
                                    record = in_flight.pop(aline, None)
                                    if record is None:
                                        continue
                                iflag[aline] = 0
                                ai = (aline % n_sets) * assoc
                                aw = ai + assoc
                                w = ai
                                while w < aw and ways[w] >= 0:
                                    w += 1
                                if w < aw:
                                    ways[w] = aline
                                else:
                                    vs = ai
                                    vmin = stamp[ways[ai]]
                                    w = ai + 1
                                    while w < aw:
                                        sv = stamp[ways[w]]
                                        if sv < vmin:
                                            vmin = sv
                                            vs = w
                                        w += 1
                                    victim = ways[vs]
                                    ways[vs] = aline
                                    if state[victim] & 2:
                                        if fast_life:
                                            u_ps[victim].useless += 1
                                        else:
                                            vo = untouched_pop(victim)
                                            sprefetch[vo].useless += 1
                                    state[victim] = 0
                                state[aline] = 3
                                stamp[aline] = ctr
                                ctr += 1
                                if fast_life:
                                    u_ps[aline] = if_ps[aline]
                                else:
                                    untouched[aline] = record[1]
                            next_due = (
                                arrivals[0][0] if arrivals else _inf
                            )
                        a0 = lines[s]
                        k = e - s
                        aend = a0 + k
                        if not state.count(0, a0, aend) and (
                            batch_touch
                            or state.count(1, a0, aend) == k
                        ):
                            line_accesses += k
                            hit_count += k
                            stamp[a0:aend] = range(ctr, ctr + k)
                            ctr += k
                            if batch_touch:
                                # fold in the first touches the
                                # per-line loop would have classified
                                z = state.find(3, a0, aend)
                                while z >= 0:
                                    state[z] = 1
                                    if fast_life:
                                        u_ps[z].pref_hits += 1
                                    else:
                                        sprefetch[
                                            untouched_pop(z)
                                        ].pref_hits += 1
                                    z = state.find(3, z + 1, aend)
                            if not nl_inline:
                                continue
                            # one span for the whole event: continuing
                            # (every line a leading edge), resuming
                            # after a repeat, or a jump whose fan-out
                            # window abuts the following leading-edge
                            # targets (seq_lead == run_ahead + n_lines);
                            # k > 1 makes the span non-empty in every
                            # case
                            if a0 == nl_last + 1:
                                t0 = a0 + nl_lead
                            elif a0 == nl_last:
                                t0 = a0 + 1 + nl_lead
                            else:
                                t0 = a0 + nl_fan + 1
                            t1 = aend + nl_lead
                            nl_last = aend - 1
                            if ps_nl is None:
                                ps_nl = stats.prefetch_origin(nl_origin)
                            t1c = (
                                t1 if t1 <= total_lines else total_lines
                            )
                            if t1c <= t0:
                                ps_nl.out_of_range += t1 - t0
                                continue
                            if t1 > t1c:
                                ps_nl.out_of_range += t1 - t1c
                            squash = t1c - t0
                            tz = state.find(0, t0, t1c)
                            while tz >= 0 and iflag[tz]:
                                tz = state.find(0, tz + 1, t1c)
                            while tz >= 0:
                                squash -= 1
                                if inline_mem:
                                    start_t = (
                                        cycle if cycle > port_free
                                        else port_free
                                    )
                                    port_free = start_t + m_occ
                                    m_trans += 1
                                    i2 = (tz % l2_nsets) * l2_assoc
                                    t2 = i2 + l2_assoc - 1
                                    if l2ways[t2] == tz:
                                        w = t2
                                    else:
                                        w = t2 - 1
                                        while w >= i2:
                                            if l2ways[w] == tz:
                                                while w < t2:
                                                    l2ways[w] = (
                                                        l2ways[w + 1]
                                                    )
                                                    w += 1
                                                l2ways[t2] = tz
                                                break
                                            w -= 1
                                        else:
                                            w = -1
                                    if w >= 0:
                                        m_l2h += 1
                                        completion = start_t + m_hit_lat
                                    else:
                                        m_l2m += 1
                                        l2_insert(tz)
                                        completion = (
                                            start_t
                                            + m_hit_lat
                                            + m_mem_lat
                                        )
                                else:
                                    completion, _mem = memsys_request(
                                        tz, cycle, is_prefetch=True
                                    )
                                if fast_life:
                                    if_comp[tz] = completion
                                    if_ps[tz] = ps_nl
                                else:
                                    in_flight[tz] = (completion, nl_origin)
                                iflag[tz] = 1
                                heappush(arrivals, (completion, tz))
                                if completion < next_due:
                                    next_due = completion
                                ps_nl.issued += 1
                                tz = state.find(0, tz + 1, t1c)
                                while tz >= 0 and iflag[tz]:
                                    tz = state.find(0, tz + 1, t1c)
                            ps_nl.squashed += squash
                            continue
                        elif not nl_inline and batch_touch:
                            # ---- chunked scan fallback ----
                            # The event is blocked somewhere, but with
                            # no per-line automaton every *resident*
                            # stretch is still pure hits: the clock
                            # only moves at a blocking line (absent or
                            # in flight), so alternate C-scanned
                            # resident chunks with per-line handling
                            # of each blocking line.  A stall there
                            # can mature arrivals, so due deliveries
                            # are drained before rescanning — exactly
                            # the per-line loop's iteration order.
                            pos = a0
                            while True:
                                z = state.find(0, pos, aend)
                                if z < 0:
                                    z = aend
                                if z > pos:
                                    kc = z - pos
                                    line_accesses += kc
                                    hit_count += kc
                                    stamp[pos:z] = range(ctr, ctr + kc)
                                    ctr += kc
                                    y = state.find(3, pos, z)
                                    while y >= 0:
                                        state[y] = 1
                                        if fast_life:
                                            u_ps[y].pref_hits += 1
                                        else:
                                            sprefetch[
                                                untouched_pop(y)
                                            ].pref_hits += 1
                                        y = state.find(3, y + 1, z)
                                if z >= aend:
                                    break
                                # blocking line: the per-line miss
                                # path, verbatim
                                line_accesses += 1
                                miss_count += 1
                                if iflag[z]:
                                    iflag[z] = 0
                                    if fast_life:
                                        arrival = if_comp[z]
                                        if_ps[z].delayed_hits += 1
                                    else:
                                        arrival, origin0 = (
                                            in_flight.pop(z)
                                        )
                                        sprefetch[
                                            origin0
                                        ].delayed_hits += 1
                                    stall = arrival - cycle
                                    if stall > 0:
                                        cycle += stall
                                        stall_cycles += stall
                                else:
                                    demand_misses += 1
                                    if inline_mem:
                                        start_t = (
                                            cycle if cycle > port_free
                                            else port_free
                                        )
                                        port_free = start_t + m_occ
                                        m_trans += 1
                                        i2 = (z % l2_nsets) * l2_assoc
                                        t2 = i2 + l2_assoc - 1
                                        if l2ways[t2] == z:
                                            w = t2
                                        else:
                                            w = t2 - 1
                                            while w >= i2:
                                                if l2ways[w] == z:
                                                    while w < t2:
                                                        l2ways[w] = (
                                                            l2ways[w + 1]
                                                        )
                                                        w += 1
                                                    l2ways[t2] = z
                                                    break
                                                w -= 1
                                            else:
                                                w = -1
                                        if w >= 0:
                                            m_l2h += 1
                                            l2_hits += 1
                                            completion = (
                                                start_t + m_hit_lat
                                            )
                                        else:
                                            m_l2m += 1
                                            memory_fetches += 1
                                            l2_insert(z)
                                            completion = (
                                                start_t
                                                + m_hit_lat
                                                + m_mem_lat
                                            )
                                    else:
                                        completion, from_mem = (
                                            memsys_request(
                                                z, cycle,
                                                is_prefetch=False,
                                            )
                                        )
                                        if from_mem:
                                            memory_fetches += 1
                                        else:
                                            l2_hits += 1
                                    stall = completion - cycle
                                    cycle += stall
                                    stall_cycles += stall
                                # inlined _install(z): known absent
                                idx = (z % n_sets) * assoc
                                iw = idx + assoc
                                w = idx
                                while w < iw and ways[w] >= 0:
                                    w += 1
                                if w < iw:
                                    ways[w] = z
                                else:
                                    vs = idx
                                    vmin = stamp[ways[idx]]
                                    w = idx + 1
                                    while w < iw:
                                        sv = stamp[ways[w]]
                                        if sv < vmin:
                                            vmin = sv
                                            vs = w
                                        w += 1
                                    victim = ways[vs]
                                    ways[vs] = z
                                    if state[victim] & 2:
                                        if fast_life:
                                            u_ps[victim].useless += 1
                                        else:
                                            vo = untouched_pop(victim)
                                            sprefetch[vo].useless += 1
                                    state[victim] = 0
                                state[z] = 1
                                stamp[z] = ctr
                                ctr += 1
                                pos = z + 1
                                if pos >= aend:
                                    break
                                if cycle >= next_due:
                                    while (
                                        arrivals
                                        and arrivals[0][0] <= cycle
                                    ):
                                        _arrival, aline = heappop(
                                            arrivals
                                        )
                                        if fast_life:
                                            if (
                                                not iflag[aline]
                                                or if_comp[aline]
                                                != _arrival
                                            ):
                                                continue
                                        else:
                                            record = in_flight.pop(
                                                aline, None
                                            )
                                            if record is None:
                                                continue
                                        iflag[aline] = 0
                                        ai = (aline % n_sets) * assoc
                                        aw = ai + assoc
                                        w = ai
                                        while w < aw and ways[w] >= 0:
                                            w += 1
                                        if w < aw:
                                            ways[w] = aline
                                        else:
                                            vs = ai
                                            vmin = stamp[ways[ai]]
                                            w = ai + 1
                                            while w < aw:
                                                sv = stamp[ways[w]]
                                                if sv < vmin:
                                                    vmin = sv
                                                    vs = w
                                                w += 1
                                            victim = ways[vs]
                                            ways[vs] = aline
                                            if state[victim] & 2:
                                                if fast_life:
                                                    u_ps[
                                                        victim
                                                    ].useless += 1
                                                else:
                                                    vo = untouched_pop(
                                                        victim
                                                    )
                                                    sprefetch[
                                                        vo
                                                    ].useless += 1
                                            state[victim] = 0
                                        state[aline] = 3
                                        stamp[aline] = ctr
                                        ctr += 1
                                        if fast_life:
                                            u_ps[aline] = if_ps[aline]
                                        else:
                                            untouched[aline] = record[1]
                                    next_due = (
                                        arrivals[0][0]
                                        if arrivals else _inf
                                    )
                            continue
                    for line in lines[s:e]:
                        # ---- inlined reference _access ----
                        if cycle >= next_due:
                            while arrivals and arrivals[0][0] <= cycle:
                                _arrival, aline = heappop(arrivals)
                                if fast_life:
                                    if (
                                        not iflag[aline]
                                        or if_comp[aline] != _arrival
                                    ):
                                        continue
                                else:
                                    record = in_flight.pop(aline, None)
                                    if record is None:
                                        continue
                                iflag[aline] = 0
                                # inlined _install(aline, origin):
                                # in flight, so known absent
                                ai = (aline % n_sets) * assoc
                                aw = ai + assoc
                                w = ai
                                while w < aw and ways[w] >= 0:
                                    w += 1
                                if w < aw:
                                    ways[w] = aline
                                else:
                                    vs = ai
                                    vmin = stamp[ways[ai]]
                                    w = ai + 1
                                    while w < aw:
                                        sv = stamp[ways[w]]
                                        if sv < vmin:
                                            vmin = sv
                                            vs = w
                                        w += 1
                                    victim = ways[vs]
                                    ways[vs] = aline
                                    if state[victim] & 2:
                                        if fast_life:
                                            u_ps[victim].useless += 1
                                        else:
                                            vo = untouched_pop(victim)
                                            sprefetch[vo].useless += 1
                                    state[victim] = 0
                                state[aline] = 3  # resident+untouched
                                stamp[aline] = ctr
                                ctr += 1
                                if fast_life:
                                    u_ps[aline] = if_ps[aline]
                                else:
                                    untouched[aline] = record[1]
                            next_due = (
                                arrivals[0][0] if arrivals else _inf
                            )
                        line_accesses += 1
                        if state[line]:
                            # resident: refresh the stamp (= reference
                            # promote-to-MRU), classify the touch
                            hit_count += 1
                            stamp[line] = ctr
                            ctr += 1
                            missed = False
                            if state[line] & 2:
                                state[line] = 1
                                if fast_life:
                                    u_ps[line].pref_hits += 1
                                else:
                                    sprefetch[
                                        untouched_pop(line)
                                    ].pref_hits += 1
                                first_touch = True
                            else:
                                first_touch = False
                        else:
                            miss_count += 1
                            if iflag[line]:
                                # delayed hit: stall residual latency
                                iflag[line] = 0
                                if fast_life:
                                    arrival = if_comp[line]
                                    if_ps[line].delayed_hits += 1
                                else:
                                    arrival, origin0 = in_flight.pop(line)
                                    sprefetch[origin0].delayed_hits += 1
                                stall = arrival - cycle
                                if stall > 0:
                                    cycle += stall
                                    stall_cycles += stall
                                first_touch = True
                                missed = False
                            else:
                                # demand miss
                                demand_misses += 1
                                if inline_mem:
                                    # inlined MemorySystem.request
                                    start_t = (
                                        cycle if cycle > port_free
                                        else port_free
                                    )
                                    port_free = start_t + m_occ
                                    m_trans += 1
                                    i2 = (line % l2_nsets) * l2_assoc
                                    t2 = i2 + l2_assoc - 1
                                    if l2ways[t2] == line:
                                        w = t2
                                    else:
                                        w = t2 - 1
                                        while w >= i2:
                                            if l2ways[w] == line:
                                                while w < t2:
                                                    l2ways[w] = (
                                                        l2ways[w + 1]
                                                    )
                                                    w += 1
                                                l2ways[t2] = line
                                                break
                                            w -= 1
                                        else:
                                            w = -1
                                    if w >= 0:
                                        m_l2h += 1
                                        l2_hits += 1
                                        completion = start_t + m_hit_lat
                                    else:
                                        m_l2m += 1
                                        memory_fetches += 1
                                        l2_insert(line)
                                        completion = (
                                            start_t + m_hit_lat + m_mem_lat
                                        )
                                else:
                                    completion, from_mem = memsys_request(
                                        line, cycle, is_prefetch=False
                                    )
                                    if from_mem:
                                        memory_fetches += 1
                                    else:
                                        l2_hits += 1
                                stall = completion - cycle
                                cycle += stall
                                stall_cycles += stall
                                missed = True
                                first_touch = False
                            # inlined _install(line): known absent
                            idx = (line % n_sets) * assoc
                            iw = idx + assoc
                            w = idx
                            while w < iw and ways[w] >= 0:
                                w += 1
                            if w < iw:
                                ways[w] = line
                            else:
                                vs = idx
                                vmin = stamp[ways[idx]]
                                w = idx + 1
                                while w < iw:
                                    sv = stamp[ways[w]]
                                    if sv < vmin:
                                        vmin = sv
                                        vs = w
                                    w += 1
                                victim = ways[vs]
                                ways[vs] = line
                                if state[victim] & 2:
                                    if fast_life:
                                        u_ps[victim].useless += 1
                                    else:
                                        vo = untouched_pop(victim)
                                        sprefetch[vo].useless += 1
                                state[victim] = 0
                            state[line] = 1
                            stamp[line] = ctr
                            ctr += 1
                        # ---- prefetcher hook ----
                        if nl_inline:
                            if line == nl_last + 1:
                                # leading edge: issue line + lead
                                pl = line + nl_lead
                                if ps_nl is None:
                                    ps_nl = stats.prefetch_origin(
                                        nl_origin
                                    )
                                if pl < 0 or pl >= total_lines:
                                    ps_nl.out_of_range += 1
                                elif state[pl] or iflag[pl]:
                                    ps_nl.squashed += 1
                                else:
                                    if inline_mem:
                                        start_t = (
                                            cycle if cycle > port_free
                                            else port_free
                                        )
                                        port_free = start_t + m_occ
                                        m_trans += 1
                                        i2 = (pl % l2_nsets) * l2_assoc
                                        t2 = i2 + l2_assoc - 1
                                        if l2ways[t2] == pl:
                                            w = t2
                                        else:
                                            w = t2 - 1
                                            while w >= i2:
                                                if l2ways[w] == pl:
                                                    while w < t2:
                                                        l2ways[w] = (
                                                            l2ways[w + 1]
                                                        )
                                                        w += 1
                                                    l2ways[t2] = pl
                                                    break
                                                w -= 1
                                            else:
                                                w = -1
                                        if w >= 0:
                                            m_l2h += 1
                                            completion = (
                                                start_t + m_hit_lat
                                            )
                                        else:
                                            m_l2m += 1
                                            l2_insert(pl)
                                            completion = (
                                                start_t
                                                + m_hit_lat
                                                + m_mem_lat
                                            )
                                    else:
                                        completion, _mem = memsys_request(
                                            pl, cycle, is_prefetch=True
                                        )
                                    if fast_life:
                                        if_comp[pl] = completion
                                        if_ps[pl] = ps_nl
                                    else:
                                        in_flight[pl] = (
                                            completion, nl_origin
                                        )
                                    iflag[pl] = 1
                                    heappush(arrivals, (completion, pl))
                                    if completion < next_due:
                                        next_due = completion
                                    ps_nl.issued += 1
                                nl_last = line
                            elif line != nl_last:
                                # jump: fan out over the full window
                                # [t0, t1) as one batched span walk.
                                # No line access happens inside a fan,
                                # so residency/in-flight state is
                                # frozen while it runs: ``find`` jumps
                                # straight to the targets that actually
                                # issue (ascending order IS the
                                # reference's per-target FIFO port
                                # order) and every skipped in-range
                                # target squashes — resident or in
                                # flight (``iflag``)
                                if ps_nl is None:
                                    ps_nl = stats.prefetch_origin(
                                        nl_origin
                                    )
                                t0 = line + nl_fan + 1
                                t1 = t0 + nl_n
                                t1c = (
                                    t1 if t1 <= total_lines
                                    else total_lines
                                )
                                if t1c <= t0:
                                    ps_nl.out_of_range += nl_n
                                else:
                                    if t1 > t1c:
                                        ps_nl.out_of_range += t1 - t1c
                                    squash = t1c - t0
                                    tz = state.find(0, t0, t1c)
                                    while tz >= 0 and iflag[tz]:
                                        tz = state.find(
                                            0, tz + 1, t1c
                                        )
                                    while tz >= 0:
                                        squash -= 1
                                        if inline_mem:
                                            start_t = (
                                                cycle
                                                if cycle > port_free
                                                else port_free
                                            )
                                            port_free = (
                                                start_t + m_occ
                                            )
                                            m_trans += 1
                                            i2 = (
                                                (tz % l2_nsets)
                                                * l2_assoc
                                            )
                                            t2 = i2 + l2_assoc - 1
                                            if l2ways[t2] == tz:
                                                w = t2
                                            else:
                                                w = t2 - 1
                                                while w >= i2:
                                                    if (
                                                        l2ways[w]
                                                        == tz
                                                    ):
                                                        while w < t2:
                                                            l2ways[
                                                                w
                                                            ] = l2ways[
                                                                w + 1
                                                            ]
                                                            w += 1
                                                        l2ways[
                                                            t2
                                                        ] = tz
                                                        break
                                                    w -= 1
                                                else:
                                                    w = -1
                                            if w >= 0:
                                                m_l2h += 1
                                                completion = (
                                                    start_t
                                                    + m_hit_lat
                                                )
                                            else:
                                                m_l2m += 1
                                                l2_insert(tz)
                                                completion = (
                                                    start_t
                                                    + m_hit_lat
                                                    + m_mem_lat
                                                )
                                        else:
                                            completion, _mem = (
                                                memsys_request(
                                                    tz, cycle,
                                                    is_prefetch=True,
                                                )
                                            )
                                        if fast_life:
                                            if_comp[tz] = completion
                                            if_ps[tz] = ps_nl
                                        else:
                                            in_flight[tz] = (
                                                completion, nl_origin
                                            )
                                        iflag[tz] = 1
                                        heappush(
                                            arrivals,
                                            (completion, tz),
                                        )
                                        if completion < next_due:
                                            next_due = completion
                                        ps_nl.issued += 1
                                        tz = state.find(
                                            0, tz + 1, t1c
                                        )
                                        while tz >= 0 and iflag[tz]:
                                            tz = state.find(
                                                0, tz + 1, t1c
                                            )
                                    ps_nl.squashed += squash
                                nl_last = line
                            # line == nl_last: automaton no-op
                        elif line_hook and (
                            hook_on_hit or missed or first_touch
                        ):
                            self.cycle = cycle
                            self._ctr = ctr
                            self.last_access_missed = missed
                            self.last_access_first_touch = first_touch
                            prefetcher.on_line_access(line, self)
                            cycle = self.cycle
                            ctr = self._ctr
                            next_due = (
                                arrivals[0][0] if arrivals else _inf
                            )
                elif op == OP_CALL:
                    calls += 1
                    instructions += overhead_instrs
                    cycle += overhead_cycles
                    fetch_cycles += overhead_cycles
                    rng = (rng * _LCG_MULT + _LCG_ADD) & _LCG_MASK
                    predicted = (
                        ((rng >> 32) & 0xFFFFFFFF) / 4294967296.0
                        < accuracy
                    )
                    if not predicted:
                        mispredicted += 1
                        cycle += penalty
                        mispredict_cycles += penalty
                    caller = eb[i]
                    if caller >= 0:
                        # inlined RAS push
                        if ras_plain:
                            rbuf[rtop] = (
                                callsite[i], base[caller], caller
                            )
                        else:
                            rbuf[rtop] = RasEntry(
                                callsite[i], base[caller], caller
                            )
                        rtop += 1
                        if rtop == rdepth:
                            rtop = 0
                        if rcount < rdepth:
                            rcount += 1
                        else:
                            r_over += 1
                    if cgp_inline:
                        # ---- inlined CgpPrefetcher.on_call ----
                        if predicted:
                            callee = ea[i]
                            # prefetch access keyed by the target
                            tag = entry_lines[callee]
                            cs1 = cg_set1[callee]
                            if f1_tag[cs1] == tag:
                                cg_h1 += 1
                                latency = cg_lat1
                            else:
                                latency = cg_ensure(tag)[0]
                            if f1_len[cs1]:
                                # prefetch_function_head(first_callee)
                                first = f1_seq[cs1 * cg_K]
                                if ps_cg is None:
                                    ps_cg = stats.prefetch_origin(
                                        cg_origin
                                    )
                                start2 = base[first]
                                end2 = cg_head_end[first]
                                now2 = cycle + latency + 1
                                # batched head walk (same argument as
                                # the NL fan): no line access happens
                                # inside the window, so residency is
                                # frozen while it runs — ``find`` jumps
                                # straight to the targets that issue,
                                # every skipped line squashes (head
                                # lines are always in range, the
                                # ``head_extents`` clamp), and
                                # ascending order IS the reference's
                                # per-target FIFO-port issue order
                                squash = end2 - start2
                                pl = state.find(0, start2, end2)
                                while pl >= 0 and iflag[pl]:
                                    pl = state.find(0, pl + 1, end2)
                                while pl >= 0:
                                    squash -= 1
                                    if inline_mem:
                                        start_t = (
                                            now2
                                            if now2 > port_free
                                            else port_free
                                        )
                                        port_free = start_t + m_occ
                                        m_trans += 1
                                        i2 = (
                                            (pl % l2_nsets)
                                            * l2_assoc
                                        )
                                        t2 = i2 + l2_assoc - 1
                                        if l2ways[t2] == pl:
                                            w = t2
                                        else:
                                            w = t2 - 1
                                            while w >= i2:
                                                if l2ways[w] == pl:
                                                    while w < t2:
                                                        l2ways[w] = (
                                                            l2ways[
                                                                w + 1
                                                            ]
                                                        )
                                                        w += 1
                                                    l2ways[t2] = pl
                                                    break
                                                w -= 1
                                            else:
                                                w = -1
                                        if w >= 0:
                                            m_l2h += 1
                                            completion = (
                                                start_t + m_hit_lat
                                            )
                                        else:
                                            m_l2m += 1
                                            l2_insert(pl)
                                            completion = (
                                                start_t
                                                + m_hit_lat
                                                + m_mem_lat
                                            )
                                    else:
                                        completion, _mem = (
                                            memsys_request(
                                                pl, now2,
                                                is_prefetch=True,
                                            )
                                        )
                                    if fast_life:
                                        if_comp[pl] = completion
                                        if_ps[pl] = ps_cg
                                    else:
                                        in_flight[pl] = (
                                            completion, cg_origin
                                        )
                                    iflag[pl] = 1
                                    heappush(
                                        arrivals,
                                        (completion, pl),
                                    )
                                    if completion < next_due:
                                        next_due = completion
                                    ps_cg.issued += 1
                                    pl = state.find(0, pl + 1, end2)
                                    while pl >= 0 and iflag[pl]:
                                        pl = state.find(0, pl + 1, end2)
                                ps_cg.squashed += squash
                            # update access keyed by the caller
                            if caller >= 0:
                                tag = entry_lines[caller]
                                cs1 = cg_set1[caller]
                                if f1_tag[cs1] == tag:
                                    cg_h1 += 1
                                else:
                                    cg_ensure(tag)
                                # inlined CghcEntry.record_call
                                slot = f1_idx[cs1] - 1
                                if slot < cg_K:
                                    f1_seq[cs1 * cg_K + slot] = callee
                                    if slot == f1_len[cs1]:
                                        f1_len[cs1] = slot + 1
                                    f1_idx[cs1] = slot + 2
                    elif do_call_hook:
                        self.cycle = cycle
                        self._rng_state = rng
                        prefetcher.on_call(caller, ea[i], predicted, self)
                        cycle = self.cycle
                        rng = self._rng_state
                        next_due = arrivals[0][0] if arrivals else _inf
                elif op == OP_RET:
                    returns += 1
                    instructions += overhead_instrs
                    cycle += overhead_cycles
                    fetch_cycles += overhead_cycles
                    # inlined RAS pop
                    if rcount == 0:
                        r_under += 1
                        entry = None
                    else:
                        rtop -= 1
                        if rtop < 0:
                            rtop = rdepth - 1
                        rcount -= 1
                        entry = rbuf[rtop]
                        rbuf[rtop] = None
                    actual_caller = eb[i]
                    predicted = entry is not None and (
                        actual_caller < 0
                        or entry[2] == actual_caller
                    )
                    if not predicted:
                        cycle += penalty
                        mispredict_cycles += penalty
                    if cgp_inline:
                        # ---- inlined CgpPrefetcher.on_return ----
                        if predicted:
                            if entry is not None:
                                # prefetch access keyed by the caller's
                                # start address from the modified RAS
                                # (entry[1] == base[entry[2]], so the
                                # set table applies)
                                tag = entry[1]
                                cs1 = cg_set1[entry[2]]
                                if f1_tag[cs1] == tag:
                                    cg_h1 += 1
                                    latency = cg_lat1
                                else:
                                    latency = cg_ensure(tag)[0]
                                # inlined CghcEntry.predicted_next
                                slot = f1_idx[cs1] - 1
                                if slot < f1_len[cs1]:
                                    first = f1_seq[cs1 * cg_K + slot]
                                    if ps_cg is None:
                                        ps_cg = stats.prefetch_origin(
                                            cg_origin
                                        )
                                    start2 = base[first]
                                    end2 = cg_head_end[first]
                                    now2 = cycle + latency + 1
                                    # batched head walk — see the
                                    # on_call twin above
                                    squash = end2 - start2
                                    pl = state.find(0, start2, end2)
                                    while pl >= 0 and iflag[pl]:
                                        pl = state.find(
                                            0, pl + 1, end2
                                        )
                                    while pl >= 0:
                                        squash -= 1
                                        if inline_mem:
                                            start_t = (
                                                now2
                                                if now2 > port_free
                                                else port_free
                                            )
                                            port_free = (
                                                start_t + m_occ
                                            )
                                            m_trans += 1
                                            i2 = (
                                                (pl % l2_nsets)
                                                * l2_assoc
                                            )
                                            t2 = i2 + l2_assoc - 1
                                            if l2ways[t2] == pl:
                                                w = t2
                                            else:
                                                w = t2 - 1
                                                while w >= i2:
                                                    if (
                                                        l2ways[w]
                                                        == pl
                                                    ):
                                                        while w < t2:
                                                            l2ways[
                                                                w
                                                            ] = l2ways[
                                                                w + 1
                                                            ]
                                                            w += 1
                                                        l2ways[
                                                            t2
                                                        ] = pl
                                                        break
                                                    w -= 1
                                                else:
                                                    w = -1
                                            if w >= 0:
                                                m_l2h += 1
                                                completion = (
                                                    start_t
                                                    + m_hit_lat
                                                )
                                            else:
                                                m_l2m += 1
                                                l2_insert(pl)
                                                completion = (
                                                    start_t
                                                    + m_hit_lat
                                                    + m_mem_lat
                                                )
                                        else:
                                            completion, _mem = (
                                                memsys_request(
                                                    pl, now2,
                                                    is_prefetch=True,
                                                )
                                            )
                                        if fast_life:
                                            if_comp[pl] = completion
                                            if_ps[pl] = ps_cg
                                        else:
                                            in_flight[pl] = (
                                                completion, cg_origin
                                            )
                                        iflag[pl] = 1
                                        heappush(
                                            arrivals,
                                            (completion, pl),
                                        )
                                        if completion < next_due:
                                            next_due = completion
                                        ps_cg.issued += 1
                                        pl = state.find(0, pl + 1, end2)
                                        while pl >= 0 and iflag[pl]:
                                            pl = state.find(
                                                0, pl + 1, end2
                                            )
                                    ps_cg.squashed += squash
                            # update access keyed by the returner
                            ret_fid = ea[i]
                            tag = entry_lines[ret_fid]
                            cs1 = cg_set1[ret_fid]
                            if f1_tag[cs1] == tag:
                                cg_h1 += 1
                            else:
                                cg_ensure(tag)
                            # inlined CghcEntry.reset_index
                            f1_idx[cs1] = 1
                    elif do_ret_hook:
                        self.cycle = cycle
                        self._rng_state = rng
                        prefetcher.on_return(ea[i], entry, predicted, self)
                        cycle = self.cycle
                        rng = self._rng_state
                        next_due = arrivals[0][0] if arrivals else _inf
                # OP_SWITCH: hardware state is shared across threads

            if fast_life:
                # restore the canonical dict maps from the flat arrays
                # (membership is the iflag byte / state bit 2; the
                # stats rows map back to their origin keys) before
                # anything outside the kernel — EngineState capture,
                # ``_finalize``, the reference-path methods — can
                # observe them
                rev = {id(row): org for org, row in sprefetch.items()}
                in_flight.clear()
                fl = iflag.find(1)
                while fl >= 0:
                    in_flight[fl] = (if_comp[fl], rev[id(if_ps[fl])])
                    fl = iflag.find(1, fl + 1)
                untouched.clear()
                fl = state.find(3)
                while fl >= 0:
                    untouched[fl] = rev[id(u_ps[fl])]
                    fl = state.find(3, fl + 1)
            if nl_inline:
                nl._last_line = nl_last
            if cgp_inline:
                # restore the canonical dict representation (folding in
                # the counter deltas) before anything outside the
                # kernel can observe the cache
                cg_flat.l1_hits += cg_h1
                cg_flat.write_back(cghc)
                cghc._live_flat = None
            if inline_mem:
                memsys._port_free_at = port_free
                memsys._demand_free_at = port_free
                memsys.transactions += m_trans
                memsys.l2_hits += m_l2h
                memsys.l2_misses += m_l2m
                mem_l2.hits += m_l2h
                mem_l2.misses += m_l2m

        ras_obj._top = rtop
        ras_obj._count = rcount
        ras_obj.overflows += r_over
        ras_obj.underflows += r_under
        self.cycle = cycle
        self._rng_state = rng
        self._ctr = ctr
        stats.instructions = instructions
        stats.fetch_cycles = fetch_cycles
        stats.mispredict_cycles = mispredict_cycles
        stats.stall_cycles = stall_cycles
        stats.calls += calls
        stats.returns += returns
        stats.mispredicted_calls += mispredicted
        stats.line_accesses += line_accesses
        stats.demand_misses += demand_misses
        stats.l2_hits += l2_hits
        stats.memory_fetches += memory_fetches
        l1.hits += hit_count
        l1.misses += miss_count

        self._rebuild_l1_order()
        if finalize:
            self._finalize()
        return stats
