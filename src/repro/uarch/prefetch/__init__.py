"""Prefetchers: none, next-N-line, run-ahead NL (CGP lives in repro.core)."""

from repro.uarch.prefetch.base import NO_PREFETCH, Prefetcher
from repro.uarch.prefetch.nl import (
    NextNLinePrefetcher,
    RunAheadNLPrefetcher,
    TaggedNLPrefetcher,
)

__all__ = [
    "NO_PREFETCH",
    "NextNLinePrefetcher",
    "Prefetcher",
    "RunAheadNLPrefetcher",
    "TaggedNLPrefetcher",
]
