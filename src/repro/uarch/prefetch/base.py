"""Prefetcher interface.

The fetch engine calls three hooks:

* ``on_line_access(line, engine)`` — a distinct I-cache line was fetched,
* ``on_call(caller_fid, callee_fid, predicted, engine)`` — a call
  retired; ``predicted`` is False when the branch predictor missed the
  target (prefetchers keyed off the predictor see nothing useful then),
* ``on_return(returning_fid, ras_entry, predicted, engine)`` — a return
  retired; ``ras_entry`` is the popped modified-RAS entry (or None).

Prefetchers issue through ``engine.issue_prefetch(line, origin, delay)``
and ``engine.prefetch_function_head(fid, n_lines, origin, delay)``.
"""

from __future__ import annotations


class Prefetcher:
    """Base: no prefetching (the paper's O5 / OM-only baselines)."""

    name = "none"

    def reset(self):
        """Clear any internal state between runs."""

    def on_line_access(self, line, engine):
        pass

    def on_call(self, caller_fid, callee_fid, predicted, engine):
        pass

    def on_return(self, returning_fid, ras_entry, predicted, engine):
        pass


NO_PREFETCH = Prefetcher()
