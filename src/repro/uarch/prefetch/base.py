"""Prefetcher interface.

The fetch engine calls three hooks:

* ``on_line_access(line, engine)`` — a distinct I-cache line was fetched,
* ``on_call(caller_fid, callee_fid, predicted, engine)`` — a call
  retired; ``predicted`` is False when the branch predictor missed the
  target (prefetchers keyed off the predictor see nothing useful then),
* ``on_return(returning_fid, ras_entry, predicted, engine)`` — a return
  retired; ``ras_entry`` is the popped modified-RAS entry (or None).

Prefetchers issue through ``engine.issue_prefetch(line, origin, delay)``
and ``engine.prefetch_function_head(fid, n_lines, origin, delay)``.
"""

from __future__ import annotations

import copy


class Prefetcher:
    """Base: no prefetching (the paper's O5 / OM-only baselines)."""

    name = "none"

    #: Contract flag for the optimized replay core's repeat fast path:
    #: True promises that ``on_line_access`` is a no-op (no prefetches,
    #: no externally visible state change) when called for the same line
    #: as the immediately preceding access with
    #: ``engine.last_access_missed`` and ``engine.last_access_first_touch``
    #: both False.  All shipped prefetchers satisfy this (sequential
    #: prefetchers key off line *changes*; tagged ones off miss/first
    #: touch).  Subclasses that act on every access, including exact
    #: repeats, must set this to False to keep the fast engine
    #: bit-identical to the reference engine.
    repeat_transparent = True

    def reset(self):
        """Clear any internal state between runs."""

    def clone_state(self):
        """Independent copy carrying all mutable state, for warm-start
        snapshots (:mod:`repro.uarch.shard`).  The base implementation
        deep-copies, which is always correct; stateful subclasses
        override with compact type-exact copies and must fall back to
        ``super().clone_state()`` for subclasses they do not know."""
        if type(self) is Prefetcher:
            return self  # stateless base: sharing is exact
        return copy.deepcopy(self)

    def on_line_access(self, line, engine):
        pass

    def on_call(self, caller_fid, callee_fid, predicted, engine):
        pass

    def on_return(self, returning_fid, ras_entry, predicted, engine):
        pass


NO_PREFETCH = Prefetcher()
