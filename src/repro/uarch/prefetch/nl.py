"""Next-N-line prefetching (Smith & Hsu), §2 of the paper.

On each fetch of line L, lines L+1 .. L+N are prefetched unless already
present.  For a sequential fetch stream only the leading edge (L+N) is
new — the rest were issued on earlier lines — so the implementation
fast-paths the +1 step and fans out fully only after a jump.  This is
behaviourally identical to issuing all N every time (the others would be
squashed) but much cheaper to simulate.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.uarch.prefetch.base import Prefetcher


class NextNLinePrefetcher(Prefetcher):
    """Prefetch the next N sequential lines on every line fetch."""

    def __init__(self, n_lines, origin="nl"):
        if n_lines <= 0:
            raise ConfigError("NL degree must be positive")
        self.n_lines = n_lines
        self.origin = origin
        self.name = f"NL_{n_lines}"
        self._last_line = -2
        # Optimized-engine contract: on_line_access is exactly the
        # sequential-NL automaton — on line == _last_line + 1 it issues
        # one prefetch for line + seq_lead, on a repeat it does nothing.
        # The fast engine inlines that common case.
        self.nl_component = self
        self.seq_lead = n_lines

    def reset(self):
        self._last_line = -2

    def clone_state(self):
        if type(self) is not NextNLinePrefetcher:
            return super().clone_state()
        dup = NextNLinePrefetcher(self.n_lines, origin=self.origin)
        dup.name = self.name
        dup._last_line = self._last_line
        return dup

    def on_line_access(self, line, engine):
        if line == self._last_line + 1:
            engine.issue_prefetch(line + self.n_lines, self.origin)
        elif line != self._last_line:
            issue = engine.issue_prefetch
            for step in range(1, self.n_lines + 1):
                issue(line + step, self.origin)
        self._last_line = line


class RunAheadNLPrefetcher(Prefetcher):
    """The run-ahead NL variant the paper evaluates and rejects (§5.6):
    prefetch N lines starting M lines beyond the current line."""

    def __init__(self, n_lines, run_ahead, origin="nl"):
        if n_lines <= 0 or run_ahead < 0:
            raise ConfigError("bad run-ahead NL geometry")
        self.n_lines = n_lines
        self.run_ahead = run_ahead
        self.origin = origin
        self.name = f"RA-NL_{n_lines}+{run_ahead}"
        self._last_line = -2
        # fast-engine inline contract (see NextNLinePrefetcher)
        self.nl_component = self
        self.seq_lead = run_ahead + n_lines

    def reset(self):
        self._last_line = -2

    def clone_state(self):
        if type(self) is not RunAheadNLPrefetcher:
            return super().clone_state()
        dup = RunAheadNLPrefetcher(
            self.n_lines, self.run_ahead, origin=self.origin
        )
        dup.name = self.name
        dup._last_line = self._last_line
        return dup

    def on_line_access(self, line, engine):
        if line == self._last_line + 1:
            engine.issue_prefetch(
                line + self.run_ahead + self.n_lines, self.origin
            )
        elif line != self._last_line:
            issue = engine.issue_prefetch
            base = line + self.run_ahead
            for step in range(1, self.n_lines + 1):
                issue(base + step, self.origin)
        self._last_line = line


class TaggedNLPrefetcher(Prefetcher):
    """Tagged sequential prefetching (Smith's classic refinement).

    The next N lines are prefetched only on a demand miss or on the
    first reference to a previously prefetched line (the tag bit), which
    throttles the useless-prefetch traffic of plain always-prefetch NL
    at some cost in coverage.  Included as a related-work baseline; the
    paper evaluates plain NL.
    """

    #: Optimized-engine contract: on_line_access is a no-op whenever
    #: last_access_missed and last_access_first_touch are both False, so
    #: the fast engine may skip the call on guaranteed hits.
    hit_transparent = True

    def __init__(self, n_lines, origin="nl"):
        if n_lines <= 0:
            raise ConfigError("tagged NL degree must be positive")
        self.n_lines = n_lines
        self.origin = origin
        self.name = f"T-NL_{n_lines}"

    def on_line_access(self, line, engine):
        if engine.last_access_missed or engine.last_access_first_touch:
            issue = engine.issue_prefetch
            for step in range(1, self.n_lines + 1):
                issue(line + step, self.origin)
