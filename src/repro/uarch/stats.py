"""Run statistics collected by the fetch engine.

Prefetch bookkeeping follows the paper's Figure 8 taxonomy:

* **pref hit** — the first demand reference to a prefetched line finds it
  already in the L1 I-cache,
* **delayed hit** — the first demand reference finds it still in flight
  (stalls for the residual latency),
* **useless** — the line is evicted (or the run ends) before any demand
  reference touches it.

Prefetches for lines already present or in flight are *squashed* (never
issued, no bus traffic); requests for lines outside the layout's address
space are *out of range* (also never issued).  Every prefetch request
therefore lands in exactly one of ``issued``/``squashed``/``out_of_range``,
and every issued prefetch in exactly one of
``pref_hits``/``delayed_hits``/``useless``.  CGP prefetches carry an
origin tag (``nl`` or ``cghc``) so Figure 9's split can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Version stamped into ``SimStats.summary()`` and journal records.
#: Bump when the summary layout changes shape (readers of mixed
#: journals dispatch on it; see docs/OBSERVABILITY.md).
SUMMARY_SCHEMA_VERSION = 1


@dataclass
class PrefetchStats:
    issued: int = 0
    pref_hits: int = 0
    delayed_hits: int = 0
    useless: int = 0
    squashed: int = 0
    out_of_range: int = 0

    def useful(self):
        return self.pref_hits + self.delayed_hits

    def accounted(self):
        return self.pref_hits + self.delayed_hits + self.useless

    def requests(self):
        """Every prefetch request ever made for this origin."""
        return self.issued + self.squashed + self.out_of_range

    def as_dict(self):
        return {
            "issued": self.issued,
            "pref_hits": self.pref_hits,
            "delayed_hits": self.delayed_hits,
            "useless": self.useless,
            "squashed": self.squashed,
            "out_of_range": self.out_of_range,
        }

    @classmethod
    def from_dict(cls, payload):
        """Build from a serialized payload.

        Unknown keys are ignored and missing ones default to 0, so
        results written by a newer (or older) schema still load — the
        durable result cache outlives any one code revision.
        """
        return cls(
            **{f: payload.get(f, 0) for f in
               ("issued", "pref_hits", "delayed_hits", "useless",
                "squashed", "out_of_range")},
        )


@dataclass
class SimStats:
    """Everything measured in one simulation run."""

    instructions: int = 0
    cycles: float = 0.0
    fetch_cycles: float = 0.0
    base_cycles: float = 0.0
    stall_cycles: float = 0.0
    mispredict_cycles: float = 0.0

    line_accesses: int = 0
    l1_hits: int = 0
    demand_misses: int = 0
    l2_hits: int = 0
    memory_fetches: int = 0

    calls: int = 0
    returns: int = 0
    mispredicted_calls: int = 0

    bus_transactions: int = 0  # L2 port transactions incl. prefetches
    cghc_l1_hits: int = 0
    cghc_l2_hits: int = 0
    cghc_misses: int = 0

    prefetch: dict = field(default_factory=dict)  # origin -> PrefetchStats

    def prefetch_origin(self, origin):
        stats = self.prefetch.get(origin)
        if stats is None:
            stats = PrefetchStats()
            self.prefetch[origin] = stats
        return stats

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def miss_rate(self):
        if self.line_accesses == 0:
            return 0.0
        return self.demand_misses / self.line_accesses

    @property
    def mpki(self):
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.demand_misses / self.instructions

    def total_prefetches(self):
        return sum(p.issued for p in self.prefetch.values())

    def total_useful_prefetches(self):
        return sum(p.useful() for p in self.prefetch.values())

    def total_useless_prefetches(self):
        return sum(p.useless for p in self.prefetch.values())

    # ------------------------------------------------------------------
    # serialization (durable result cache, worker -> parent transport)
    # ------------------------------------------------------------------

    _SCALAR_FIELDS = (
        "instructions", "cycles", "fetch_cycles", "base_cycles",
        "stall_cycles", "mispredict_cycles", "line_accesses", "l1_hits",
        "demand_misses", "l2_hits", "memory_fetches", "calls", "returns",
        "mispredicted_calls", "bus_transactions", "cghc_l1_hits",
        "cghc_l2_hits", "cghc_misses",
    )

    def to_dict(self):
        """Full-precision round-trippable form (unlike ``summary()``,
        which rounds for human consumption)."""
        payload = {f: getattr(self, f) for f in self._SCALAR_FIELDS}
        payload["prefetch"] = {
            origin: p.as_dict() for origin, p in sorted(self.prefetch.items())
        }
        return payload

    @classmethod
    def from_dict(cls, payload):
        scalars = {f: payload[f] for f in cls._SCALAR_FIELDS}
        prefetch = {
            origin: PrefetchStats.from_dict(p)
            for origin, p in payload["prefetch"].items()
        }
        return cls(prefetch=prefetch, **scalars)

    def summary(self):
        return {
            "schema_version": SUMMARY_SCHEMA_VERSION,
            "instructions": self.instructions,
            "cycles": round(self.cycles, 1),
            "ipc": round(self.ipc, 4),
            "demand_misses": self.demand_misses,
            "miss_rate": round(self.miss_rate, 6),
            "mpki": round(self.mpki, 4),
            "stall_cycles": round(self.stall_cycles, 1),
            "bus_transactions": self.bus_transactions,
            "prefetch": {k: v.as_dict() for k, v in sorted(self.prefetch.items())},
        }
