"""Simulator configuration (the paper's Table 1, plus model parameters).

Table 1 values::

    Fetch, Decode & Issue Width   4
    Inst Fetch & L/S Queue Size   16
    Reservation stations          64
    Functional Units              4 add / 2 mult
    Memory system ports to CPU    4
    L1 I and D cache (each)       32KB, 2-way, 32-byte lines
    Unified L2 cache              1MB, 4-way, 32-byte lines
    L1 hit latency                1 cycle
    L2 hit latency                16 cycles
    Memory latency                80 cycles
    Branch predictor              2-level, 2K entries

Our fetch-driven timing model uses the cache/latency/width rows directly.
The out-of-order backend rows (queues, reservation stations, FUs) are
summarized by ``base_cpi``: the average non-fetch CPI contribution per
instruction, calibrated once against the paper's O5 baseline (§5 of
DESIGN.md) and held constant across all configurations so that relative
speedups are driven entirely by the fetch side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    assoc: int
    line_bytes: int = 32

    @property
    def n_sets(self):
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        if sets <= 0:
            raise ConfigError("cache too small for its associativity")
        return sets


@dataclass(frozen=True)
class CghcConfig:
    """Call Graph History Cache geometry.

    ``l1_bytes`` / ``l2_bytes`` give the two levels (l2_bytes=0 means one
    level); ``infinite`` replaces both with an unbounded structure whose
    entries hold full call sequences.  Entry size follows §3.2: a 32-byte
    data line (8 callee slots) plus an 8-byte tag and index.
    """

    l1_bytes: int = 2048
    l2_bytes: int = 32768
    slots: int = 8
    assoc: int = 1  # ways per set; 1 = direct mapped (the paper's choice)
    entry_bytes: int = 40
    infinite: bool = False
    l1_latency: int = 1
    l2_latency: int = 16

    def l1_entries(self):
        return max(1, self.l1_bytes // self.entry_bytes)

    def l2_entries(self):
        return self.l2_bytes // self.entry_bytes


@dataclass(frozen=True)
class SimConfig:
    """Everything the fetch engine needs."""

    fetch_width: int = 4
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(1024 * 1024, 4))
    l1_hit_latency: int = 1
    l2_hit_latency: int = 16
    memory_latency: int = 80
    l2_port_occupancy: int = 2  # FIFO L2 interface, no demand priority (§3.3)
    l2_demand_priority: bool = False  # ablation: let demand misses jump the queue
    base_cpi: float = 0.55  # OoO backend summary (see module docstring)
    call_overhead_instrs: int = 2
    branch_predictor_accuracy: float = 0.96
    mispredict_penalty: int = 7
    ras_depth: int = 32
    cghc: CghcConfig = field(default_factory=CghcConfig)
    perfect_icache: bool = False

    def validate(self):
        if self.fetch_width <= 0:
            raise ConfigError("fetch width must be positive")
        if not 0.0 <= self.branch_predictor_accuracy <= 1.0:
            raise ConfigError("branch predictor accuracy must be in [0, 1]")
        if self.l1i.line_bytes != self.l2.line_bytes:
            raise ConfigError("L1/L2 line sizes must match")
        self.l1i.n_sets
        self.l2.n_sets
        return self


#: The paper's Table 1 configuration.
TABLE_1 = SimConfig().validate()


def cghc_variant(name):
    """Named CGHC configurations from Figure 5."""
    variants = {
        "CGHC-1K": CghcConfig(l1_bytes=1024, l2_bytes=0),
        "CGHC-32K": CghcConfig(l1_bytes=32768, l2_bytes=0),
        "CGHC-1K+16K": CghcConfig(l1_bytes=1024, l2_bytes=16384),
        "CGHC-2K+32K": CghcConfig(l1_bytes=2048, l2_bytes=32768),
        "CGHC-Inf": CghcConfig(infinite=True),
    }
    try:
        return variants[name]
    except KeyError:
        raise ConfigError(
            f"unknown CGHC variant {name!r}; pick from {sorted(variants)}"
        ) from None
