"""The fetch-driven timing simulator.

Replays a trace under an address layout with a chosen prefetcher and the
paper's Table 1 memory hierarchy.  Timing model:

* every instruction costs ``1/fetch_width + base_cpi`` cycles (fetch
  bandwidth plus the calibrated out-of-order backend contribution),
* an L1-I miss stalls the front end for the full L2/memory round trip —
  instruction misses serialize fetch, which is exactly the paper's
  argument for attacking them (§1),
* a reference to a line still in flight (prefetched but not yet arrived)
  stalls for the residual latency — a *delayed hit*,
* all L2 traffic (demand + prefetch) shares one FIFO port (§3.3),
* call/return target prediction: call targets are predicted with a fixed
  accuracy (2-level predictor summary), return targets by the modified
  RAS (a return predicts correctly iff the popped entry matches the
  actual caller — overflows and thread interference surface naturally).

Prefetched lines are tracked from issue to first use or eviction and
classified per Figure 8 (pref hit / delayed hit / useless), by origin
(Figure 9 splits CGP into its NL and CGHC parts).
"""

from __future__ import annotations

import os
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.instrument.trace import CALL, EXEC, RET, SWITCH
from repro.uarch.cache import SetAssocCache
from repro.uarch.memsys import MemorySystem
from repro.uarch.prefetch.base import NO_PREFETCH
from repro.uarch.ras import ModifiedReturnAddressStack
from repro.uarch.stats import SimStats

_LCG_MULT = 6364136223846793005
_LCG_ADD = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class FetchEngine:
    """One simulation run = one FetchEngine instance."""

    def __init__(self, config, layout, prefetcher=None, seed=12345,
                 collector=None):
        config.validate()
        self.config = config
        self.layout = layout
        self.prefetcher = prefetcher if prefetcher is not None else NO_PREFETCH
        #: optional repro.obsv.AttributionCollector; None (the default)
        #: keeps every instrumentation site behind one dead branch
        self.collector = collector
        self.stats = SimStats()
        self.l1i = SetAssocCache.from_config(config.l1i)
        self.memsys = MemorySystem(config)
        self.ras = ModifiedReturnAddressStack(config.ras_depth)
        self.cycle = 0.0
        self._in_flight = {}  # line -> (arrival_cycle, origin)
        self._arrivals = []  # heap of (arrival_cycle, line)
        self._untouched = {}  # prefetched line in L1, not yet referenced
        self._rng_state = (seed * 2 + 1) & _LCG_MASK
        self._cpi = 1.0 / config.fetch_width + config.base_cpi
        #: set before each prefetcher.on_line_access call: whether the
        #: access demand-missed, and whether it was the first touch of a
        #: prefetched line (the "tag bit" tagged prefetchers key off)
        self.last_access_missed = False
        self.last_access_first_touch = False

    # ------------------------------------------------------------------
    # pseudo-random branch prediction (deterministic per seed)
    # ------------------------------------------------------------------
    def _predict_ok(self):
        self._rng_state = (
            self._rng_state * _LCG_MULT + _LCG_ADD
        ) & _LCG_MASK
        fraction = ((self._rng_state >> 32) & 0xFFFFFFFF) / 4294967296.0
        return fraction < self.config.branch_predictor_accuracy

    # ------------------------------------------------------------------
    # prefetch interface (called by prefetchers)
    # ------------------------------------------------------------------
    def issue_prefetch(self, line, origin, delay=0):
        """Issue a prefetch for ``line`` unless present/in flight.

        Every request is accounted: issued, squashed (already present or
        in flight), or out_of_range (outside the layout's address space).
        """
        stats = self.stats.prefetch_origin(origin)
        collector = self.collector
        if line < 0 or line >= self.layout.total_lines:
            stats.out_of_range += 1
            if collector is not None:
                collector.out_of_range(origin)
            return False
        if line in self._in_flight or self.l1i.contains(line):
            stats.squashed += 1
            if collector is not None:
                collector.squashed(line, origin)
            return False
        completion, _from_mem = self.memsys.request(
            line, self.cycle + delay, is_prefetch=True
        )
        self._in_flight[line] = (completion, origin)
        heappush(self._arrivals, (completion, line))
        stats.issued += 1
        if collector is not None:
            collector.issued(line, origin, self.cycle + delay, completion)
        return True

    def prefetch_function_head(self, fid, n_lines, origin, delay=0):
        """Prefetch the first ``n_lines`` of function ``fid``."""
        start = self.layout.base_line[fid]
        span = self.layout.size_lines[fid]
        count = n_lines if n_lines < span else span
        for offset in range(count):
            self.issue_prefetch(start + offset, origin, delay)

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    def _deliver_arrivals(self):
        arrivals = self._arrivals
        in_flight = self._in_flight
        now = self.cycle
        while arrivals and arrivals[0][0] <= now:
            _arrival, line = heappop(arrivals)
            record = in_flight.pop(line, None)
            if record is None:
                continue  # superseded (already delivered via delayed hit)
            self._install(line, record[1])

    def _install(self, line, origin=None):
        evicted = self.l1i.insert(line)
        if origin is not None:
            self._untouched[line] = origin
        if evicted is not None:
            victim_origin = self._untouched.pop(evicted, None)
            if victim_origin is not None:
                self.stats.prefetch_origin(victim_origin).useless += 1
                if self.collector is not None:
                    self.collector.useless(evicted, victim_origin, self.cycle)

    def _access(self, line):
        """One demand reference to an I-cache line."""
        stats = self.stats
        stats.line_accesses += 1
        missed = False
        first_touch = False
        if self._arrivals:
            self._deliver_arrivals()
        if self.l1i.lookup(line):
            origin = self._untouched.pop(line, None)
            if origin is not None:
                stats.prefetch_origin(origin).pref_hits += 1
                first_touch = True
                if self.collector is not None:
                    self.collector.pref_hit(line, origin, self.cycle)
        else:
            record = self._in_flight.pop(line, None)
            if record is not None:
                arrival, origin = record
                stall = arrival - self.cycle
                if stall > 0:
                    self.cycle += stall
                    stats.stall_cycles += stall
                stats.prefetch_origin(origin).delayed_hits += 1
                first_touch = True
                if self.collector is not None:
                    self.collector.delayed_hit(line, origin, stall, self.cycle)
                self._install(line)  # referenced: not "untouched"
            else:
                missed = True
                completion, from_mem = self.memsys.request(
                    line, self.cycle, is_prefetch=False
                )
                stats.demand_misses += 1
                if from_mem:
                    stats.memory_fetches += 1
                else:
                    stats.l2_hits += 1
                stall = completion - self.cycle
                self.cycle += stall
                stats.stall_cycles += stall
                if self.collector is not None:
                    self.collector.demand_miss(line, from_mem)
                self._install(line)
        self.last_access_missed = missed
        self.last_access_first_touch = first_touch
        self.prefetcher.on_line_access(line, self)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, trace):
        """Simulate ``trace``; returns the :class:`SimStats`."""
        config = self.config
        layout = self.layout
        stats = self.stats
        prefetcher = self.prefetcher
        base = layout.base_line
        perm = layout.perm
        num = layout.num
        den = layout.den
        instr_scale = layout.instr_scale
        cpi = self._cpi
        overhead = config.call_overhead_instrs
        overhead_cycles = overhead * instr_scale * cpi
        penalty = config.mispredict_penalty
        perfect = config.perfect_icache
        access = self._access
        collector = self.collector
        # the "single branch": sampling adds one comparison per event
        # when a collector is attached and nothing at all otherwise
        sampler = collector.interval if collector is not None else None

        kinds = trace.kinds
        ea, eb, ec = trace.a, trace.b, trace.c
        for i in range(len(kinds)):
            kind = kinds[i]
            if kind == EXEC:
                fid = ea[i]
                o1 = eb[i]
                o2 = ec[i]
                if o2 < o1:
                    o1, o2 = o2, o1
                n = (o2 - o1 + 1) * instr_scale
                stats.instructions += n
                self.cycle += n * cpi
                stats.fetch_cycles += n * cpi
                if not perfect:
                    first = (o1 * num) // den
                    last = (o2 * num) // den
                    fbase = base[fid]
                    fperm = perm[fid]
                    for block in range(first, last + 1):
                        access(fbase + fperm[block])
            elif kind == CALL:
                stats.calls += 1
                stats.instructions += overhead * instr_scale
                self.cycle += overhead_cycles
                stats.fetch_cycles += overhead_cycles
                callee = ea[i]
                caller = eb[i]
                predicted = self._predict_ok()
                if not predicted:
                    stats.mispredicted_calls += 1
                    self.cycle += penalty
                    stats.mispredict_cycles += penalty
                if caller >= 0:
                    callsite = base[caller] + perm[caller][(ec[i] * num) // den]
                    self.ras.push(callsite, base[caller], caller)
                if not perfect:
                    prefetcher.on_call(caller, callee, predicted, self)
            elif kind == RET:
                stats.returns += 1
                stats.instructions += overhead * instr_scale
                self.cycle += overhead_cycles
                stats.fetch_cycles += overhead_cycles
                returning = ea[i]
                actual_caller = eb[i]
                entry = self.ras.pop()
                predicted = entry is not None and (
                    actual_caller < 0 or entry.caller_fid == actual_caller
                )
                if not predicted:
                    self.cycle += penalty
                    stats.mispredict_cycles += penalty
                if not perfect:
                    prefetcher.on_return(returning, entry, predicted, self)
            elif kind == SWITCH:
                pass  # hardware state (caches, RAS, CGHC) is shared
            else:
                raise SimulationError(f"unknown trace event kind {kind}")
            if sampler is not None and stats.instructions >= sampler.next_at:
                sampler.take(self)

        self._finalize()
        return stats

    def _finalize(self):
        stats = self.stats
        collector = self.collector
        # lines never referenced after prefetch are useless
        for line, origin in self._untouched.items():
            stats.prefetch_origin(origin).useless += 1
            if collector is not None:
                collector.useless(line, origin, self.cycle)
        self._untouched.clear()
        for line, (_arrival, origin) in self._in_flight.items():
            stats.prefetch_origin(origin).useless += 1
            if collector is not None:
                collector.useless(line, origin, self.cycle)
        self._in_flight.clear()
        stats.cycles = self.cycle
        stats.base_cycles = stats.fetch_cycles
        stats.bus_transactions = self.memsys.transactions
        cghc = getattr(self.prefetcher, "cghc", None)
        if cghc is not None:
            stats.cghc_l1_hits = cghc.l1_hits
            stats.cghc_l2_hits = cghc.l2_hits
            stats.cghc_misses = cghc.misses
        if collector is not None and collector.interval is not None:
            collector.interval.finalize(self)


#: simulate() engine selection: explicit argument beats the
#: REPRO_SIM_ENGINE environment variable beats this default.
DEFAULT_ENGINE = "fast"

_ENGINE_ALIASES = {
    "fast": "fast", "optimized": "fast",
    "reference": "reference", "ref": "reference",
}


def engine_class(engine=None):
    """Resolve an engine name ('fast'/'reference') to its class."""
    name = engine or os.environ.get("REPRO_SIM_ENGINE") or DEFAULT_ENGINE
    try:
        resolved = _ENGINE_ALIASES[name]
    except KeyError:
        raise SimulationError(
            f"unknown simulation engine {name!r}; "
            f"pick from {sorted(set(_ENGINE_ALIASES))}"
        ) from None
    if resolved == "reference":
        return FetchEngine
    from repro.uarch.fast_engine import FastFetchEngine

    return FastFetchEngine


def simulate(trace, layout, config, prefetcher=None, seed=12345, engine=None,
             collector=None):
    """Convenience wrapper: run one simulation, return stats.

    ``engine`` selects the replay core: ``"fast"`` (the optimized default)
    or ``"reference"`` (the original event loop the optimized core is
    verified against).  When None, the ``REPRO_SIM_ENGINE`` environment
    variable decides, falling back to ``"fast"``.  Both cores produce
    byte-identical :class:`SimStats`.

    ``collector`` (a :class:`repro.obsv.AttributionCollector`) opts into
    per-function/per-layer attribution, interval sampling, and prefetch
    lifecycle tracing — identical payloads from either engine, and the
    returned :class:`SimStats` are unchanged by collection.
    """
    cls = engine_class(engine)
    return cls(config, layout, prefetcher=prefetcher, seed=seed,
               collector=collector).run(trace)
