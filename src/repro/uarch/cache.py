"""Set-associative cache model (LRU), line-address granular.

Addresses handled by the simulator are already cache-line numbers, so
this model never sees byte addresses.  Each set is a small list with the
MRU entry at the end; with 2-4 way associativity, list operations beat
any clever structure in CPython.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SetAssocCache:
    """An LRU set-associative cache of line addresses."""

    __slots__ = ("n_sets", "assoc", "_sets", "hits", "misses")

    def __init__(self, n_sets, assoc):
        if n_sets <= 0 or assoc <= 0:
            raise SimulationError("cache geometry must be positive")
        self.n_sets = n_sets
        self.assoc = assoc
        self._sets = [[] for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_config(cls, config):
        return cls(config.n_sets, config.assoc)

    def lookup(self, line):
        """True (and LRU update) if ``line`` is present."""
        bucket = self._sets[line % self.n_sets]
        try:
            bucket.remove(line)
        except ValueError:
            self.misses += 1
            return False
        bucket.append(line)
        self.hits += 1
        return True

    def contains(self, line):
        """Presence test without LRU update or stats."""
        return line in self._sets[line % self.n_sets]

    def insert(self, line):
        """Install ``line``; returns the evicted line or None."""
        bucket = self._sets[line % self.n_sets]
        if line in bucket:
            bucket.remove(line)
            bucket.append(line)
            return None
        victim = None
        if len(bucket) >= self.assoc:
            victim = bucket.pop(0)
        bucket.append(line)
        return victim

    def invalidate(self, line):
        """Drop ``line`` if present; returns True if it was."""
        bucket = self._sets[line % self.n_sets]
        try:
            bucket.remove(line)
        except ValueError:
            return False
        return True

    def resident_lines(self):
        """All lines currently cached (tests/debugging)."""
        out = []
        for bucket in self._sets:
            out.extend(bucket)
        return out

    def flush(self):
        for bucket in self._sets:
            bucket.clear()
