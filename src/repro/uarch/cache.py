"""Set-associative cache model (LRU), line-address granular.

Addresses handled by the simulator are already cache-line numbers (always
non-negative), so this model never sees byte addresses.

Storage is a single flat list of ``n_sets * assoc`` way slots.  Within a
set the slots are ordered LRU -> MRU, with ``-1`` marking empty ways
(empties sit at the LRU end, so a not-yet-full set never evicts).  A hit
rotates the line to the MRU slot with a short in-place shift; an insert
into a full set evicts the line in the set's first slot.  The flat layout
has no per-set list objects to allocate or search, and the optimized
fetch engine indexes ``ways`` directly for its inlined hit path — the
semantics (hit/miss sequence, eviction order) are exactly those of the
old list-per-set model.
"""

from __future__ import annotations

from repro.errors import SimulationError

#: Empty-way sentinel; line addresses are non-negative by construction.
EMPTY_WAY = -1


class SetAssocCache:
    """An LRU set-associative cache of (non-negative) line addresses."""

    __slots__ = ("n_sets", "assoc", "ways", "hits", "misses")

    def __init__(self, n_sets, assoc):
        if n_sets <= 0 or assoc <= 0:
            raise SimulationError("cache geometry must be positive")
        self.n_sets = n_sets
        self.assoc = assoc
        self.ways = [EMPTY_WAY] * (n_sets * assoc)
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_config(cls, config):
        return cls(config.n_sets, config.assoc)

    def lookup(self, line):
        """True (and LRU update) if ``line`` is present."""
        assoc = self.assoc
        base = (line % self.n_sets) * assoc
        top = base + assoc - 1
        ways = self.ways
        if ways[top] == line:  # already MRU
            self.hits += 1
            return True
        p = top - 1
        while p >= base:
            if ways[p] == line:
                while p < top:
                    ways[p] = ways[p + 1]
                    p += 1
                ways[top] = line
                self.hits += 1
                return True
            p -= 1
        self.misses += 1
        return False

    def contains(self, line):
        """Presence test without LRU update or stats."""
        base = (line % self.n_sets) * self.assoc
        ways = self.ways
        for p in range(base, base + self.assoc):
            if ways[p] == line:
                return True
        return False

    def insert(self, line):
        """Install ``line``; returns the evicted line or None."""
        assoc = self.assoc
        base = (line % self.n_sets) * assoc
        top = base + assoc - 1
        ways = self.ways
        if ways[top] == line:
            return None
        p = top - 1
        while p >= base:
            if ways[p] == line:  # refresh to MRU, no eviction
                while p < top:
                    ways[p] = ways[p + 1]
                    p += 1
                ways[top] = line
                return None
            p -= 1
        victim = ways[base]
        p = base
        while p < top:
            ways[p] = ways[p + 1]
            p += 1
        ways[top] = line
        return victim if victim != EMPTY_WAY else None

    def invalidate(self, line):
        """Drop ``line`` if present; returns True if it was."""
        base = (line % self.n_sets) * self.assoc
        top = base + self.assoc - 1
        ways = self.ways
        p = top
        while p >= base:
            if ways[p] == line:
                while p > base:
                    ways[p] = ways[p - 1]
                    p -= 1
                ways[base] = EMPTY_WAY
                return True
            p -= 1
        return False

    def clone(self):
        """Independent copy (compact-snapshot path; no deepcopy)."""
        dup = SetAssocCache.__new__(SetAssocCache)
        dup.n_sets = self.n_sets
        dup.assoc = self.assoc
        dup.ways = self.ways[:]
        dup.hits = self.hits
        dup.misses = self.misses
        return dup

    def resident_lines(self):
        """All lines currently cached, per set in LRU->MRU order."""
        return [line for line in self.ways if line != EMPTY_WAY]

    def flush(self):
        ways = self.ways
        for p in range(len(ways)):
            ways[p] = EMPTY_WAY
