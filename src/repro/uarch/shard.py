"""Sharded trace replay: split one trace across workers, merge exactly.

A single simulation is a strictly sequential recurrence — every event
reads microarchitectural state (L1 residency, in-flight prefetches, the
RAS, CGHC contents, the branch-predictor LCG) left behind by the event
before it.  Sharding therefore cannot just cut the trace and replay the
pieces cold: each shard must start from the *exact* state the previous
shard ends with.  The protocol here is record/replay:

1. **Boundaries** — :func:`shard_boundaries` cuts the trace at event
   indices, preferring quantum (``SWITCH``) markers near the even
   quantiles so shards align with context-switch boundaries when the
   trace has them, and falling back to plain even splits when it does
   not.  Any event index is a sound cut: every piece of cross-event
   kernel state is either an engine/prefetcher attribute or is written
   back to one when a kernel returns (see ``FastFetchEngine.run_range``).
2. **Record** — one sequential pass replays segment ``i`` and captures
   an :class:`EngineState` snapshot at each boundary *before* running
   the segment that follows it.  The last segment is never executed by
   the recorder — nothing consumes a snapshot taken at the trace's end.
3. **Replay** — each shard restores its snapshot into a fresh
   ``FastFetchEngine`` (possibly in another process) and replays only
   its own ``[start, end)`` event range, producing a :class:`ShardPiece`
   with the stats dict before and after the segment.
4. **Merge** — :func:`merge_pieces` reassembles one ``SimStats``.
   Purely additive integer counters travel as per-piece *deltas*
   (``after − before``), which commute; cumulative floats (cycle
   arithmetic is order-sensitive in IEEE-754) and the counters
   materialized only by end-of-run finalization are taken from the
   final piece, whose engine carried the full history in its warm-start
   stats.  The merge cross-checks that the delta sums reproduce the
   final piece's chained totals and raises ``SimulationError`` on any
   mismatch, so a corrupted or mis-ordered piece set can never merge
   silently.

Because the replay of segment ``i`` is bit-identical to the recorder's
own execution of segment ``i`` (same engine class, same state, same
events), the merged stats are bit-identical to a single-process
``run()`` — the property pinned down by ``tests/uarch/test_shard_merge``
and the differential fuzz suite.

Attribution collectors cannot be distributed this way (lifecycle
records reference collector-internal state that has no merge), so
:func:`replay_sharded` chains a single observed engine through the
segments sequentially when a collector is supplied — same segmentation,
same warm-start arithmetic, one process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.errors import SimulationError
from repro.uarch.fast_engine import OP_SWITCH, FastFetchEngine, _compiled
from repro.uarch.stats import SimStats

#: Purely additive integer counters: the kernels only ever ``+=`` these,
#: so per-segment deltas commute and the merge can sum them in any
#: order.  (``l1_hits`` lives on the cache object during a run and is
#: never written into ``SimStats`` by either engine; summing its zero
#: deltas is still exact.)
DELTA_INT_FIELDS = (
    "line_accesses", "l1_hits", "demand_misses", "l2_hits",
    "memory_fetches", "calls", "returns", "mispredicted_calls",
)

#: Fields taken from the final piece only: cumulative floats whose
#: IEEE-754 operation order must match the reference engine exactly
#: (``cycles``/``fetch_cycles``/...), plus counters that are only
#: materialized by ``_finalize`` at the true end of the run
#: (``bus_transactions``, the CGHC totals) or accumulate in
#: layout-scaled float steps (``instructions``).
FINAL_FIELDS = (
    "instructions", "cycles", "fetch_cycles", "base_cycles",
    "stall_cycles", "mispredict_cycles", "bus_transactions",
    "cghc_l1_hits", "cghc_l2_hits", "cghc_misses",
)

#: Per-origin prefetch counters — all additive ints, all delta-merged.
#: The final ``useless`` reclassification (untouched/in-flight lines at
#: end of run) lands inside the last piece's delta.
PREFETCH_FIELDS = (
    "issued", "pref_hits", "delayed_hits", "useless", "squashed",
    "out_of_range",
)

_ZERO_PREFETCH = dict.fromkeys(PREFETCH_FIELDS, 0)

#: Every mutable attribute a ``FastFetchEngine`` carries across events.
#: ``layout`` and ``config`` are deliberately absent: they are immutable
#: during a run and are pinned (not copied) by the snapshot so workers
#: share one pickled instance with the prefetcher that references it.
_STATE_ATTRS = (
    "cycle", "_rng_state", "_ctr",
    "last_access_missed", "last_access_first_touch",
    "stats", "prefetcher", "l1i", "memsys", "ras",
    "_in_flight", "_arrivals", "_untouched",
    "_state", "_iflag", "_stamp",
)


def _clone_parts(get):
    """Copy every mutable engine component named in ``_STATE_ATTRS``.

    ``get`` maps an attribute name to its source value — the live
    engine on capture (``partial(getattr, engine)``) or the snapshot
    dict on restore — so one function defines the copy discipline for
    both directions.  Each component is copied by the cheapest means
    that is still a *full* copy: stats round-trip through their exact
    ``to_dict``/``from_dict``, caches/memsys/RAS/prefetcher expose
    type-exact ``clone``/``clone_state`` methods, the mirrors are flat
    ``bytearray``/``list``/``dict`` copies (their elements — ints,
    floats, tuples — are immutable).  No ``deepcopy`` anywhere on this
    path: the recorder snapshots at every shard boundary, and generic
    memo-driven traversal was most of the record pass's cost.
    """
    prefetcher = get("prefetcher")
    return {
        "cycle": get("cycle"),
        "_rng_state": get("_rng_state"),
        "_ctr": get("_ctr"),
        "last_access_missed": get("last_access_missed"),
        "last_access_first_touch": get("last_access_first_touch"),
        "stats": SimStats.from_dict(get("stats").to_dict()),
        "prefetcher": (
            None if prefetcher is None else prefetcher.clone_state()
        ),
        "l1i": get("l1i").clone(),
        "memsys": get("memsys").clone(),
        "ras": get("ras").clone(),
        "_in_flight": dict(get("_in_flight")),
        "_arrivals": list(get("_arrivals")),
        "_untouched": dict(get("_untouched")),
        "_state": bytearray(get("_state")),
        "_iflag": bytearray(get("_iflag")),
        "_stamp": list(get("_stamp")),
    }


class EngineState:
    """Warm-start snapshot of a ``FastFetchEngine``.

    Capturing copies every mutable component (stats, caches, memory
    system, RAS, prefetcher, residency/recency mirrors) via the compact
    :func:`_clone_parts` discipline, with the layout and config shared
    by identity — the snapshot is self-contained, picklable, and
    independent of the engine it came from.  Restoring clones *again*,
    so one snapshot can seed any number of replays.
    """

    __slots__ = ("_snapshot",)

    def __init__(self, snapshot):
        self._snapshot = snapshot

    @classmethod
    def capture(cls, engine):
        return cls(_clone_parts(partial(getattr, engine)))

    def restore(self, config, layout):
        """Build a fresh engine positioned exactly at this snapshot."""
        engine = FastFetchEngine(config, layout, prefetcher=None, seed=0)
        for attr, value in _clone_parts(self._snapshot.__getitem__).items():
            setattr(engine, attr, value)
        return engine


@dataclass(frozen=True)
class ShardPiece:
    """Replay result of one segment: the stats dict at entry and exit.

    Both dicts come from ``SimStats.to_dict()`` on the *same chained*
    stats object (the warm-start state carries the full history), so a
    piece's contribution to any additive counter is simply
    ``after − before``.
    """

    index: int
    start: int
    end: int
    finalized: bool
    stats_before: dict
    stats_after: dict

    def delta(self, field):
        return self.stats_after[field] - self.stats_before[field]

    def prefetch_delta(self, origin, field):
        after = self.stats_after["prefetch"].get(origin, _ZERO_PREFETCH)
        before = self.stats_before["prefetch"].get(origin, _ZERO_PREFETCH)
        return after[field] - before[field]


def combine_pieces(a, b):
    """Merge two adjacent pieces into one covering both ranges.

    The chained stats make this exact: ``b`` entered with precisely the
    totals ``a`` exited with, so the combined deltas telescope.  This
    operation is associative and is what makes :func:`merge_pieces`
    grouping-independent.
    """
    if a.start > b.start:
        a, b = b, a
    if a.end != b.start:
        raise SimulationError(
            f"cannot combine non-adjacent shard pieces "
            f"[{a.start}, {a.end}) and [{b.start}, {b.end})")
    if a.finalized:
        raise SimulationError("a finalized piece cannot precede another")
    return ShardPiece(
        index=a.index, start=a.start, end=b.end, finalized=b.finalized,
        stats_before=a.stats_before, stats_after=b.stats_after,
    )


def merge_pieces(pieces):
    """Reassemble one ``SimStats`` from shard pieces, bit-identically.

    Pieces may arrive in any order; they must tile a contiguous event
    range and the last one must be finalized.  Additive integers are
    summed as deltas over the first piece's baseline; floats and
    finalize-materialized counters come from the final piece.  Every
    delta sum is cross-checked against the final piece's chained total
    — any inconsistency (a stale piece, a double, a gap that slipped
    past the tiling check) raises ``SimulationError``.
    """
    if not pieces:
        raise SimulationError("no shard pieces to merge")
    ordered = sorted(pieces, key=lambda p: p.start)
    for a, b in zip(ordered, ordered[1:]):
        if a.end != b.start:
            raise SimulationError(
                f"shard pieces do not tile the trace: [{a.start}, {a.end}) "
                f"is followed by [{b.start}, {b.end})")
    first, last = ordered[0], ordered[-1]
    if not last.finalized:
        raise SimulationError("final shard piece was not finalized")
    merged = {field: last.stats_after[field] for field in FINAL_FIELDS}
    for field in DELTA_INT_FIELDS:
        total = first.stats_before[field] + sum(
            p.delta(field) for p in ordered)
        if total != last.stats_after[field]:
            raise SimulationError(
                f"shard merge inconsistency on '{field}': delta sum "
                f"{total} != chained total {last.stats_after[field]}")
        merged[field] = total
    origins = set()
    for p in ordered:
        origins.update(p.stats_after["prefetch"])
    prefetch = {}
    for origin in sorted(origins):
        base = first.stats_before["prefetch"].get(origin, _ZERO_PREFETCH)
        chained = last.stats_after["prefetch"].get(origin, _ZERO_PREFETCH)
        row = {}
        for field in PREFETCH_FIELDS:
            total = base[field] + sum(
                p.prefetch_delta(origin, field) for p in ordered)
            if total != chained[field]:
                raise SimulationError(
                    f"shard merge inconsistency on prefetch "
                    f"'{origin}.{field}': delta sum {total} != chained "
                    f"total {chained[field]}")
            row[field] = total
        prefetch[origin] = row
    merged["prefetch"] = prefetch
    return SimStats.from_dict(merged)


def shard_boundaries(trace, layout, n_shards):
    """Cut points ``[0, b1, ..., n_events]`` for ``n_shards`` segments.

    Prefers ``SWITCH`` events (quantum boundaries in multiprogrammed
    mixes) nearest each even quantile, so shards start at context
    switches when the trace has them; traces without switches fall back
    to plain even splits.  Duplicate or degenerate cuts collapse, so
    short traces may yield fewer than ``n_shards`` segments.
    """
    if n_shards < 1:
        raise SimulationError("n_shards must be >= 1")
    compiled = _compiled(trace, layout)
    n = compiled.n_events
    if n == 0 or n_shards == 1:
        return [0, n]
    ops = compiled.ops
    switches = [i for i in range(n) if ops[i] == OP_SWITCH]
    cuts = []
    for k in range(1, n_shards):
        target = n * k // n_shards
        if switches:
            cut = min(switches, key=lambda i: abs(i - target))
        else:
            cut = target
        cuts.append(cut)
    boundaries = [0]
    for cut in cuts:
        if boundaries[-1] < cut < n:
            boundaries.append(cut)
    boundaries.append(n)
    return boundaries


@dataclass(frozen=True)
class _Segment:
    index: int
    start: int
    end: int
    state: EngineState


def record_shards(trace, layout, config, prefetcher=None, seed=12345,
                  boundaries=None, n_shards=2):
    """Sequential recording pass: snapshot the engine at each boundary.

    Returns one :class:`_Segment` per ``[start, end)`` range, each
    holding the warm-start state *entering* that range.  Only the
    segments before the last are actually executed — the recorder never
    runs (or finalizes) the final segment, whose exit state nothing
    consumes.
    """
    if boundaries is None:
        boundaries = shard_boundaries(trace, layout, n_shards)
    engine = FastFetchEngine(config, layout, prefetcher=prefetcher,
                             seed=seed)
    ranges = list(zip(boundaries, boundaries[1:]))
    segments = []
    for i, (start, end) in enumerate(ranges):
        segments.append(_Segment(i, start, end, EngineState.capture(engine)))
        if i < len(ranges) - 1:
            engine.run_range(trace, start, end, finalize=False)
    return segments


def _replay_segment(trace, layout, config, state, start, end, index,
                    finalize):
    """Replay one segment from its snapshot (worker-side entry point)."""
    engine = state.restore(config, layout)
    before = engine.stats.to_dict()
    engine.run_range(trace, start, end, finalize=finalize)
    return ShardPiece(
        index=index, start=start, end=end, finalized=finalize,
        stats_before=before, stats_after=engine.stats.to_dict(),
    )


def replay_sharded(trace, layout, config, prefetcher=None, seed=12345,
                   n_shards=2, runner=None, collector=None,
                   return_pieces=False, boundaries=None):
    """Replay ``trace`` in ``n_shards`` segments and merge the stats.

    Bit-identical to ``simulate(..., engine="fast")`` (and therefore to
    the reference engine) for every counter, float, and prefetch origin.

    ``runner`` — an optional :class:`repro.harness.parallel.ParallelRunner`;
    when given, shard replays are distributed as ``run_tasks`` tasks
    (worker processes, crash retry, fault injection all come along).
    When ``None``, shards replay in-process — still exercising the full
    snapshot/restore/merge path, which is what the equivalence suites
    pin down.  Wall-clock gain requires a multi-core ``runner``; the
    record pass is itself one sequential replay of all but the last
    segment, so the parallel path's speedup ceiling is
    ``n_events / (n_events - len(last segment))`` times the per-worker
    concurrency.

    ``collector`` — attribution payloads have no cross-process merge,
    so a collector forces the sequential chained path: one observed
    engine runs every segment in order (same boundaries, same
    warm-start arithmetic), and the collector fills exactly as in a
    single ``run()``.

    ``boundaries`` — explicit cut points (must start at 0 and end at
    the trace's event count, strictly increasing); overrides
    ``n_shards``.  Any event index is a valid cut.
    """
    if boundaries is None:
        boundaries = shard_boundaries(trace, layout, n_shards)
    else:
        boundaries = list(boundaries)
        n = _compiled(trace, layout).n_events
        if n == 0 and boundaries in ([0], [0, 0]):
            boundaries = [0, 0]  # one empty segment, as shard_boundaries cuts
        elif (boundaries[0] != 0 or boundaries[-1] != n
                or any(a >= b for a, b in zip(boundaries, boundaries[1:]))):
            raise SimulationError(
                "boundaries must rise strictly from 0 to the event count")
    n_events = boundaries[-1]
    if collector is not None:
        engine = FastFetchEngine(config, layout, prefetcher=prefetcher,
                                 seed=seed, collector=collector)
        pieces = []
        for i, (start, end) in enumerate(zip(boundaries, boundaries[1:])):
            before = engine.stats.to_dict()
            engine.run_range(trace, start, end, finalize=(end == n_events))
            pieces.append(ShardPiece(
                index=i, start=start, end=end,
                finalized=(end == n_events), stats_before=before,
                stats_after=engine.stats.to_dict(),
            ))
    else:
        segments = record_shards(trace, layout, config,
                                 prefetcher=prefetcher, seed=seed,
                                 boundaries=boundaries)
        if runner is None:
            pieces = [
                _replay_segment(trace, layout, config, seg.state,
                                seg.start, seg.end, seg.index,
                                finalize=(seg.end == n_events))
                for seg in segments
            ]
        else:
            tasks = [
                (f"shard{seg.index:03d}",
                 partial(_replay_segment, trace, layout, config,
                         seg.state, seg.start, seg.end, seg.index,
                         seg.end == n_events))
                for seg in segments
            ]
            result = runner.run_tasks(tasks, grid="shards")
            if result.failures:
                failed = ", ".join(f.key for f in result.failures)
                raise SimulationError(f"shard replay failed: {failed}")
            pieces = [result.cells[label] for label, _fn in tasks]
    merged = merge_pieces(pieces)
    if return_pieces:
        return merged, pieces
    return merged
