"""Microarchitecture simulator: caches, memory, RAS, fetch engine."""

from repro.uarch.cache import SetAssocCache
from repro.uarch.config import TABLE_1, CacheConfig, CghcConfig, SimConfig, cghc_variant
from repro.uarch.fast_engine import CompiledTrace, FastFetchEngine, compile_trace
from repro.uarch.fetch_engine import FetchEngine, engine_class, simulate
from repro.uarch.memsys import MemorySystem
from repro.uarch.ras import ModifiedReturnAddressStack, RasEntry
from repro.uarch.shard import (
    EngineState,
    ShardPiece,
    combine_pieces,
    merge_pieces,
    replay_sharded,
    shard_boundaries,
)
from repro.uarch.stats import PrefetchStats, SimStats

__all__ = [
    "CacheConfig",
    "CghcConfig",
    "CompiledTrace",
    "EngineState",
    "FastFetchEngine",
    "FetchEngine",
    "ShardPiece",
    "combine_pieces",
    "compile_trace",
    "engine_class",
    "merge_pieces",
    "replay_sharded",
    "shard_boundaries",
    "MemorySystem",
    "ModifiedReturnAddressStack",
    "PrefetchStats",
    "RasEntry",
    "SetAssocCache",
    "SimConfig",
    "SimStats",
    "TABLE_1",
    "cghc_variant",
    "simulate",
]
