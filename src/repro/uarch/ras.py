"""The modified return address stack (§3.2).

A conventional RAS predicts only the return address.  CGP needs the
*starting address of the function being returned into*, so every call
pushes (return address, caller's start address); every return pops both.
The stack is a fixed-depth circular buffer: overflow silently drops the
oldest entry, underflow predicts nothing — both occur naturally under
deep recursion and context switches, and CGP simply issues no prefetch
then.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import SimulationError


class RasEntry(NamedTuple):
    return_line: int
    caller_start_line: int
    caller_fid: int


class ModifiedReturnAddressStack:
    """Fixed-depth circular return address stack."""

    def __init__(self, depth=32):
        if depth <= 0:
            raise SimulationError("RAS depth must be positive")
        self._depth = depth
        self._buffer = [None] * depth
        self._top = 0  # index of next push slot
        self._count = 0
        self.overflows = 0
        self.underflows = 0

    def push(self, return_line, caller_start_line, caller_fid):
        self._buffer[self._top] = RasEntry(return_line, caller_start_line, caller_fid)
        self._top = (self._top + 1) % self._depth
        if self._count < self._depth:
            self._count += 1
        else:
            self.overflows += 1

    def pop(self):
        """Pop the predicted (return address, caller start); None if empty."""
        if self._count == 0:
            self.underflows += 1
            return None
        self._top = (self._top - 1) % self._depth
        self._count -= 1
        entry = self._buffer[self._top]
        self._buffer[self._top] = None
        return entry

    def clone(self):
        """Independent copy (compact-snapshot path; no deepcopy).
        Buffer entries are immutable tuples, so a shallow list copy is
        a full copy."""
        dup = ModifiedReturnAddressStack.__new__(ModifiedReturnAddressStack)
        dup._depth = self._depth
        dup._buffer = self._buffer[:]
        dup._top = self._top
        dup._count = self._count
        dup.overflows = self.overflows
        dup.underflows = self.underflows
        return dup

    def peek(self):
        if self._count == 0:
            return None
        return self._buffer[(self._top - 1) % self._depth]

    def __len__(self):
        return self._count

    def clear(self):
        self._buffer = [None] * self._depth
        self._top = 0
        self._count = 0
