"""Call Graph Prefetching — the paper's contribution (§3).

``CgpPrefetcher`` combines:

* a :class:`~repro.core.cghc.CallGraphHistoryCache` consulted on every
  predicted call and return (two accesses each: a prefetch access on the
  predicted target, an update access on the current function), and
* a next-N-line prefetcher for instructions *within* a function.

On a call F -> G (target predicted by the branch predictor):

1. prefetch access with G's start address: on a hit, prefetch the first
   N lines of G's first recorded callee (G's own body was prefetched
   earlier, when F's history predicted G);
2. update access with F's start address: store G at F's current index
   slot and advance the index.

On a return G -> F (F's start address from the modified RAS):

1. prefetch access with F: on a hit, prefetch the first N lines of the
   callee F's index points at — the function F will call next;
2. update access with G: reset G's index to 1.

Prefetches issue ``N`` (= ``lines_per_prefetch``) lines from the target
function's entry; the rest of its body is covered by the NL component
once it begins executing (§3.2: "CGP_N").  CGHC accesses are charged the
CGHC level's latency before the prefetch can issue.

A mispredicted call/return gives the CGHC nothing useful, so both
accesses are skipped (the history is neither read nor polluted).
"""

from __future__ import annotations

from repro.core.cghc import CallGraphHistoryCache
from repro.errors import ConfigError
from repro.uarch.prefetch.base import Prefetcher
from repro.uarch.prefetch.nl import NextNLinePrefetcher

ORIGIN_NL = "nl"
ORIGIN_CGHC = "cghc"


class CgpPrefetcher(Prefetcher):
    """CGP_N: CGHC across function boundaries + NL within them."""

    def __init__(self, lines_per_prefetch, cghc_config, layout):
        if lines_per_prefetch <= 0:
            raise ConfigError("CGP_N needs N >= 1")
        self.lines_per_prefetch = lines_per_prefetch
        self.cghc = CallGraphHistoryCache(cghc_config)
        self._layout = layout
        self._entry = layout.base_line  # fid -> entry line (block 0 pinned)
        self._nl = NextNLinePrefetcher(lines_per_prefetch, origin=ORIGIN_NL)
        # on_line_access is exactly the NL component's automaton, so the
        # optimized replay core may inline its sequential fast path
        self.nl_component = self._nl
        self.name = f"CGP_{lines_per_prefetch}"

    def reset(self):
        self.cghc = CallGraphHistoryCache(self.cghc.config)
        self._nl.reset()

    def clone_state(self):
        if type(self) is not CgpPrefetcher:
            return super().clone_state()
        dup = CgpPrefetcher.__new__(CgpPrefetcher)
        dup.lines_per_prefetch = self.lines_per_prefetch
        dup.cghc = self.cghc.clone()
        # the layout and its entry table are immutable during a run:
        # shared by identity, so a pickled snapshot keeps the
        # single-copy sharing a deepcopy memo used to provide
        dup._layout = self._layout
        dup._entry = self._entry
        dup._nl = self._nl.clone_state()
        dup.nl_component = dup._nl
        dup.name = self.name
        return dup

    # ------------------------------------------------------------------
    # within a function: plain NL
    # ------------------------------------------------------------------
    def on_line_access(self, line, engine):
        self._nl.on_line_access(line, engine)

    # ------------------------------------------------------------------
    # across functions: CGHC
    # ------------------------------------------------------------------
    def _ensure(self, tag, engine):
        """``cghc.ensure`` plus attribution: when the engine carries a
        collector, classify the access by which CGHC counter it moved
        (level 0 = first-level hit, 1 = second-level hit, 2 = miss).
        The tag is a function entry line, so the collector can charge
        the access to that function."""
        cghc = self.cghc
        # getattr: the engine protocol is duck-typed (tests and custom
        # harnesses pass minimal engine objects without a collector)
        collector = getattr(engine, "collector", None)
        if collector is None:
            return cghc.ensure(tag)
        l1_before = cghc.l1_hits
        l2_before = cghc.l2_hits
        result = cghc.ensure(tag)
        if cghc.l1_hits != l1_before:
            level = 0
        elif cghc.l2_hits != l2_before:
            level = 1
        else:
            level = 2
        collector.cghc_access(tag, level)
        return result

    def on_call(self, caller_fid, callee_fid, predicted, engine):
        if not predicted:
            return
        entry_lines = self._entry
        # access 1: prefetch access keyed by the predicted target G.  A
        # miss allocates a fresh (invalid-data) entry — §3.2: "if there
        # is no hit in the tag array, no prefetches are issued and a new
        # tag array entry is created".
        entry, latency = self._ensure(entry_lines[callee_fid], engine)
        first = entry.first_callee()
        if first is not None:
            engine.prefetch_function_head(
                first, self.lines_per_prefetch, ORIGIN_CGHC,
                delay=latency + 1,
            )
        # access 2: update access keyed by the current function F
        if caller_fid >= 0:
            entry, _latency = self._ensure(entry_lines[caller_fid], engine)
            entry.record_call(callee_fid, self.cghc.max_slots)

    def on_return(self, returning_fid, ras_entry, predicted, engine):
        if not predicted:
            return
        # access 1: prefetch access keyed by the caller's start address,
        # supplied by the modified return address stack (allocates on
        # miss, like every CGHC access)
        if ras_entry is not None:
            entry, latency = self._ensure(ras_entry.caller_start_line, engine)
            nxt = entry.predicted_next()
            if nxt is not None:
                engine.prefetch_function_head(
                    nxt, self.lines_per_prefetch, ORIGIN_CGHC,
                    delay=latency + 1,
                )
        # access 2: update access keyed by the returning function G;
        # a fresh entry's index is already 1
        entry, _latency = self._ensure(self._entry[returning_fid], engine)
        entry.reset_index()
