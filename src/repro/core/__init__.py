"""The paper's contribution: Call Graph Prefetching and its history cache."""

from repro.core.cghc import CallGraphHistoryCache, CghcEntry, DirectMappedCghc
from repro.core.cgp import ORIGIN_CGHC, ORIGIN_NL, CgpPrefetcher
from repro.core.software_cgp import (
    ORIGIN_SWCGP,
    SoftwareCgpPrefetcher,
    train_call_sequences,
)

__all__ = [
    "CallGraphHistoryCache",
    "CghcEntry",
    "CgpPrefetcher",
    "DirectMappedCghc",
    "ORIGIN_CGHC",
    "ORIGIN_NL",
    "ORIGIN_SWCGP",
    "SoftwareCgpPrefetcher",
    "train_call_sequences",
]
