"""Software CGP — the paper's §6 future-work variant.

    "CGP can be implemented entirely in software by having a compiler
    insert prefetch instructions into the code based on call graph
    information generated from profile executions."

The compiler is modeled by :func:`train_call_sequences`: it runs over a
*profile trace* and, for every function, records the modal callee at
each call-sequence position (slot) — the static equivalent of what the
CGHC learns dynamically.  :class:`SoftwareCgpPrefetcher` then behaves
like CGP's CGHC half with that frozen table: entering a function
prefetches its (statically predicted) first callee; each return
prefetches the next slot.  There is no hardware table, no capacity
pressure, and no adaptation — if the evaluated workload's call behavior
drifts from the profiled one, the static predictions go stale, which is
precisely the trade-off the paper's hardware scheme avoids.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.errors import ConfigError
from repro.instrument.trace import CALL, RET
from repro.uarch.prefetch.base import Prefetcher
from repro.uarch.prefetch.nl import NextNLinePrefetcher

ORIGIN_SWCGP = "swcgp"


def train_call_sequences(trace, max_slots=8):
    """Build the static call-sequence table from a profile trace.

    Returns ``{fid: [modal callee at slot 0, slot 1, ...]}`` — the
    compile-time analog of a CGHC entry.
    """
    counts = defaultdict(Counter)  # (caller, slot) -> Counter of callees
    slot_of = {}  # fid -> next slot while its invocation is open
    stack = []
    for kind, a, b, _c in zip(trace.kinds, trace.a, trace.b, trace.c):
        if kind == CALL:
            caller = b
            if caller >= 0:
                slot = slot_of.get(caller, 0)
                if slot < max_slots:
                    counts[(caller, slot)][a] += 1
                slot_of[caller] = slot + 1
            stack.append(a)
            slot_of[a] = 0
        elif kind == RET:
            if stack:
                stack.pop()
            slot_of.pop(a, None)
    table = defaultdict(list)
    for (caller, slot), callees in sorted(counts.items()):
        sequence = table[caller]
        while len(sequence) <= slot:
            sequence.append(None)
        sequence[slot] = callees.most_common(1)[0][0]
    return dict(table)


class SoftwareCgpPrefetcher(Prefetcher):
    """CGP with a compile-time call-sequence table instead of a CGHC.

    Prefetch instructions always execute (they are code), so unlike the
    hardware scheme no branch-predictor confirmation is needed; but the
    table never adapts.  A per-function runtime slot counter stands in
    for the program counter reaching successive prefetch instructions.
    """

    def __init__(self, lines_per_prefetch, table, layout):
        if lines_per_prefetch <= 0:
            raise ConfigError("software CGP needs N >= 1")
        self.lines_per_prefetch = lines_per_prefetch
        self.table = table
        self._layout = layout
        self._nl = NextNLinePrefetcher(lines_per_prefetch, origin="nl")
        self._slot = {}  # fid -> next call position in the open invocation
        self.name = f"SW-CGP_{lines_per_prefetch}"

    def reset(self):
        self._nl.reset()
        self._slot.clear()

    def on_line_access(self, line, engine):
        self._nl.on_line_access(line, engine)

    def on_call(self, caller_fid, callee_fid, _predicted, engine):
        # the prefetch instruction at the callee's entry targets the
        # callee's statically predicted first callee
        sequence = self.table.get(callee_fid)
        if sequence and sequence[0] is not None:
            engine.prefetch_function_head(
                sequence[0], self.lines_per_prefetch, ORIGIN_SWCGP, delay=1
            )
        self._slot[callee_fid] = 0
        if caller_fid >= 0:
            self._slot[caller_fid] = self._slot.get(caller_fid, 0) + 1

    def on_return(self, returning_fid, ras_entry, _predicted, engine):
        self._slot.pop(returning_fid, None)
        if ras_entry is None:
            return
        caller = ras_entry.caller_fid
        sequence = self.table.get(caller)
        if not sequence:
            return
        slot = self._slot.get(caller, 0)
        if slot < len(sequence) and sequence[slot] is not None:
            engine.prefetch_function_head(
                sequence[slot], self.lines_per_prefetch, ORIGIN_SWCGP, delay=1
            )
