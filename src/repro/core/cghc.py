"""The Call Graph History Cache (§3.2) — the paper's core structure.

Each entry is keyed by a function's starting address and stores:

* ``index`` — 1-based slot pointer into the callee sequence; initialized
  to 1 when the entry is created, incremented on each call update (up to
  one past the slot capacity), and reset to 1 when the function returns;
* ``seq`` — the sequence of starting addresses of the functions called
  during the function's most recent invocation (up to 8 slots in the
  finite configurations; unbounded in the infinite CGHC).

The finite CGHC is direct mapped (the paper found set associativity
unnecessary).  The two-level variant mirrors the two-level cache
hierarchy: a hit in the second level *swaps* the entry with the first
level's resident entry; a miss in both allocates in the first level and
writes the displaced entry back to the second.

Callee identities are stored as function ids (each function id maps 1:1
to a start address under a fixed layout); tags are start-line addresses,
exactly as the hardware would hold them.
"""

from __future__ import annotations

from repro.errors import ConfigError


class CghcEntry:
    """One CGHC entry (tag + index + callee sequence)."""

    __slots__ = ("tag", "index", "seq")

    def __init__(self, tag):
        self.tag = tag
        self.index = 1
        self.seq = []

    def clone(self):
        dup = CghcEntry.__new__(CghcEntry)
        dup.tag = self.tag
        dup.index = self.index
        dup.seq = self.seq[:]
        return dup

    def record_call(self, callee_fid, max_slots):
        """Call-update access: store the callee at the slot the index
        points to, then advance the index (§3.2)."""
        slot = self.index - 1
        if max_slots is not None and slot >= max_slots:
            return  # only the first ``max_slots`` callees are kept
        if slot < len(self.seq):
            self.seq[slot] = callee_fid
        else:
            # index never skips, so slot == len(seq) here
            self.seq.append(callee_fid)
        limit = max_slots + 1 if max_slots is not None else self.index + 1
        self.index = min(self.index + 1, limit)

    def predicted_next(self):
        """The callee the index points at (return-prefetch access)."""
        slot = self.index - 1
        if 0 <= slot < len(self.seq):
            return self.seq[slot]
        return None

    def first_callee(self):
        """Slot 1 (call-prefetch access: a just-called function's index
        should be 1)."""
        return self.seq[0] if self.seq else None

    def reset_index(self):
        self.index = 1


class DirectMappedCghc:
    """One level of finite CGHC.

    Direct mapped by default (the paper found associativity unnecessary,
    §3.2); ``ways > 1`` builds a set-associative level with LRU within
    each set — used by the associativity ablation to verify that claim.
    """

    def __init__(self, n_entries, max_slots=8, ways=1):
        if n_entries <= 0 or ways <= 0:
            raise ConfigError("CGHC needs at least one entry and one way")
        self.n_entries = n_entries
        self.max_slots = max_slots
        self.ways = ways
        self.n_sets = max(1, n_entries // ways)
        self._sets = [[] for _ in range(self.n_sets)]

    def set_of(self, tag):
        return tag % self.n_sets

    def probe(self, tag):
        """Return the entry on a tag hit (LRU refresh), else None."""
        bucket = self._sets[tag % self.n_sets]
        if not bucket:
            return None
        entry = bucket[-1]  # MRU first: direct-mapped levels hit here
        if entry.tag == tag:
            return entry
        for i in range(len(bucket) - 2, -1, -1):
            entry = bucket[i]
            if entry.tag == tag:
                del bucket[i]
                bucket.append(entry)
                return entry
        return None

    def remove(self, tag):
        """Drop and return the entry with ``tag`` if present."""
        bucket = self._sets[tag % self.n_sets]
        for i, entry in enumerate(bucket):
            if entry.tag == tag:
                del bucket[i]
                return entry
        return None

    def install(self, entry):
        """Place ``entry`` in its set; returns the displaced entry."""
        bucket = self._sets[entry.tag % self.n_sets]
        victim = None
        for i, existing in enumerate(bucket):
            if existing.tag == entry.tag:
                victim = existing
                del bucket[i]
                break
        if victim is None and len(bucket) >= self.ways:
            victim = bucket.pop(0)
        bucket.append(entry)
        return victim

    def entry_count(self):
        return sum(len(bucket) for bucket in self._sets)

    def clone(self):
        """Independent copy (compact-snapshot path; no deepcopy)."""
        dup = DirectMappedCghc.__new__(DirectMappedCghc)
        dup.n_entries = self.n_entries
        dup.max_slots = self.max_slots
        dup.ways = self.ways
        dup.n_sets = self.n_sets
        dup._sets = [
            [entry.clone() for entry in bucket] for bucket in self._sets
        ]
        return dup


class FlatCghc:
    """Flat-array image of a finite direct-mapped two-level CGHC.

    The optimized replay core cannot afford the dict-and-object
    representation on its per-event path: every CGHC access chases
    ``_sets`` list -> bucket list -> entry attributes, and every
    miss/exchange allocates and shuffles Python objects.  This class
    holds the *same* state as :class:`CallGraphHistoryCache` (ways == 1
    only — the paper's configuration) in parallel arrays:

    * ``l1_tag[s]`` / ``l2_tag[s]`` — resident tag per set, ``-1`` empty,
    * ``l1_idx[s]`` / ``l2_idx[s]`` — the entry's 1-based slot index,
    * ``l1_len[s]`` / ``l2_len[s]`` — valid prefix length of the callee
      sequence,
    * ``l1_seq`` / ``l2_seq`` — callee slots, ``slots`` per set at stride
      ``s * slots`` (a fixed stride keeps every exchange a plain slice
      copy).

    The replay kernels flatten the dict cache at kernel entry
    (:meth:`from_cache`), probe/update the arrays inline, and write the
    state back (:meth:`write_back`) before the kernel returns — so the
    dict cache stays the canonical representation wherever engine state
    is observed (``EngineState`` snapshots, ``_finalize``, tests), and
    the reference :class:`CallGraphHistoryCache` remains the semantic
    oracle.  Hit/miss counters accumulate here as *deltas* and are added
    to the dict cache's totals by ``write_back``.

    :meth:`ensure` is the reference implementation of the flattened
    probe/allocate/exchange sequence the kernels inline — the
    equivalence and flat-vs-dict oracle suites pin both to
    ``CallGraphHistoryCache.ensure``.
    """

    __slots__ = (
        "n1", "n2", "slots", "lat1", "lat2",
        "l1_tag", "l1_idx", "l1_len", "l1_seq",
        "l2_tag", "l2_idx", "l2_len", "l2_seq",
        "l1_hits", "l2_hits", "misses",
    )

    @classmethod
    def from_cache(cls, cghc):
        """Flatten a dict-represented cache (finite, direct mapped)."""
        if cghc.infinite:
            raise ConfigError("infinite CGHC has no flat representation")
        if cghc.l1.ways != 1 or (cghc.l2 is not None and cghc.l2.ways != 1):
            raise ConfigError("flat CGHC supports direct-mapped levels only")
        flat = cls.__new__(cls)
        flat.slots = cghc.max_slots
        flat.lat1 = cghc.config.l1_latency
        flat.lat2 = cghc.config.l2_latency
        flat.l1_hits = 0
        flat.l2_hits = 0
        flat.misses = 0
        flat.n1 = cghc.l1.n_sets
        flat._load_level(cghc.l1, 1)
        if cghc.l2 is not None:
            flat.n2 = cghc.l2.n_sets
            flat._load_level(cghc.l2, 2)
        else:
            flat.n2 = 0
            flat.l2_tag = flat.l2_idx = flat.l2_len = flat.l2_seq = None
        return flat

    def _load_level(self, level, which):
        n = level.n_sets
        stride = self.slots
        tags = [-1] * n
        idxs = [1] * n
        lens = [0] * n
        seqs = [0] * (n * stride)
        for s, bucket in enumerate(level._sets):
            if bucket:
                entry = bucket[-1]
                tags[s] = entry.tag
                idxs[s] = entry.index
                k = len(entry.seq)
                lens[s] = k
                seqs[s * stride:s * stride + k] = entry.seq
        if which == 1:
            self.l1_tag, self.l1_idx, self.l1_len, self.l1_seq = (
                tags, idxs, lens, seqs)
        else:
            self.l2_tag, self.l2_idx, self.l2_len, self.l2_seq = (
                tags, idxs, lens, seqs)

    def write_back(self, cghc):
        """Rebuild the dict cache's buckets from the arrays and add the
        accumulated counter deltas to its totals."""
        self._store_level(cghc.l1, self.l1_tag, self.l1_idx, self.l1_len,
                          self.l1_seq)
        if self.n2:
            self._store_level(cghc.l2, self.l2_tag, self.l2_idx,
                              self.l2_len, self.l2_seq)
        cghc.l1_hits += self.l1_hits
        cghc.l2_hits += self.l2_hits
        cghc.misses += self.misses
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0

    def _store_level(self, level, tags, idxs, lens, seqs):
        stride = self.slots
        sets = level._sets
        b = 0
        for s, tag in enumerate(tags):
            if tag >= 0:
                entry = CghcEntry.__new__(CghcEntry)
                entry.tag = tag
                entry.index = idxs[s]
                entry.seq = seqs[b:b + lens[s]]
                sets[s] = [entry]
            else:
                sets[s] = []
            b += stride

    # ------------------------------------------------------------------
    # access (the sequence the replay kernels inline)
    # ------------------------------------------------------------------
    def ensure(self, tag):
        """Flat transcription of ``CallGraphHistoryCache.ensure``.

        Returns ``(latency, level)`` with level 0 (first-level hit),
        1 (second-level hit, entry exchanged up), or 2 (miss, fresh
        entry allocated in L1 with the victim written back to L2).
        After any call the entry for ``tag`` is resident at L1 set
        ``tag % n1``.
        """
        s1 = tag % self.n1
        l1_tag = self.l1_tag
        if l1_tag[s1] == tag:
            self.l1_hits += 1
            return self.lat1, 0
        stride = self.slots
        l1_idx = self.l1_idx
        l1_len = self.l1_len
        l1_seq = self.l1_seq
        b1 = s1 * stride
        victim = l1_tag[s1]
        if self.n2:
            l2_tag = self.l2_tag
            l2_idx = self.l2_idx
            l2_len = self.l2_len
            l2_seq = self.l2_seq
            s2 = tag % self.n2
            if l2_tag[s2] == tag:
                # second-level hit: the §5.3 exchange.  Save the hit
                # entry, vacate its L2 slot *first* (the displaced L1
                # entry may map to the same slot), demote the L1
                # resident, install the hit entry in L1.
                self.l2_hits += 1
                b2 = s2 * stride
                hit_idx = l2_idx[s2]
                hit_len = l2_len[s2]
                hit_seq = l2_seq[b2:b2 + stride]
                l2_tag[s2] = -1
                if victim >= 0:
                    vs = victim % self.n2
                    vb = vs * stride
                    l2_tag[vs] = victim
                    l2_idx[vs] = l1_idx[s1]
                    l2_len[vs] = l1_len[s1]
                    l2_seq[vb:vb + stride] = l1_seq[b1:b1 + stride]
                l1_tag[s1] = tag
                l1_idx[s1] = hit_idx
                l1_len[s1] = hit_len
                l1_seq[b1:b1 + stride] = hit_seq
                return self.lat2, 1
            # miss in both levels: allocate fresh in L1, write the
            # displaced entry back to L2 (overwriting that set's
            # resident, exactly as ``l2.install`` would evict it)
            self.misses += 1
            if victim >= 0:
                vs = victim % self.n2
                vb = vs * stride
                l2_tag[vs] = victim
                l2_idx[vs] = l1_idx[s1]
                l2_len[vs] = l1_len[s1]
                l2_seq[vb:vb + stride] = l1_seq[b1:b1 + stride]
            l1_tag[s1] = tag
            l1_idx[s1] = 1
            l1_len[s1] = 0
            return self.lat2, 2
        # one-level cache: the direct-mapped victim is simply dropped
        self.misses += 1
        l1_tag[s1] = tag
        l1_idx[s1] = 1
        l1_len[s1] = 0
        return self.lat1, 2

    # ------------------------------------------------------------------
    # entry operations (the resident entry at L1 set ``s1``)
    # ------------------------------------------------------------------
    def record_call(self, s1, callee):
        """``CghcEntry.record_call`` on the L1-resident entry."""
        slot = self.l1_idx[s1] - 1
        if slot < self.slots:
            self.l1_seq[s1 * self.slots + slot] = callee
            if slot == self.l1_len[s1]:
                self.l1_len[s1] = slot + 1
            self.l1_idx[s1] = slot + 2

    def predicted_next(self, s1):
        slot = self.l1_idx[s1] - 1
        if slot < self.l1_len[s1]:
            return self.l1_seq[s1 * self.slots + slot]
        return None

    def first_callee(self, s1):
        if self.l1_len[s1]:
            return self.l1_seq[s1 * self.slots]
        return None

    def reset_index(self, s1):
        self.l1_idx[s1] = 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def entry_count(self):
        total = self.n1 - self.l1_tag.count(-1)
        if self.n2:
            total += self.n2 - self.l2_tag.count(-1)
        return total


class CallGraphHistoryCache:
    """The full CGHC: one or two levels, or infinite.

    ``lookup`` returns ``(entry_or_None, access_latency)``;
    ``ensure`` additionally allocates on a miss.
    """

    #: While a replay kernel holds this cache's state in a
    #: :class:`FlatCghc` image, the dict representation is stale; the
    #: kernel parks the live image here so mid-run observers (the
    #: interval sampler's occupancy series) read current state.  Always
    #: ``None`` outside a kernel.
    _live_flat = None

    def __init__(self, config):
        self.config = config
        self.infinite = config.infinite
        self.max_slots = None if config.infinite else config.slots
        if config.infinite:
            self._store = {}
            self.l1 = None
            self.l2 = None
        else:
            self._store = None
            ways = getattr(config, "assoc", 1)
            self.l1 = DirectMappedCghc(config.l1_entries(), config.slots, ways)
            self.l2 = (
                DirectMappedCghc(config.l2_entries(), config.slots, ways)
                if config.l2_bytes
                else None
            )
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def lookup(self, tag):
        if self.infinite:
            entry = self._store.get(tag)
            if entry is None:
                self.misses += 1
                return None, self.config.l1_latency
            self.l1_hits += 1
            return entry, self.config.l1_latency

        entry = self.l1.probe(tag)
        if entry is not None:
            self.l1_hits += 1
            return entry, self.config.l1_latency
        if self.l2 is not None:
            entry = self.l2.probe(tag)
            if entry is not None:
                self.l2_hits += 1
                self._swap_up(entry)
                return entry, self.config.l2_latency
        self.misses += 1
        latency = (
            self.config.l2_latency if self.l2 is not None else self.config.l1_latency
        )
        return None, latency

    def ensure(self, tag):
        """Lookup, allocating a fresh entry on a miss.

        The first-level probe is inlined: ``ensure`` sits on the CGP
        call/return hot path (two accesses per predicted call and per
        predicted return), and the overwhelming majority of accesses hit
        the direct-mapped first level's single resident entry.
        """
        if not self.infinite:
            l1 = self.l1
            bucket = l1._sets[tag % l1.n_sets]
            if bucket:
                entry = bucket[-1]
                if entry.tag == tag:
                    self.l1_hits += 1
                    return entry, self.config.l1_latency
                for i in range(len(bucket) - 2, -1, -1):
                    entry = bucket[i]
                    if entry.tag == tag:
                        del bucket[i]
                        bucket.append(entry)
                        self.l1_hits += 1
                        return entry, self.config.l1_latency
        entry, latency = self.lookup(tag)
        if entry is not None:
            return entry, latency
        entry = CghcEntry(tag)
        if self.infinite:
            self._store[tag] = entry
        else:
            victim = self.l1.install(entry)
            if victim is not None and self.l2 is not None:
                self.l2.install(victim)
        return entry, latency

    def _swap_up(self, entry):
        """Move an L2-hit entry into L1, displacing the L1 resident into
        L2 (§5.3's two-level exchange)."""
        # vacate the entry's old L2 slot first so it is never duplicated
        self.l2.remove(entry.tag)
        victim = self.l1.install(entry)
        if victim is not None:
            self.l2.install(victim)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def entry_count(self):
        flat = self._live_flat
        if flat is not None:
            return flat.entry_count()
        if self.infinite:
            return len(self._store)
        total = self.l1.entry_count()
        if self.l2 is not None:
            total += self.l2.entry_count()
        return total

    def clone(self):
        """Independent copy for compact warm-start snapshots.  Must not
        be called while a kernel holds the state flat (``_live_flat``);
        snapshots are only taken at kernel boundaries, where the dict
        representation is canonical."""
        dup = CallGraphHistoryCache.__new__(CallGraphHistoryCache)
        dup.config = self.config
        dup.infinite = self.infinite
        dup.max_slots = self.max_slots
        if self.infinite:
            dup._store = {
                tag: entry.clone() for tag, entry in self._store.items()
            }
            dup.l1 = None
            dup.l2 = None
        else:
            dup._store = None
            dup.l1 = self.l1.clone()
            dup.l2 = self.l2.clone() if self.l2 is not None else None
        dup.l1_hits = self.l1_hits
        dup.l2_hits = self.l2_hits
        dup.misses = self.misses
        return dup
