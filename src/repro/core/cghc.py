"""The Call Graph History Cache (§3.2) — the paper's core structure.

Each entry is keyed by a function's starting address and stores:

* ``index`` — 1-based slot pointer into the callee sequence; initialized
  to 1 when the entry is created, incremented on each call update (up to
  one past the slot capacity), and reset to 1 when the function returns;
* ``seq`` — the sequence of starting addresses of the functions called
  during the function's most recent invocation (up to 8 slots in the
  finite configurations; unbounded in the infinite CGHC).

The finite CGHC is direct mapped (the paper found set associativity
unnecessary).  The two-level variant mirrors the two-level cache
hierarchy: a hit in the second level *swaps* the entry with the first
level's resident entry; a miss in both allocates in the first level and
writes the displaced entry back to the second.

Callee identities are stored as function ids (each function id maps 1:1
to a start address under a fixed layout); tags are start-line addresses,
exactly as the hardware would hold them.
"""

from __future__ import annotations

from repro.errors import ConfigError


class CghcEntry:
    """One CGHC entry (tag + index + callee sequence)."""

    __slots__ = ("tag", "index", "seq")

    def __init__(self, tag):
        self.tag = tag
        self.index = 1
        self.seq = []

    def record_call(self, callee_fid, max_slots):
        """Call-update access: store the callee at the slot the index
        points to, then advance the index (§3.2)."""
        slot = self.index - 1
        if max_slots is not None and slot >= max_slots:
            return  # only the first ``max_slots`` callees are kept
        if slot < len(self.seq):
            self.seq[slot] = callee_fid
        else:
            # index never skips, so slot == len(seq) here
            self.seq.append(callee_fid)
        limit = max_slots + 1 if max_slots is not None else self.index + 1
        self.index = min(self.index + 1, limit)

    def predicted_next(self):
        """The callee the index points at (return-prefetch access)."""
        slot = self.index - 1
        if 0 <= slot < len(self.seq):
            return self.seq[slot]
        return None

    def first_callee(self):
        """Slot 1 (call-prefetch access: a just-called function's index
        should be 1)."""
        return self.seq[0] if self.seq else None

    def reset_index(self):
        self.index = 1


class DirectMappedCghc:
    """One level of finite CGHC.

    Direct mapped by default (the paper found associativity unnecessary,
    §3.2); ``ways > 1`` builds a set-associative level with LRU within
    each set — used by the associativity ablation to verify that claim.
    """

    def __init__(self, n_entries, max_slots=8, ways=1):
        if n_entries <= 0 or ways <= 0:
            raise ConfigError("CGHC needs at least one entry and one way")
        self.n_entries = n_entries
        self.max_slots = max_slots
        self.ways = ways
        self.n_sets = max(1, n_entries // ways)
        self._sets = [[] for _ in range(self.n_sets)]

    def set_of(self, tag):
        return tag % self.n_sets

    def probe(self, tag):
        """Return the entry on a tag hit (LRU refresh), else None."""
        bucket = self._sets[tag % self.n_sets]
        if not bucket:
            return None
        entry = bucket[-1]  # MRU first: direct-mapped levels hit here
        if entry.tag == tag:
            return entry
        for i in range(len(bucket) - 2, -1, -1):
            entry = bucket[i]
            if entry.tag == tag:
                del bucket[i]
                bucket.append(entry)
                return entry
        return None

    def remove(self, tag):
        """Drop and return the entry with ``tag`` if present."""
        bucket = self._sets[tag % self.n_sets]
        for i, entry in enumerate(bucket):
            if entry.tag == tag:
                del bucket[i]
                return entry
        return None

    def install(self, entry):
        """Place ``entry`` in its set; returns the displaced entry."""
        bucket = self._sets[entry.tag % self.n_sets]
        victim = None
        for i, existing in enumerate(bucket):
            if existing.tag == entry.tag:
                victim = existing
                del bucket[i]
                break
        if victim is None and len(bucket) >= self.ways:
            victim = bucket.pop(0)
        bucket.append(entry)
        return victim

    def entry_count(self):
        return sum(len(bucket) for bucket in self._sets)


class CallGraphHistoryCache:
    """The full CGHC: one or two levels, or infinite.

    ``lookup`` returns ``(entry_or_None, access_latency)``;
    ``ensure`` additionally allocates on a miss.
    """

    def __init__(self, config):
        self.config = config
        self.infinite = config.infinite
        self.max_slots = None if config.infinite else config.slots
        if config.infinite:
            self._store = {}
            self.l1 = None
            self.l2 = None
        else:
            self._store = None
            ways = getattr(config, "assoc", 1)
            self.l1 = DirectMappedCghc(config.l1_entries(), config.slots, ways)
            self.l2 = (
                DirectMappedCghc(config.l2_entries(), config.slots, ways)
                if config.l2_bytes
                else None
            )
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def lookup(self, tag):
        if self.infinite:
            entry = self._store.get(tag)
            if entry is None:
                self.misses += 1
                return None, self.config.l1_latency
            self.l1_hits += 1
            return entry, self.config.l1_latency

        entry = self.l1.probe(tag)
        if entry is not None:
            self.l1_hits += 1
            return entry, self.config.l1_latency
        if self.l2 is not None:
            entry = self.l2.probe(tag)
            if entry is not None:
                self.l2_hits += 1
                self._swap_up(entry)
                return entry, self.config.l2_latency
        self.misses += 1
        latency = (
            self.config.l2_latency if self.l2 is not None else self.config.l1_latency
        )
        return None, latency

    def ensure(self, tag):
        """Lookup, allocating a fresh entry on a miss.

        The first-level probe is inlined: ``ensure`` sits on the CGP
        call/return hot path (two accesses per predicted call and per
        predicted return), and the overwhelming majority of accesses hit
        the direct-mapped first level's single resident entry.
        """
        if not self.infinite:
            l1 = self.l1
            bucket = l1._sets[tag % l1.n_sets]
            if bucket:
                entry = bucket[-1]
                if entry.tag == tag:
                    self.l1_hits += 1
                    return entry, self.config.l1_latency
                for i in range(len(bucket) - 2, -1, -1):
                    entry = bucket[i]
                    if entry.tag == tag:
                        del bucket[i]
                        bucket.append(entry)
                        self.l1_hits += 1
                        return entry, self.config.l1_latency
        entry, latency = self.lookup(tag)
        if entry is not None:
            return entry, latency
        entry = CghcEntry(tag)
        if self.infinite:
            self._store[tag] = entry
        else:
            victim = self.l1.install(entry)
            if victim is not None and self.l2 is not None:
                self.l2.install(victim)
        return entry, latency

    def _swap_up(self, entry):
        """Move an L2-hit entry into L1, displacing the L1 resident into
        L2 (§5.3's two-level exchange)."""
        # vacate the entry's old L2 slot first so it is never duplicated
        self.l2.remove(entry.tag)
        victim = self.l1.install(entry)
        if victim is not None:
            self.l2.install(victim)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def entry_count(self):
        if self.infinite:
            return len(self._store)
        total = self.l1.entry_count()
        if self.l2 is not None:
            total += self.l2.entry_count()
        return total
