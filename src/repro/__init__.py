"""repro: a full-system reproduction of "Call Graph Prefetching for
Database Applications" (HPCA 2001).

Subpackages:

* :mod:`repro.core`        — the paper's contribution: CGHC + CGP prefetcher
* :mod:`repro.db`          — the layered DBMS substrate (SHORE analog)
* :mod:`repro.workloads`   — Wisconsin, TPC-H, CPU2000, the 4 paper suites
* :mod:`repro.instrument`  — Python execution -> instruction traces
* :mod:`repro.layout`      — O5/OM address layouts (Pettis-Hansen, OM analog)
* :mod:`repro.uarch`       — the fetch-driven timing simulator (Table 1)
* :mod:`repro.harness`     — per-figure experiment drivers and reports

Quick tour::

    from repro.db import Database
    from repro.instrument import Tracer, build_db_image
    from repro.instrument.expand import ExpansionConfig, expand_trace
    from repro.layout import om_layout, profile_of
    from repro.uarch import TABLE_1, simulate
    from repro.core import CgpPrefetcher
    from repro.uarch.config import CghcConfig

See README.md and examples/quickstart.py.
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
