"""DBMS layer classification from CodeImage module paths.

The paper discusses instruction misses by database layer (parser ->
optimizer -> execution operators -> storage).  Our traced functions
carry the defining module's dotted path
(:class:`~repro.instrument.codeimage.FunctionInfo` ``.module``), so the
layer falls out of a prefix match.  Synthetic runtime helpers
(``rt::helper_NNN``, materialized by :mod:`repro.instrument.expand`)
have no module and land in ``runtime``.
"""

from __future__ import annotations

#: Dotted-module-prefix -> layer, longest prefix wins.
_LAYER_PREFIXES = (
    ("repro.db.parser", "parser"),
    ("repro.db.optimizer", "optimizer"),
    ("repro.db.exec", "exec"),
    ("repro.db.storage", "storage"),
    ("repro.db.server", "server"),
    ("repro.db", "db-core"),
)

#: Every layer a function can be attributed to.
LAYER_NAMES = ("parser", "optimizer", "exec", "storage", "server",
               "db-core", "runtime", "other")


def layer_of_module(module):
    """Map a dotted module path (or None) to a DBMS layer name."""
    if module is None:
        return "runtime"
    for prefix, layer in _LAYER_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return layer
    return "other"
