"""Prefetch lifecycle tracing: issue -> arrival -> first use / eviction.

A :class:`PrefetchLifecycle` keeps one open record per in-flight-or-
untouched prefetched line (the engines guarantee at most one active
prefetch per line: a second request for the same line squashes) and
closes it on the first demand touch, on eviction, or at end of run.
Closed records land in a fixed-capacity ring buffer, so tracing a long
run costs bounded memory; overwritten records are counted in
``dropped``.

Cycle timestamps are the engine's own, so a record directly yields the
paper-style timeliness story: ``arrival - issue`` is the memory round
trip, ``use - issue`` the achieved lead time, and for delayed hits
``arrival - use`` is how late the prefetch was.
"""

from __future__ import annotations

from typing import NamedTuple


class PrefetchRecord(NamedTuple):
    line: int
    origin: str
    issue_cycle: float
    arrival_cycle: float
    outcome: str  # "pref_hit" | "delayed_hit" | "useless"
    end_cycle: float  # first-use cycle, eviction cycle, or end of run


class PrefetchLifecycle:
    """Ring-buffer tracer for individual prefetch lifetimes."""

    def __init__(self, capacity=4096):
        if capacity <= 0:
            raise ValueError("lifecycle ring capacity must be positive")
        self.capacity = capacity
        self._ring = []
        self._next = 0  # overwrite cursor once the ring is full
        self._open = {}  # line -> (origin, issue_cycle, arrival_cycle)
        self.recorded = 0
        self.dropped = 0

    def issue(self, line, origin, issue_cycle, arrival_cycle):
        self._open[line] = (origin, issue_cycle, arrival_cycle)

    def close(self, line, outcome, end_cycle):
        opened = self._open.pop(line, None)
        if opened is None:
            return  # issued before tracing started; nothing to close
        origin, issue_cycle, arrival_cycle = opened
        record = PrefetchRecord(
            line, origin, issue_cycle, arrival_cycle, outcome, end_cycle
        )
        self.recorded += 1
        if len(self._ring) < self.capacity:
            self._ring.append(record)
        else:
            self._ring[self._next] = record
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    def records(self):
        """Closed records, oldest first."""
        return self._ring[self._next:] + self._ring[:self._next]

    def open_count(self):
        return len(self._open)

    def summary(self):
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "open": len(self._open),
        }
