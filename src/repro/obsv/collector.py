"""Per-function / per-layer attribution of simulator events.

The :class:`AttributionCollector` is the hub of the observability
layer: both replay engines call into it (when attached) from the same
classification points — demand misses, the Figure-8 prefetch outcomes,
CGHC accesses — passing the *line address* involved.  The collector
resolves lines to function ids through a table built once from the
:class:`~repro.layout.layouts.AddressMap` (functions occupy contiguous
line spans, so the table is a flat list fill), and aggregates counters
per function and, through the
:class:`~repro.instrument.codeimage.CodeImage` module metadata, per
DBMS layer.

The collector deliberately has no locks, no branches on the hot path
beyond dict/list indexing, and no engine state of its own: everything
it reports is a pure function of the calls the engines make, which is
what lets the cross-engine equivalence suites require bit-identical
payloads from both cores.
"""

from __future__ import annotations

from repro.obsv.interval import IntervalSampler
from repro.obsv.layers import layer_of_module
from repro.obsv.lifecycle import PrefetchLifecycle

#: Version of the ``to_dict()`` payload layout.
ATTRIBUTION_SCHEMA_VERSION = 1

#: Per-function counter names, in row order.
COUNTER_NAMES = (
    "demand_misses", "memory_fetches", "pref_hits", "delayed_hits",
    "useless", "squashed", "issued", "cghc_l1_hits", "cghc_l2_hits",
    "cghc_misses",
)

_N = len(COUNTER_NAMES)
# row indices (module-level so the engines' call sites stay readable)
_DEMAND, _MEM, _PREF_HIT, _DELAYED, _USELESS, _SQUASHED, _ISSUED = range(7)
_CGHC_BASE = 7  # + level (0 = l1 hit, 1 = l2 hit, 2 = miss)


class AttributionCollector:
    """Buckets simulator events per function id and DBMS layer.

    ``layout`` maps lines to functions; ``image`` (optional) supplies
    names and defining modules for the report.  ``interval`` (an
    instruction count) attaches an :class:`IntervalSampler`;
    ``lifecycle`` (a ring capacity) attaches a
    :class:`PrefetchLifecycle` tracer.
    """

    def __init__(self, layout, image=None, interval=None, lifecycle=0):
        self._image = image
        base = layout.base_line
        sizes = layout.size_lines
        fid_of = [-1] * layout.total_lines
        for fid in range(len(base)):
            start = base[fid]
            span = sizes[fid]
            fid_of[start:start + span] = [fid] * span
        self._fid_of = fid_of
        self._rows = {}  # fid -> [counter] * len(COUNTER_NAMES)
        self._out_of_range = {}  # origin -> count
        self._lateness = {}  # origin -> {power-of-two bucket -> count}
        self.interval = IntervalSampler(interval) if interval else None
        self.lifecycle = PrefetchLifecycle(lifecycle) if lifecycle else None

    def _row(self, fid):
        row = self._rows.get(fid)
        if row is None:
            row = [0] * _N
            self._rows[fid] = row
        return row

    # ------------------------------------------------------------------
    # engine call sites
    # ------------------------------------------------------------------
    def demand_miss(self, line, from_mem):
        row = self._row(self._fid_of[line])
        row[_DEMAND] += 1
        if from_mem:
            row[_MEM] += 1

    def issued(self, line, origin, cycle, arrival):
        self._row(self._fid_of[line])[_ISSUED] += 1
        if self.lifecycle is not None:
            self.lifecycle.issue(line, origin, cycle, arrival)

    def squashed(self, line, origin):
        self._row(self._fid_of[line])[_SQUASHED] += 1

    def out_of_range(self, origin):
        # no in-range line to attribute to: counted per origin only
        self._out_of_range[origin] = self._out_of_range.get(origin, 0) + 1

    def pref_hit(self, line, origin, cycle):
        self._row(self._fid_of[line])[_PREF_HIT] += 1
        if self.lifecycle is not None:
            self.lifecycle.close(line, "pref_hit", cycle)

    def delayed_hit(self, line, origin, stall, cycle):
        self._row(self._fid_of[line])[_DELAYED] += 1
        bucket = int(stall).bit_length()  # 2^(b-1) <= late < 2^b
        hist = self._lateness.get(origin)
        if hist is None:
            hist = self._lateness[origin] = {}
        hist[bucket] = hist.get(bucket, 0) + 1
        if self.lifecycle is not None:
            self.lifecycle.close(line, "delayed_hit", cycle)

    def useless(self, line, origin, cycle):
        self._row(self._fid_of[line])[_USELESS] += 1
        if self.lifecycle is not None:
            self.lifecycle.close(line, "useless", cycle)

    def cghc_access(self, tag, level):
        """One CGHC access keyed by ``tag`` (a function's entry line);
        ``level`` is 0 (first-level hit), 1 (second-level hit), or 2
        (miss)."""
        self._row(self._fid_of[tag])[_CGHC_BASE + level] += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _describe(self, fid):
        if fid < 0 or self._image is None:
            return None, None
        info = self._image.info(fid)
        return info.name, getattr(info, "module", None)

    def function_table(self):
        """fid -> {name, module, layer, counters...}, insertion order."""
        table = {}
        for fid, row in self._rows.items():
            name, module = self._describe(fid)
            entry = {"name": name, "module": module,
                     "layer": layer_of_module(module)}
            entry.update(zip(COUNTER_NAMES, row))
            table[fid] = entry
        return table

    def layer_table(self):
        """Layer -> summed counters, sorted by demand misses."""
        layers = {}
        for fid, row in self._rows.items():
            _name, module = self._describe(fid)
            layer = layer_of_module(module)
            bucket = layers.get(layer)
            if bucket is None:
                bucket = layers[layer] = [0] * _N
            for i in range(_N):
                bucket[i] += row[i]
        return {
            layer: dict(zip(COUNTER_NAMES, counts))
            for layer, counts in sorted(
                layers.items(), key=lambda kv: -kv[1][_DEMAND]
            )
        }

    def top_functions(self, k=10, by="demand_misses"):
        """The k hottest functions by one counter, descending."""
        index = COUNTER_NAMES.index(by)
        ranked = sorted(
            self._rows.items(), key=lambda kv: (-kv[1][index], kv[0])
        )
        table = []
        for fid, row in ranked[:k]:
            if row[index] == 0:
                break
            name, module = self._describe(fid)
            entry = {"fid": fid, "name": name,
                     "layer": layer_of_module(module)}
            entry.update(zip(COUNTER_NAMES, row))
            table.append(entry)
        return table

    def lateness_histogram(self):
        """origin -> {bucket -> count}; bucket b covers delayed hits
        late by [2^(b-1), 2^b) cycles (b = 0: under one cycle)."""
        return {
            origin: dict(sorted(hist.items()))
            for origin, hist in sorted(self._lateness.items())
        }

    def to_dict(self):
        """JSON-ready attribution payload (stable key order)."""
        return {
            "schema_version": ATTRIBUTION_SCHEMA_VERSION,
            "functions": {
                str(fid): entry
                for fid, entry in sorted(self.function_table().items())
            },
            "layers": self.layer_table(),
            "out_of_range": dict(sorted(self._out_of_range.items())),
            "lateness": {
                origin: {str(b): n for b, n in sorted(hist.items())}
                for origin, hist in sorted(self._lateness.items())
            },
            "lifecycle": (None if self.lifecycle is None
                          else self.lifecycle.summary()),
            "intervals": [] if self.interval is None else self.interval.samples,
        }


def validate_payload(payload):
    """Validate an attribution payload against the v1 schema.

    Raises ``ValueError`` naming the first violation; used by
    ``scripts/report_attrib.py`` (and CI) to fail loudly on drift.
    """
    def fail(msg):
        raise ValueError(f"attribution payload: {msg}")

    if not isinstance(payload, dict):
        fail("not a dict")
    if payload.get("schema_version") != ATTRIBUTION_SCHEMA_VERSION:
        fail(f"schema_version {payload.get('schema_version')!r} != "
             f"{ATTRIBUTION_SCHEMA_VERSION}")
    for key in ("functions", "layers", "out_of_range", "lateness",
                "lifecycle", "intervals"):
        if key not in payload:
            fail(f"missing key {key!r}")

    total_delayed = 0
    for fid, entry in payload["functions"].items():
        if not str(fid).lstrip("-").isdigit():
            fail(f"non-integer function id {fid!r}")
        for counter in COUNTER_NAMES:
            value = entry.get(counter)
            if not isinstance(value, int) or value < 0:
                fail(f"function {fid}: bad counter {counter}={value!r}")
        # every issued prefetch is classified exactly once, to the
        # same line (hence the same function) it was issued for
        accounted = (entry["pref_hits"] + entry["delayed_hits"]
                     + entry["useless"])
        if entry["issued"] != accounted:
            fail(f"function {fid}: issued {entry['issued']} != "
                 f"accounted {accounted}")
        total_delayed += entry["delayed_hits"]

    for layer, entry in payload["layers"].items():
        for counter in COUNTER_NAMES:
            value = entry.get(counter)
            if not isinstance(value, int) or value < 0:
                fail(f"layer {layer}: bad counter {counter}={value!r}")
    for counter in COUNTER_NAMES:
        functions_sum = sum(
            e[counter] for e in payload["functions"].values()
        )
        layers_sum = sum(e[counter] for e in payload["layers"].values())
        if functions_sum != layers_sum:
            fail(f"layer rollup of {counter} ({layers_sum}) != "
                 f"function total ({functions_sum})")

    lateness_total = sum(
        n for hist in payload["lateness"].values() for n in hist.values()
    )
    if lateness_total != total_delayed:
        fail(f"lateness histogram total {lateness_total} != "
             f"delayed hits {total_delayed}")

    previous = None
    for sample in payload["intervals"]:
        for key in ("instructions", "cycles", "ipc", "miss_rate",
                    "prefetch_usefulness", "partial"):
            if key not in sample:
                fail(f"interval sample missing {key!r}")
        if previous is not None and sample["instructions"] < previous:
            fail("interval samples not ordered by instructions")
        previous = sample["instructions"]
    return payload
