"""Opt-in observability for the replay core (see docs/OBSERVABILITY.md).

The simulator's :class:`~repro.uarch.stats.SimStats` reports whole-run
aggregates; this package explains them.  An
:class:`~repro.obsv.collector.AttributionCollector` handed to
``simulate(..., collector=...)`` buckets every demand miss, prefetch
outcome, and CGHC access by function id and DBMS layer, samples
windowed time-series (:class:`~repro.obsv.interval.IntervalSampler`),
and traces individual prefetches from issue to first use or eviction
(:class:`~repro.obsv.lifecycle.PrefetchLifecycle`).

Collection is opt-in and zero-cost when disabled: engines carry a
``collector`` attribute that is ``None`` by default, and every
instrumentation site is guarded by that single reference.  Both replay
engines produce identical ``SimStats`` *and* identical attribution
payloads with collection on or off (enforced by the cross-engine
equivalence suites).
"""

from repro.obsv.collector import (
    ATTRIBUTION_SCHEMA_VERSION,
    AttributionCollector,
    validate_payload,
)
from repro.obsv.interval import IntervalSampler
from repro.obsv.layers import LAYER_NAMES, layer_of_module
from repro.obsv.lifecycle import PrefetchLifecycle, PrefetchRecord

__all__ = [
    "ATTRIBUTION_SCHEMA_VERSION",
    "AttributionCollector",
    "IntervalSampler",
    "LAYER_NAMES",
    "PrefetchLifecycle",
    "PrefetchRecord",
    "layer_of_module",
    "validate_payload",
]
