"""Windowed time-series sampling over a running simulation.

An :class:`IntervalSampler` attached to an
:class:`~repro.obsv.collector.AttributionCollector` snapshots the
engine every ``every_instrs`` committed instructions, at the first
event boundary on or past each window edge (events are the simulator's
atomic unit, so a single large EXEC event can cover several window
edges — the sampler then emits one sample and skips the covered
edges, exactly the same way in both engines).  A final partial sample
is taken at end of run when instructions accumulated past the last
boundary.

Each sample carries cumulative totals plus per-window deltas and rates:
an IPC proxy (window instructions / window cycles), the L1 demand miss
rate, prefetch usefulness (useful / issued in the window), and CGHC
occupancy.  Samples are JSON-ready and can be appended to a
:class:`~repro.harness.telemetry.RunJournal` as ``interval`` events.
"""

from __future__ import annotations


class IntervalSampler:
    """Samples engine state every N committed instructions."""

    def __init__(self, every_instrs):
        if every_instrs <= 0:
            raise ValueError("sampling interval must be positive")
        self.every = every_instrs
        self.next_at = every_instrs
        self.samples = []
        # cumulative totals at the previous sample (window deltas)
        self._prev = (0, 0.0, 0, 0, 0, 0)

    def take(self, engine, partial=False):
        """Record one sample from a live engine (both cores call this at
        event boundaries with identical live state, so the emitted
        samples are bit-identical across engines)."""
        stats = engine.stats
        instructions = stats.instructions
        cycles = engine.cycle
        accesses = stats.line_accesses
        misses = stats.demand_misses
        issued = useful = 0
        for p in stats.prefetch.values():
            issued += p.issued
            useful += p.pref_hits + p.delayed_hits
        p_instr, p_cycles, p_acc, p_miss, p_issued, p_useful = self._prev
        d_instr = instructions - p_instr
        d_cycles = cycles - p_cycles
        d_acc = accesses - p_acc
        d_miss = misses - p_miss
        d_issued = issued - p_issued
        d_useful = useful - p_useful
        cghc = getattr(engine.prefetcher, "cghc", None)
        self.samples.append({
            "instructions": instructions,
            "cycles": cycles,
            "window_instructions": d_instr,
            "window_cycles": d_cycles,
            "ipc": (d_instr / d_cycles) if d_cycles else 0.0,
            "window_line_accesses": d_acc,
            "window_demand_misses": d_miss,
            "miss_rate": (d_miss / d_acc) if d_acc else 0.0,
            "window_prefetches_issued": d_issued,
            "window_prefetches_useful": d_useful,
            "prefetch_usefulness": (d_useful / d_issued) if d_issued else 0.0,
            "cghc_entries": None if cghc is None else cghc.entry_count(),
            "partial": partial,
        })
        self._prev = (instructions, cycles, accesses, misses, issued, useful)
        while self.next_at <= instructions:
            self.next_at += self.every

    def finalize(self, engine):
        """Emit the trailing partial window, if any instructions landed
        in it since the last full sample."""
        if engine.stats.instructions > self._prev[0]:
            self.take(engine, partial=True)

    def write_journal(self, journal, **context):
        """Append every sample to a RunJournal as ``interval`` events.

        ``context`` fields (suite, layout, prefetcher, ...) are merged
        into each record so mixed journals stay self-describing.
        """
        for index, sample in enumerate(self.samples):
            journal.write("interval", index=index, **context, **sample)
