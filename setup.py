"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that legacy
``pip install -e .`` works in offline environments where the ``wheel``
package (needed by the PEP-660 editable path) is unavailable.
"""

from setuptools import setup

setup()
