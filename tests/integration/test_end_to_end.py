"""End-to-end: DBMS -> tracer -> expansion -> layouts -> simulator.

One tiny workload flows through every subsystem; assertions check the
paper's qualitative results all the way through.
"""

import pytest

from repro.core import CgpPrefetcher
from repro.instrument import Tracer, build_db_image, validate_trace
from repro.instrument.expand import ExpansionConfig, expand_trace
from repro.layout import o5_layout, om_layout, profile_of
from repro.uarch import TABLE_1, simulate
from repro.uarch.config import CghcConfig
from repro.uarch.prefetch import NextNLinePrefetcher
from repro.workloads.suites import build_suite


@pytest.fixture(scope="module")
def pipeline():
    image = build_db_image()
    suite = build_suite("wisc-prof", scale=0.2, quantum_rows=2)
    tracer = Tracer(image)
    results = tracer.run(suite.run)
    trace = expand_trace(tracer.trace, image, ExpansionConfig())
    profile = profile_of(trace)
    return {
        "image": image,
        "trace": trace,
        "results": results,
        "profile": profile,
        "o5": o5_layout(image),
        "om": om_layout(image, profile),
    }


def test_queries_returned_correct_rows(pipeline):
    results = pipeline["results"]
    assert set(results) == {"wisc_q1", "wisc_q5", "wisc_q9"}
    assert all(rows for rows in results.values())


def test_trace_well_formed(pipeline):
    depth = validate_trace(pipeline["trace"], pipeline["image"])
    assert depth >= 8  # layered DBMS + runtime helpers


def test_figure2_call_path_present():
    """The paper's Create_rec example (Figure 2): tracing record creation
    must show create_rec calling into the buffer-pool lookup path."""
    from repro.db import Database

    image = build_db_image()
    db = Database(pool_pages=8)  # tiny pool: force Getpage_from_disk too
    db.create_table("t", [("a", "int"), ("pad", ("str", 64))])

    def insert_rows():
        # per-row inserts: the Figure 2 path is Create_rec -> find space
        # -> getpage (bulk load deliberately bypasses it)
        table = db.catalog.table("t")
        with db.storage.begin() as txn:
            for i in range(600):
                table.insert(txn, (i, "x" * 60))
        with db.storage.begin() as txn:
            return sum(1 for _ in table.scan(txn))

    tracer = Tracer(image)
    count = tracer.run(insert_rows)
    assert count == 600
    profile = profile_of(tracer.trace)
    create_rec = image.fid_by_name("StorageManager.create_rec")
    find_page = image.fid_by_name("BufferPool.find_page_in_buffer_pool")
    getpage = image.fid_by_name("BufferPool.getpage_from_disk")
    lock_page = image.fid_by_name("StorageManager.lock_page")
    called_by_create_rec = {
        callee for (caller, callee) in profile.edge_counts if caller == create_rec
    }
    names = {image.name_of(f) for f in called_by_create_rec}
    assert any("_find_space" in n for n in names)
    assert any("lock_page" in n for n in names)
    assert profile.call_counts[find_page] > 0
    assert profile.call_counts[getpage] > 0  # pool misses under pressure
    assert profile.call_counts[lock_page] > 0
    # the sequence is highly repetitive: create_rec's fanout is small,
    # exactly the predictability CGP exploits (§3.1)
    assert len(called_by_create_rec) <= 8


def test_fanout_statistic_matches_paper(pipeline):
    fraction = pipeline["profile"].fraction_with_fanout_below(8)
    assert 0.6 <= fraction <= 0.95  # paper: 0.80


def test_layouts_cover_same_functions(pipeline):
    o5 = pipeline["o5"]
    om = pipeline["om"]
    assert len(o5.base_line) == len(om.base_line)
    assert om.footprint_bytes() < o5.footprint_bytes()  # OM compacts


def test_full_stack_orderings(pipeline):
    trace = pipeline["trace"]
    o5 = pipeline["o5"]
    om = pipeline["om"]
    s_o5 = simulate(trace, o5, TABLE_1)
    s_om = simulate(trace, om, TABLE_1)
    s_nl = simulate(trace, om, TABLE_1, prefetcher=NextNLinePrefetcher(4))
    s_cgp = simulate(
        trace, om, TABLE_1, prefetcher=CgpPrefetcher(4, CghcConfig(), om)
    )
    assert s_o5.cycles > s_om.cycles > s_nl.cycles > s_cgp.cycles
    assert s_o5.demand_misses > s_om.demand_misses
    assert s_nl.demand_misses > s_cgp.demand_misses
    # CGP's CGHC portion must be more accurate than its NL portion
    nl_part = s_cgp.prefetch_origin("nl")
    cghc_part = s_cgp.prefetch_origin("cghc")
    assert (
        cghc_part.useful() / max(1, cghc_part.accounted())
        > nl_part.useful() / max(1, nl_part.accounted())
    )


def test_determinism_end_to_end():
    def build():
        image = build_db_image()
        suite = build_suite("wisc-prof", scale=0.1, quantum_rows=2)
        tracer = Tracer(image)
        tracer.run(suite.run)
        return expand_trace(tracer.trace, image, ExpansionConfig()), image

    trace_a, image_a = build()
    trace_b, _image_b = build()
    assert trace_a.kinds == trace_b.kinds
    assert trace_a.a == trace_b.a
    assert trace_a.b == trace_b.b
    assert trace_a.c == trace_b.c
