"""Memory system: FIFO port, L2 hit/miss latency."""

from repro.uarch.config import SimConfig
from repro.uarch.memsys import MemorySystem


def make(config=None):
    return MemorySystem(config or SimConfig())


def test_l2_miss_then_hit_latency():
    mem = make()
    first, from_mem = mem.request(5, now=0)
    assert from_mem
    assert first == 16 + 80  # L2 hit latency + memory
    second, from_mem2 = mem.request(5, now=200)
    assert not from_mem2
    assert second == 200 + 16


def test_fifo_port_serializes_requests():
    mem = make()
    mem.request(0, now=0)
    # second request at the same instant waits for the port (occupancy 2)
    completion, _ = mem.request(1, now=0)
    assert completion == 2 + 16 + 80


def test_port_frees_over_time():
    mem = make()
    mem.request(0, now=0)
    completion, _ = mem.request(1, now=100)
    assert completion == 100 + 96  # no queueing by then


def test_prefetches_share_the_port_with_demand():
    """§3.3: no priority for demand misses."""
    mem = make()
    for line in range(4):
        mem.request(line, now=0, is_prefetch=True)
    completion, _ = mem.request(99, now=0, is_prefetch=False)
    # four prefetches occupy the port for 8 cycles before the demand miss
    assert completion == 8 + 96


def test_transactions_counted():
    mem = make()
    mem.request(0, now=0)
    mem.request(1, now=0, is_prefetch=True)
    assert mem.transactions == 2
    assert mem.l2_misses == 2


def test_l2_caches_lines_across_requests():
    mem = make()
    mem.request(7, now=0)
    assert mem.l2.contains(7)
    _completion, from_mem = mem.request(7, now=500)
    assert not from_mem
    assert mem.l2_hits == 1
