"""L2 port demand-priority ablation (§3.3 discusses the trade-off)."""

from repro.uarch.config import SimConfig
from repro.uarch.memsys import MemorySystem


def test_fifo_demand_waits_behind_prefetches():
    mem = MemorySystem(SimConfig())
    for line in range(4):
        mem.request(line, now=0, is_prefetch=True)
    completion, _ = mem.request(99, now=0, is_prefetch=False)
    assert completion == 8 + 96  # queued behind four prefetches


def test_priority_demand_bypasses_prefetches():
    mem = MemorySystem(SimConfig(l2_demand_priority=True))
    for line in range(4):
        mem.request(line, now=0, is_prefetch=True)
    completion, _ = mem.request(99, now=0, is_prefetch=False)
    assert completion == 96  # no queueing behind prefetch traffic


def test_priority_demands_still_serialize_among_themselves():
    mem = MemorySystem(SimConfig(l2_demand_priority=True))
    mem.request(1, now=0, is_prefetch=False)
    completion, _ = mem.request(2, now=0, is_prefetch=False)
    assert completion == 2 + 96


def test_priority_prefetches_wait_behind_demand():
    mem = MemorySystem(SimConfig(l2_demand_priority=True))
    mem.request(1, now=0, is_prefetch=False)
    completion, _ = mem.request(2, now=0, is_prefetch=True)
    assert completion == 2 + 96


def test_priority_never_slower_end_to_end(prof_artifacts):
    """With demand priority, an NL-heavy run cannot get slower."""
    from dataclasses import replace

    from repro.uarch import TABLE_1, simulate
    from repro.uarch.prefetch import NextNLinePrefetcher

    layout = prof_artifacts.layout("OM")
    trace = prof_artifacts.trace
    fifo = simulate(trace, layout, TABLE_1, prefetcher=NextNLinePrefetcher(4))
    prio = simulate(
        trace, layout, replace(TABLE_1, l2_demand_priority=True),
        prefetcher=NextNLinePrefetcher(4),
    )
    assert prio.cycles <= fifo.cycles * 1.001
