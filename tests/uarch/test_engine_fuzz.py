"""Differential fuzz layer: reference vs fast vs sharded replay.

The perf work in ``fast_engine``/``shard`` only stays honest while all
three execution paths remain *bit-identical* — same ``SimStats`` dict
(floats included), same attribution payloads.  This suite drives
hypothesis-generated traces (including ``SWITCH`` quantum markers, which
the equivalence suite's strategy never emits), layouts, and prefetcher
configs through all three paths, plus arbitrary shard cut points.

**Seed journaling** — set ``REPRO_FUZZ_JOURNAL=/path/file.jsonl`` and
every falsifying example is appended as a JSON line carrying the test
name and the full trace event arrays; :func:`trace_from_payload`
rebuilds the exact trace for offline replay.  Hypothesis shrinking may
journal several lines per failure — the *last* line for a test is the
minimal example.  ``REPRO_FUZZ_EXAMPLES`` bounds the example count (CI
smoke sets a small value; the default is sized for local runs).
"""

import json
import os
from functools import wraps

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.instrument.trace import Trace
from repro.obsv import AttributionCollector
from repro.uarch.fetch_engine import simulate
from repro.uarch.shard import replay_sharded

from tests.uarch.test_engine_equivalence import (
    FUNC_SIZE,
    LAYOUTS,
    N_FUNCTIONS,
    PREFETCHERS,
    SMALL_CONFIG,
    build_layout,
    make_prefetcher,
)

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "40"))
JOURNAL_PATH = os.environ.get("REPRO_FUZZ_JOURNAL", "")

FUZZ = settings(max_examples=MAX_EXAMPLES, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# journaling
# ----------------------------------------------------------------------

def trace_payload(trace):
    """Trace -> JSON-serializable parallel event arrays."""
    return [list(trace.kinds), list(trace.a), list(trace.b), list(trace.c)]


def trace_from_payload(payload):
    """Rebuild the exact trace a journal entry recorded."""
    trace = Trace()
    trace.extend_arrays(*payload)
    return trace


def journaled(fn):
    """Append each falsifying example to the failure journal, then
    re-raise so hypothesis proceeds (shrinking included) as usual."""
    if not JOURNAL_PATH:
        return fn

    @wraps(fn)
    def wrapper(**kwargs):
        try:
            fn(**kwargs)
        except Exception as exc:
            entry = {"test": fn.__name__, "error": repr(exc)}
            for key, value in kwargs.items():
                entry[key] = (trace_payload(value)
                              if isinstance(value, Trace) else value)
            with open(JOURNAL_PATH, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(entry) + "\n")
            raise

    return wrapper


# ----------------------------------------------------------------------
# trace strategy: the equivalence suite's shapes plus SWITCH events
# ----------------------------------------------------------------------

@st.composite
def fuzz_traces(draw):
    """Well-formed traces biased toward every fast-path edge at once:
    ascending runs (batching), same-line repeats (``OP_EXEC_REP``),
    tail offsets (out-of-range fan-outs), call/return nests (RAS, CGP),
    and context switches (shard-boundary magnets)."""
    trace = Trace()
    stack = []
    for _ in range(draw(st.integers(1, 60))):
        action = draw(st.sampled_from(
            ["exec", "exec", "run", "repeat", "call", "ret", "switch"]))
        if action in ("exec", "run", "repeat"):
            fid = stack[-1] if stack else draw(
                st.integers(0, N_FUNCTIONS - 1))
            if action == "run":
                lo = draw(st.integers(0, FUNC_SIZE - 2))
                trace.add_exec(fid, lo, draw(st.integers(lo, FUNC_SIZE - 1)))
            elif action == "repeat":
                off = draw(st.integers(0, FUNC_SIZE - 1))
                trace.add_exec(fid, off, off)
                trace.add_exec(fid, off, off)
            else:
                trace.add_exec(fid, draw(st.integers(0, FUNC_SIZE - 1)),
                               draw(st.integers(0, FUNC_SIZE - 1)))
        elif action == "call" and len(stack) < 8:
            callee = draw(st.integers(0, N_FUNCTIONS - 1))
            trace.add_call(callee, stack[-1] if stack else -1,
                           draw(st.integers(0, FUNC_SIZE - 1)))
            stack.append(callee)
        elif action == "ret" and stack:
            fid = stack.pop()
            trace.add_return(fid, stack[-1] if stack else -1, 0)
        elif action == "switch":
            trace.add_switch(draw(st.integers(0, 3)))
    while stack:
        fid = stack.pop()
        trace.add_return(fid, stack[-1] if stack else -1, 0)
    return trace


# ----------------------------------------------------------------------
# the differential properties
# ----------------------------------------------------------------------

@FUZZ
@given(trace=fuzz_traces(), pf=st.sampled_from(PREFETCHERS),
       degree=st.integers(1, 4), layout_kind=st.sampled_from(LAYOUTS),
       n_shards=st.integers(1, 4))
@journaled
def test_three_way_equivalence(trace, pf, degree, layout_kind, n_shards):
    """reference == fast == sharded-fast, for every counter and float."""
    layout = build_layout(layout_kind)
    ref = simulate(trace, layout, SMALL_CONFIG,
                   prefetcher=make_prefetcher(pf, layout, degree),
                   engine="reference").to_dict()
    fast = simulate(trace, layout, SMALL_CONFIG,
                    prefetcher=make_prefetcher(pf, layout, degree),
                    engine="fast").to_dict()
    sharded = replay_sharded(trace, layout, SMALL_CONFIG,
                             prefetcher=make_prefetcher(pf, layout, degree),
                             n_shards=n_shards).to_dict()
    assert ref == fast
    assert fast == sharded


@FUZZ
@given(trace=fuzz_traces(), pf=st.sampled_from(PREFETCHERS),
       cuts=st.lists(st.integers(0, 10_000), max_size=5))
@journaled
def test_sharded_at_arbitrary_boundaries(trace, pf, cuts):
    """Any strictly-rising cut set is a sound segmentation — shard
    boundaries are not privileged positions."""
    layout = build_layout("scrambled")
    n = len(trace)
    interior = sorted({c % (n + 1) for c in cuts} - {0, n})
    boundaries = [0] + interior + [n]
    single = simulate(trace, layout, SMALL_CONFIG,
                      prefetcher=make_prefetcher(pf, layout, 3),
                      engine="fast").to_dict()
    sharded = replay_sharded(trace, layout, SMALL_CONFIG,
                             prefetcher=make_prefetcher(pf, layout, 3),
                             boundaries=boundaries).to_dict()
    assert single == sharded


@FUZZ
@given(trace=fuzz_traces(), pf=st.sampled_from(PREFETCHERS),
       n_shards=st.integers(2, 4))
@journaled
def test_sharded_attribution_identical(trace, pf, n_shards):
    """The collector path (sequential chained segments) must fill the
    attribution payload exactly as one un-sharded observed run."""
    layout = build_layout("identity")
    base_collector = AttributionCollector(layout, interval=400, lifecycle=64)
    base = simulate(trace, layout, SMALL_CONFIG,
                    prefetcher=make_prefetcher(pf, layout, 2),
                    engine="fast", collector=base_collector)
    shard_collector = AttributionCollector(layout, interval=400, lifecycle=64)
    sharded = replay_sharded(trace, layout, SMALL_CONFIG,
                             prefetcher=make_prefetcher(pf, layout, 2),
                             n_shards=n_shards, collector=shard_collector)
    assert base.to_dict() == sharded.to_dict()
    assert base_collector.to_dict() == shard_collector.to_dict()
    assert (base_collector.lifecycle.records()
            == shard_collector.lifecycle.records())


@FUZZ
@given(trace=fuzz_traces(), degree=st.integers(1, 4))
@journaled
def test_journal_payload_round_trips(trace, degree):
    """A journaled trace must replay to the same stats as the original
    — otherwise CI failure journals would not be replayable."""
    layout = build_layout("scrambled")
    rebuilt = trace_from_payload(
        json.loads(json.dumps(trace_payload(trace))))
    assert list(rebuilt.events()) == list(trace.events())
    first = simulate(trace, layout, SMALL_CONFIG,
                     prefetcher=make_prefetcher("cgp", layout, degree),
                     engine="fast")
    second = simulate(rebuilt, layout, SMALL_CONFIG,
                      prefetcher=make_prefetcher("cgp", layout, degree),
                      engine="fast")
    assert first.to_dict() == second.to_dict()
