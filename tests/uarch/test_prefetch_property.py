"""Property-based prefetch *accounting* invariants (harness telemetry
depends on these; the engine-level identities live in
``test_engine_property.py``).

Across randomized small traces and every prefetcher family the
simulator ships (plain NL, tagged NL, run-ahead NL, CGP), the
per-origin PrefetchStats must satisfy:

* ``issued >= accounted()`` — nothing is classified that was never
  issued; at end of run the engine drains, so equality holds too;
* ``useful() + useless`` partitions ``accounted()`` exactly
  (``useful = pref_hits + delayed_hits``);
* squashed prefetches are never counted as issued: they cost no bus
  transaction, so ``bus_transactions == demand_misses + issued``.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CgpPrefetcher
from repro.instrument.codeimage import CodeImage
from repro.instrument.trace import Trace
from repro.layout.layouts import AddressMap
from repro.uarch.config import CacheConfig, CghcConfig, SimConfig
from repro.uarch.fetch_engine import simulate
from repro.uarch.prefetch.nl import (
    NextNLinePrefetcher,
    RunAheadNLPrefetcher,
    TaggedNLPrefetcher,
)

N_FUNCTIONS = 6
FUNC_SIZE = 120

SMALL_CONFIG = SimConfig(
    l1i=CacheConfig(512, 2),  # tiny L1 so evictions (useless) happen
    l2=CacheConfig(4096, 4),
    base_cpi=0.3,
)

PREFETCHERS = ["nl", "t-nl", "ra-nl", "cgp"]


def build_layout():
    image = CodeImage()
    for i in range(N_FUNCTIONS):
        image.register_synthetic(f"f{i}", FUNC_SIZE)
    return AddressMap(image, range(N_FUNCTIONS), 1.0, 1.0, 1.0, "prop")


def make_prefetcher(name, layout, degree):
    if name == "nl":
        return NextNLinePrefetcher(degree)
    if name == "t-nl":
        return TaggedNLPrefetcher(degree)
    if name == "ra-nl":
        return RunAheadNLPrefetcher(degree, 3)
    return CgpPrefetcher(
        degree, CghcConfig(l1_bytes=4 * 40, l2_bytes=16 * 40), layout
    )


@st.composite
def traces(draw):
    """Well-formed small traces: balanced calls, offsets in range."""
    trace = Trace()
    stack = []
    for _ in range(draw(st.integers(1, 50))):
        action = draw(st.sampled_from(["exec", "exec", "call", "ret"]))
        if action == "exec":
            fid = stack[-1] if stack else draw(
                st.integers(0, N_FUNCTIONS - 1))
            trace.add_exec(fid, draw(st.integers(0, FUNC_SIZE - 1)),
                           draw(st.integers(0, FUNC_SIZE - 1)))
        elif action == "call" and len(stack) < 8:
            callee = draw(st.integers(0, N_FUNCTIONS - 1))
            trace.add_call(callee, stack[-1] if stack else -1,
                           draw(st.integers(0, FUNC_SIZE - 1)))
            stack.append(callee)
        elif action == "ret" and stack:
            fid = stack.pop()
            trace.add_return(fid, stack[-1] if stack else -1, 0)
    while stack:
        fid = stack.pop()
        trace.add_return(fid, stack[-1] if stack else -1, 0)
    return trace


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces(), pf=st.sampled_from(PREFETCHERS),
       degree=st.integers(1, 4))
def test_issued_bounds_accounted(trace, pf, degree):
    layout = build_layout()
    stats = simulate(trace, layout, SMALL_CONFIG,
                     prefetcher=make_prefetcher(pf, layout, degree))
    for origin, p in stats.prefetch.items():
        assert p.issued >= p.accounted(), origin
        # the engine drains at end of run, so the bound is tight
        assert p.issued == p.accounted(), origin


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces(), pf=st.sampled_from(PREFETCHERS),
       degree=st.integers(1, 4))
def test_useful_useless_partition(trace, pf, degree):
    layout = build_layout()
    stats = simulate(trace, layout, SMALL_CONFIG,
                     prefetcher=make_prefetcher(pf, layout, degree))
    for origin, p in stats.prefetch.items():
        assert p.useful() == p.pref_hits + p.delayed_hits, origin
        assert p.useful() + p.useless == p.accounted(), origin
        assert min(p.pref_hits, p.delayed_hits, p.useless,
                   p.squashed, p.issued) >= 0, origin


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces(), pf=st.sampled_from(PREFETCHERS),
       degree=st.integers(1, 4))
def test_squashed_never_counted_as_issued(trace, pf, degree):
    """A squashed prefetch (target already resident or in flight) must
    cost nothing: no issue, no bus transaction.  Hence total L2 port
    traffic is exactly demand misses + issued prefetches."""
    layout = build_layout()
    stats = simulate(trace, layout, SMALL_CONFIG,
                     prefetcher=make_prefetcher(pf, layout, degree))
    issued = sum(p.issued for p in stats.prefetch.values())
    assert stats.bus_transactions == stats.demand_misses + issued


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces(), pf=st.sampled_from(PREFETCHERS),
       degree=st.integers(1, 4))
def test_accounting_survives_serialization(trace, pf, degree):
    """The dict round-trip the parallel engine and durable cache use
    preserves every prefetch counter exactly."""
    from repro.uarch.stats import SimStats

    layout = build_layout()
    stats = simulate(trace, layout, SMALL_CONFIG,
                     prefetcher=make_prefetcher(pf, layout, degree))
    reloaded = SimStats.from_dict(stats.to_dict())
    assert reloaded.to_dict() == stats.to_dict()
    for origin, p in stats.prefetch.items():
        q = reloaded.prefetch[origin]
        assert (q.issued, q.pref_hits, q.delayed_hits, q.useless,
                q.squashed) == (p.issued, p.pref_hits, p.delayed_hits,
                                p.useless, p.squashed)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces(), pf=st.sampled_from(PREFETCHERS),
       degree=st.integers(1, 4))
def test_out_of_range_is_free_and_unaccounted(trace, pf, degree):
    """A prefetch aimed past either end of the address space is dropped
    at issue: it must be counted in ``out_of_range`` only — never
    issued, never squashed, never classified, and it must not occupy
    the L2 port (no bus transaction)."""
    layout = build_layout()
    stats = simulate(trace, layout, SMALL_CONFIG,
                     prefetcher=make_prefetcher(pf, layout, degree))
    issued = 0
    for origin, p in stats.prefetch.items():
        assert p.out_of_range >= 0, origin
        # dropped targets are not part of the issue/squash accounting
        assert p.issued == p.accounted(), origin
        issued += p.issued
    assert stats.bus_transactions == stats.demand_misses + issued


def test_out_of_range_counts_exact_tail_overrun():
    """Deterministic check: executing the last K lines of the address
    space with NL degree d drops exactly the targets past the end."""
    layout = build_layout()
    trace = Trace()
    last_fid = N_FUNCTIONS - 1
    # touch the final 3 lines of the last-placed function one by one
    trace.add_exec(last_fid, FUNC_SIZE - 3, FUNC_SIZE - 1)
    stats = simulate(trace, layout, SMALL_CONFIG,
                     prefetcher=NextNLinePrefetcher(4))
    p = stats.prefetch["nl"]
    # every touched line is a leading edge; each aims ``degree`` lines
    # ahead and the last 3 targets all fall past the end
    assert p.out_of_range == 3
    assert p.out_of_range + p.issued + p.squashed > 0
    assert "out_of_range" in stats.summary()["prefetch"]["nl"]
