"""Set-associative cache vs a reference model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.uarch.cache import SetAssocCache
from repro.uarch.config import CacheConfig


def test_geometry_from_config():
    cache = SetAssocCache.from_config(CacheConfig(32 * 1024, 2, 32))
    assert cache.n_sets == 512
    assert cache.assoc == 2


def test_miss_then_hit():
    cache = SetAssocCache(4, 2)
    assert not cache.lookup(0)
    cache.insert(0)
    assert cache.lookup(0)
    assert cache.hits == 1
    assert cache.misses == 1


def test_lru_eviction_within_set():
    cache = SetAssocCache(1, 2)  # one set, two ways
    cache.insert(0)
    cache.insert(1)
    evicted = cache.insert(2)  # evicts 0 (LRU)
    assert evicted == 0
    assert cache.contains(1)
    assert cache.contains(2)
    assert not cache.contains(0)


def test_lookup_updates_lru():
    cache = SetAssocCache(1, 2)
    cache.insert(0)
    cache.insert(1)
    cache.lookup(0)  # 0 becomes MRU
    evicted = cache.insert(2)
    assert evicted == 1


def test_insert_existing_refreshes_no_eviction():
    cache = SetAssocCache(1, 2)
    cache.insert(0)
    cache.insert(1)
    assert cache.insert(0) is None
    assert cache.insert(2) == 1  # 1 was LRU after refreshing 0


def test_sets_are_independent():
    cache = SetAssocCache(2, 1)
    cache.insert(0)  # set 0
    cache.insert(1)  # set 1
    assert cache.contains(0)
    assert cache.contains(1)
    assert cache.insert(2) == 0  # set 0 again


def test_contains_does_not_touch_lru():
    cache = SetAssocCache(1, 2)
    cache.insert(0)
    cache.insert(1)
    cache.contains(0)  # must NOT refresh
    assert cache.insert(2) == 0


def test_invalidate():
    cache = SetAssocCache(2, 2)
    cache.insert(4)
    assert cache.invalidate(4)
    assert not cache.invalidate(4)
    assert not cache.contains(4)


def test_flush():
    cache = SetAssocCache(4, 2)
    for line in range(8):
        cache.insert(line)
    cache.flush()
    assert cache.resident_lines() == []


def test_bad_geometry_rejected():
    with pytest.raises(SimulationError):
        SetAssocCache(0, 2)


class _ReferenceCache:
    """Dict-of-lists LRU reference."""

    def __init__(self, n_sets, assoc):
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets = {}

    def access(self, line):
        bucket = self.sets.setdefault(line % self.n_sets, [])
        hit = line in bucket
        if hit:
            bucket.remove(line)
        elif len(bucket) >= self.assoc:
            bucket.pop(0)
        bucket.append(line)
        return hit


@given(
    lines=st.lists(st.integers(0, 63), min_size=1, max_size=400),
    n_sets=st.sampled_from([1, 2, 4, 8]),
    assoc=st.integers(1, 4),
)
def test_matches_reference_model(lines, n_sets, assoc):
    cache = SetAssocCache(n_sets, assoc)
    reference = _ReferenceCache(n_sets, assoc)
    for line in lines:
        expected_hit = reference.access(line)
        got_hit = cache.lookup(line)
        if not got_hit:
            cache.insert(line)
        assert got_hit == expected_hit
