"""Property tests: accounting identities of the fetch engine.

For *any* well-formed trace and any prefetcher, the simulator must
satisfy its bookkeeping invariants — every issued prefetch is classified
exactly once, time only moves forward, and cycles decompose into the
fetch + stall + mispredict components.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CgpPrefetcher
from repro.instrument.codeimage import CodeImage
from repro.instrument.trace import Trace
from repro.layout.layouts import AddressMap
from repro.uarch.config import CacheConfig, CghcConfig, SimConfig
from repro.uarch.fetch_engine import simulate
from repro.uarch.prefetch.nl import NextNLinePrefetcher

N_FUNCTIONS = 6
FUNC_SIZE = 120


def build_layout(sequentiality=1.0):
    image = CodeImage()
    for i in range(N_FUNCTIONS):
        image.register_synthetic(f"f{i}", FUNC_SIZE)
    return AddressMap(
        image, range(N_FUNCTIONS), 1.0, sequentiality, 1.0, "prop"
    )


@st.composite
def traces(draw):
    """Well-formed traces: balanced calls, offsets in range."""
    trace = Trace()
    stack = []
    for _ in range(draw(st.integers(1, 60))):
        action = draw(st.sampled_from(["exec", "call", "ret"]))
        if action == "exec":
            fid = stack[-1] if stack else draw(st.integers(0, N_FUNCTIONS - 1))
            a = draw(st.integers(0, FUNC_SIZE - 1))
            b = draw(st.integers(0, FUNC_SIZE - 1))
            trace.add_exec(fid, a, b)
        elif action == "call" and len(stack) < 10:
            callee = draw(st.integers(0, N_FUNCTIONS - 1))
            caller = stack[-1] if stack else -1
            trace.add_call(callee, caller,
                           draw(st.integers(0, FUNC_SIZE - 1)))
            stack.append(callee)
        elif action == "ret" and stack:
            fid = stack.pop()
            caller = stack[-1] if stack else -1
            trace.add_return(fid, caller, draw(st.integers(0, FUNC_SIZE - 1)))
    while stack:
        fid = stack.pop()
        caller = stack[-1] if stack else -1
        trace.add_return(fid, caller, 0)
    return trace


SMALL_CONFIG = SimConfig(
    l1i=CacheConfig(512, 2),  # tiny L1: evictions guaranteed
    l2=CacheConfig(4096, 4),
    base_cpi=0.3,
)


def prefetcher_for(name, layout):
    if name == "none":
        return None
    if name == "nl":
        return NextNLinePrefetcher(3)
    return CgpPrefetcher(2, CghcConfig(l1_bytes=4 * 40, l2_bytes=16 * 40),
                         layout)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces(), pf=st.sampled_from(["none", "nl", "cgp"]),
       seq=st.sampled_from([1.0, 0.6]))
def test_accounting_identities(trace, pf, seq):
    layout = build_layout(seq)
    stats = simulate(trace, layout, SMALL_CONFIG,
                     prefetcher=prefetcher_for(pf, layout))
    # every issued prefetch ends up classified exactly once
    for origin, p in stats.prefetch.items():
        assert p.issued == p.pref_hits + p.delayed_hits + p.useless, origin
        assert min(p.issued, p.pref_hits, p.delayed_hits, p.useless,
                   p.squashed) >= 0
    # cycle decomposition
    assert stats.cycles >= 0
    expected = stats.fetch_cycles + stats.stall_cycles + stats.mispredict_cycles
    assert abs(stats.cycles - expected) < 1e-6
    # misses cannot exceed accesses; L2/memory split covers all misses
    assert stats.demand_misses <= stats.line_accesses
    assert stats.l2_hits + stats.memory_fetches == stats.demand_misses
    # instruction time is a lower bound on cycles
    assert stats.cycles >= stats.instructions * 0.25 - 1e-6


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces())
def test_prefetch_miss_bound_nl(trace):
    """NL can add misses only through pollution, and each issued
    prefetch displaces at most one resident line — so the miss count is
    bounded by the baseline plus the issued prefetches.  (In practice NL
    reduces misses; this is the sound invariant.)"""
    layout = build_layout()
    plain = simulate(trace, layout, SMALL_CONFIG)
    nl = simulate(trace, layout, SMALL_CONFIG,
                  prefetcher=NextNLinePrefetcher(3))
    issued = sum(p.issued for p in nl.prefetch.values())
    assert nl.demand_misses <= plain.demand_misses + issued


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces())
def test_perfect_icache_is_a_lower_bound(trace):
    from dataclasses import replace

    layout = build_layout()
    real = simulate(trace, layout, SMALL_CONFIG)
    perfect = simulate(
        trace, layout, replace(SMALL_CONFIG, perfect_icache=True)
    )
    assert perfect.cycles <= real.cycles + 1e-6


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces(), seed=st.integers(0, 2**32 - 1))
def test_determinism_any_seed(trace, seed):
    layout = build_layout()
    a = simulate(trace, layout, SMALL_CONFIG,
                 prefetcher=prefetcher_for("cgp", layout), seed=seed)
    b = simulate(trace, layout, SMALL_CONFIG,
                 prefetcher=prefetcher_for("cgp", layout), seed=seed)
    assert a.cycles == b.cycles
    assert a.demand_misses == b.demand_misses
    assert a.summary() == b.summary()
