"""Configuration: Table 1 values and validation."""

import pytest

from repro.errors import ConfigError
from repro.uarch.config import (
    TABLE_1,
    CacheConfig,
    CghcConfig,
    SimConfig,
    cghc_variant,
)


def test_table_1_parameters_match_paper():
    assert TABLE_1.fetch_width == 4
    assert TABLE_1.l1i.size_bytes == 32 * 1024
    assert TABLE_1.l1i.assoc == 2
    assert TABLE_1.l1i.line_bytes == 32
    assert TABLE_1.l2.size_bytes == 1024 * 1024
    assert TABLE_1.l2.assoc == 4
    assert TABLE_1.l2.line_bytes == 32
    assert TABLE_1.l1_hit_latency == 1
    assert TABLE_1.l2_hit_latency == 16
    assert TABLE_1.memory_latency == 80


def test_cache_sets_computed():
    assert CacheConfig(32 * 1024, 2, 32).n_sets == 512
    assert CacheConfig(1024 * 1024, 4, 32).n_sets == 8192


def test_bad_cache_geometry_rejected():
    with pytest.raises(ConfigError):
        CacheConfig(16, 2, 32).n_sets


def test_validate_rejects_bad_width():
    with pytest.raises(ConfigError):
        SimConfig(fetch_width=0).validate()


def test_validate_rejects_bad_accuracy():
    with pytest.raises(ConfigError):
        SimConfig(branch_predictor_accuracy=1.5).validate()


def test_validate_rejects_mismatched_lines():
    with pytest.raises(ConfigError):
        SimConfig(l1i=CacheConfig(32 * 1024, 2, 64)).validate()


def test_cghc_entry_counts():
    config = CghcConfig(l1_bytes=2048, l2_bytes=32768)
    assert config.l1_entries() == 2048 // 40
    assert config.l2_entries() == 32768 // 40


def test_cghc_variants_match_figure_5():
    assert cghc_variant("CGHC-1K").l1_bytes == 1024
    assert cghc_variant("CGHC-1K").l2_bytes == 0
    assert cghc_variant("CGHC-32K").l1_bytes == 32768
    two = cghc_variant("CGHC-2K+32K")
    assert (two.l1_bytes, two.l2_bytes) == (2048, 32768)
    assert cghc_variant("CGHC-1K+16K").l2_bytes == 16384
    assert cghc_variant("CGHC-Inf").infinite


def test_unknown_variant_rejected():
    with pytest.raises(ConfigError):
        cghc_variant("CGHC-64K")


def test_default_cghc_is_papers_choice():
    assert TABLE_1.cghc.l1_bytes == 2048
    assert TABLE_1.cghc.l2_bytes == 32768
    assert TABLE_1.cghc.slots == 8
