"""Fetch engine: timing, miss stalls, prefetch classification."""

import pytest
from dataclasses import replace

from repro.errors import SimulationError
from repro.instrument.codeimage import CodeImage
from repro.instrument.trace import Trace
from repro.layout.layouts import AddressMap
from repro.uarch.config import SimConfig
from repro.uarch.fetch_engine import FetchEngine, simulate
from repro.uarch.prefetch.nl import NextNLinePrefetcher


def world(sizes=(256, 256, 256), l1_bytes=None, **config_kwargs):
    image = CodeImage()
    for i, size in enumerate(sizes):
        image.register_synthetic(f"f{i}", size)
    layout = AddressMap(image, range(len(sizes)), 1.0, 1.0, 1.0, "test")
    kwargs = dict(config_kwargs)
    if l1_bytes is not None:
        from repro.uarch.config import CacheConfig

        kwargs["l1i"] = CacheConfig(l1_bytes, 2)
    config = SimConfig(**kwargs)
    return layout, config


def exec_trace(spans):
    trace = Trace()
    for fid, lo, hi in spans:
        trace.add_exec(fid, lo, hi)
    return trace


def test_perfect_icache_pure_instruction_time():
    layout, config = world(perfect_icache=True, base_cpi=0.75)
    trace = exec_trace([(0, 0, 99)])  # 100 instructions
    stats = simulate(trace, layout, config)
    assert stats.instructions == 100
    assert stats.cycles == pytest.approx(100 * (0.25 + 0.75))
    assert stats.demand_misses == 0
    assert stats.line_accesses == 0


def test_cold_misses_counted_and_stalled():
    layout, config = world(base_cpi=0.0)
    trace = exec_trace([(0, 0, 63)])  # 8 lines, all cold
    stats = simulate(trace, layout, config)
    assert stats.demand_misses == 8
    assert stats.memory_fetches == 8  # cold L2 too
    assert stats.stall_cycles >= 8 * 96  # full latency each
    assert stats.cycles == pytest.approx(
        stats.stall_cycles + stats.fetch_cycles
    )


def test_warm_rerun_hits():
    layout, config = world()
    trace = exec_trace([(0, 0, 63), (0, 0, 63)])
    stats = simulate(trace, layout, config)
    assert stats.demand_misses == 8  # second pass all hits
    assert stats.l1_hits == 0 or stats.line_accesses == 16


def test_second_visit_hits_l2_not_memory():
    # L1 of 2 sets cannot hold 8 lines; L2 can
    layout, config = world(l1_bytes=128)
    trace = exec_trace([(0, 0, 255), (0, 0, 255)])
    stats = simulate(trace, layout, config)
    assert stats.memory_fetches == 32  # cold pass only
    assert stats.l2_hits > 0  # second pass: L1 misses that hit L2


def test_calls_add_overhead_and_push_ras():
    layout, config = world(perfect_icache=True)
    trace = Trace()
    trace.add_exec(0, 0, 9)
    trace.add_call(1, 0, 9)
    trace.add_exec(1, 0, 9)
    trace.add_return(1, 0, 9)
    stats = simulate(trace, layout, config)
    assert stats.calls == 1
    assert stats.returns == 1
    assert stats.instructions == 20 + 2 * config.call_overhead_instrs


def test_return_misprediction_when_ras_empty():
    layout, config = world(perfect_icache=True, mispredict_penalty=50)
    trace = Trace()
    trace.add_return(0, 1, 0)  # no call before it: RAS underflows
    stats = simulate(trace, layout, config)
    assert stats.mispredict_cycles == 50


def test_matched_call_return_predicts_correctly():
    layout, config = world(perfect_icache=True, mispredict_penalty=50,
                           branch_predictor_accuracy=1.0)
    trace = Trace()
    trace.add_call(1, 0, 5)
    trace.add_return(1, 0, 9)
    stats = simulate(trace, layout, config)
    assert stats.mispredict_cycles == 0


def test_instr_scale_reduces_instruction_count():
    image = CodeImage()
    image.register_synthetic("f", 256)
    om_like = AddressMap(image, [0], 1.0, 1.0, 0.88, "om")
    trace = exec_trace([(0, 0, 99)])
    stats = simulate(trace, om_like, SimConfig(perfect_icache=True))
    assert stats.instructions == pytest.approx(100 * 0.88)


def test_prefetch_hit_classification():
    layout, config = world(base_cpi=0.0)
    engine = FetchEngine(config, layout)
    # prefetch two lines far ahead of use
    engine.issue_prefetch(4, "test")
    engine.cycle = 1000.0  # long after arrival
    engine._deliver_arrivals()
    engine._access(4)
    p = engine.stats.prefetch_origin("test")
    assert p.pref_hits == 1
    assert p.delayed_hits == 0


def test_delayed_hit_classification_and_stall():
    layout, config = world(base_cpi=0.0)
    engine = FetchEngine(config, layout)
    engine.issue_prefetch(4, "test")
    engine._access(4)  # immediately: still in flight
    p = engine.stats.prefetch_origin("test")
    assert p.delayed_hits == 1
    assert engine.stats.stall_cycles > 0
    assert engine.stats.stall_cycles < 97  # less than a full miss


def test_useless_prefetch_on_eviction():
    layout, config = world(l1_bytes=128)  # 4 lines only (2 sets x 2 ways)
    engine = FetchEngine(config, layout)
    engine.issue_prefetch(0, "test")
    engine.cycle = 1000.0
    engine._deliver_arrivals()
    # flood the cache so line 0 is evicted untouched
    for line in (2, 4, 6, 8, 10, 12):
        engine._access(line)
    p = engine.stats.prefetch_origin("test")
    assert p.useless == 1
    assert p.pref_hits == 0


def test_unconsumed_prefetches_useless_at_end():
    layout, config = world()
    trace = exec_trace([(0, 0, 7)])
    stats = simulate(trace, layout, config,
                     prefetcher=NextNLinePrefetcher(4))
    p = stats.prefetch_origin("nl")
    assert p.issued == p.pref_hits + p.delayed_hits + p.useless


def test_squash_when_line_present():
    layout, config = world()
    engine = FetchEngine(config, layout)
    engine._access(5)  # now resident
    assert engine.issue_prefetch(5, "test") is False
    assert engine.stats.prefetch_origin("test").squashed == 1


def test_squash_when_in_flight():
    layout, config = world()
    engine = FetchEngine(config, layout)
    assert engine.issue_prefetch(7, "test")
    assert engine.issue_prefetch(7, "test") is False


def test_out_of_image_prefetch_dropped():
    layout, config = world()
    engine = FetchEngine(config, layout)
    assert engine.issue_prefetch(-1, "test") is False
    assert engine.issue_prefetch(10**9, "test") is False
    assert engine.stats.prefetch_origin("test").issued == 0


def test_prefetch_function_head_limits_to_span():
    layout, config = world(sizes=(16, 256))  # fid 0 spans 2 lines + 1
    engine = FetchEngine(config, layout)
    engine.prefetch_function_head(0, 10, "test")
    issued = engine.stats.prefetch_origin("test").issued
    assert issued == layout.size_lines[0]


def test_nl_prefetching_reduces_cycles():
    layout, config = world(sizes=(4096,), base_cpi=0.4)
    trace = exec_trace([(0, 0, 4095)])
    plain = simulate(trace, layout, config)
    nl = simulate(trace, layout, config, prefetcher=NextNLinePrefetcher(4))
    assert nl.cycles < plain.cycles
    assert nl.demand_misses < plain.demand_misses


def test_prefetch_traffic_counted_on_bus():
    layout, config = world(sizes=(4096,))
    trace = exec_trace([(0, 0, 4095)])
    plain = simulate(trace, layout, config)
    nl = simulate(trace, layout, config, prefetcher=NextNLinePrefetcher(4))
    assert nl.bus_transactions > plain.bus_transactions - 1


def test_unknown_event_kind_raises():
    layout, config = world()
    trace = Trace()
    trace.kinds.append(9)
    trace.a.append(0)
    trace.b.append(0)
    trace.c.append(0)
    with pytest.raises(SimulationError):
        simulate(trace, layout, config)


def test_switch_event_is_noop():
    layout, config = world(perfect_icache=True)
    trace = Trace()
    trace.add_switch(1)
    trace.add_exec(0, 0, 9)
    stats = simulate(trace, layout, config)
    assert stats.instructions == 10


def test_deterministic_across_runs():
    layout, config = world(sizes=(2048, 2048))
    trace = exec_trace([(0, 0, 2000), (1, 0, 2000), (0, 0, 2000)])
    a = simulate(trace, layout, config, prefetcher=NextNLinePrefetcher(2))
    b = simulate(trace, layout, config, prefetcher=NextNLinePrefetcher(2))
    assert a.cycles == b.cycles
    assert a.demand_misses == b.demand_misses
