"""SimStats / PrefetchStats bookkeeping."""

from repro.uarch.stats import PrefetchStats, SimStats


def test_prefetch_stats_derived_counts():
    p = PrefetchStats(issued=10, pref_hits=4, delayed_hits=3, useless=3,
                      squashed=7)
    assert p.useful() == 7
    assert p.accounted() == 10
    assert p.as_dict()["squashed"] == 7


def test_prefetch_origin_creates_lazily():
    stats = SimStats()
    first = stats.prefetch_origin("nl")
    second = stats.prefetch_origin("nl")
    assert first is second
    assert set(stats.prefetch) == {"nl"}


def test_ipc_and_miss_rate():
    stats = SimStats(instructions=1000, cycles=2000.0, line_accesses=100,
                     demand_misses=10)
    assert stats.ipc == 0.5
    assert stats.miss_rate == 0.1
    assert stats.mpki == 10.0


def test_zero_division_guards():
    stats = SimStats()
    assert stats.ipc == 0.0
    assert stats.miss_rate == 0.0
    assert stats.mpki == 0.0


def test_totals_across_origins():
    stats = SimStats()
    stats.prefetch_origin("nl").issued = 5
    stats.prefetch_origin("nl").pref_hits = 3
    stats.prefetch_origin("nl").useless = 2
    stats.prefetch_origin("cghc").issued = 4
    stats.prefetch_origin("cghc").delayed_hits = 4
    assert stats.total_prefetches() == 9
    assert stats.total_useful_prefetches() == 7
    assert stats.total_useless_prefetches() == 2


def test_summary_shape():
    stats = SimStats(instructions=100, cycles=150.0)
    stats.prefetch_origin("nl").issued = 1
    summary = stats.summary()
    assert summary["instructions"] == 100
    assert "nl" in summary["prefetch"]
    assert summary["ipc"] == round(100 / 150.0, 4)


def test_summary_carries_schema_version():
    from repro.uarch.stats import SUMMARY_SCHEMA_VERSION

    stats = SimStats(instructions=10, cycles=20.0)
    assert stats.summary()["schema_version"] == SUMMARY_SCHEMA_VERSION


def test_prefetch_from_dict_tolerates_unknown_and_missing_keys():
    # a payload written by a future schema: extra keys, one field absent
    payload = {"issued": 4, "pref_hits": 2, "delayed_hits": 1,
               "useless": 1, "squashed": 0,
               "some_future_counter": 99}
    p = PrefetchStats.from_dict(payload)
    assert p.issued == 4
    assert p.out_of_range == 0  # missing -> default
    assert not hasattr(p, "some_future_counter")


def test_simstats_roundtrip_unchanged_by_versioning():
    stats = SimStats(instructions=5, cycles=7.0)
    stats.prefetch_origin("nl").issued = 3
    payload = stats.to_dict()
    assert "schema_version" not in payload  # to_dict layout is frozen
    clone = SimStats.from_dict(payload)
    assert clone.to_dict() == payload
