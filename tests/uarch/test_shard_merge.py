"""Properties of the deterministic shard-stats merge.

:func:`repro.uarch.shard.merge_pieces` must be a *total* accounting:
associative, order-independent, exactly equal to single-process totals
for every counter and prefetch histogram, and loudly broken (never
silently wrong) when handed a piece set that does not tile the trace or
whose counters do not chain.
"""

import copy
import itertools

import pytest

from repro.core import CgpPrefetcher
from repro.errors import SimulationError
from repro.instrument.codeimage import CodeImage
from repro.instrument.trace import SWITCH, Trace
from repro.layout.layouts import AddressMap
from repro.uarch.config import CacheConfig, CghcConfig, SimConfig
from repro.uarch.fetch_engine import simulate
from repro.uarch.shard import (
    combine_pieces,
    merge_pieces,
    replay_sharded,
    shard_boundaries,
)
from repro.uarch.stats import SimStats

N_FUNCTIONS = 6
FUNC_SIZE = 120

CONFIG = SimConfig(
    l1i=CacheConfig(512, 2),
    l2=CacheConfig(4096, 4),
    base_cpi=0.3,
)


def build_layout():
    image = CodeImage()
    for i in range(N_FUNCTIONS):
        image.register_synthetic(f"f{i}", FUNC_SIZE)
    # permuted blocks, inflation, float instruction scale: the layout
    # that defeats every compile-time shortcut at once
    return AddressMap(
        image, reversed(range(N_FUNCTIONS)), 1.5, 0.3, 1.25, "scram"
    )


def make_prefetcher(layout):
    return CgpPrefetcher(
        3, CghcConfig(l1_bytes=4 * 40, l2_bytes=16 * 40), layout
    )


def build_trace(n=240, switches=False):
    """Deterministic call/exec/return mix exercising misses, the RAS,
    CGP head prefetches, and NL fan-outs."""
    trace = Trace()
    state = 12345
    stack = []
    for step in range(n):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        roll = state % 10
        if switches and step and step % 40 == 0:
            trace.add_switch(state % 4)
        elif roll < 5 or not stack and roll < 8:
            fid = stack[-1] if stack else state % N_FUNCTIONS
            lo = state % (FUNC_SIZE - 1)
            trace.add_exec(fid, lo, min(FUNC_SIZE - 1, lo + roll * 9))
        elif roll < 8 and len(stack) < 8:
            callee = state % N_FUNCTIONS
            trace.add_call(callee, stack[-1] if stack else -1,
                           state % FUNC_SIZE)
            stack.append(callee)
        elif stack:
            fid = stack.pop()
            trace.add_return(fid, stack[-1] if stack else -1, 0)
    while stack:
        fid = stack.pop()
        trace.add_return(fid, stack[-1] if stack else -1, 0)
    return trace


@pytest.fixture(scope="module")
def pieces():
    """Four shard pieces of the deterministic trace, plus the
    single-process stats they must reassemble into."""
    layout = build_layout()
    trace = build_trace()
    single = simulate(trace, layout, CONFIG,
                      prefetcher=make_prefetcher(layout), engine="fast")
    merged, parts = replay_sharded(
        trace, layout, CONFIG, prefetcher=make_prefetcher(layout),
        n_shards=4, return_pieces=True)
    assert len(parts) == 4
    return single, merged, parts


def test_merge_equals_single_process_exactly(pieces):
    single, merged, _ = pieces
    sd, md = single.to_dict(), merged.to_dict()
    for field in SimStats._SCALAR_FIELDS:
        assert md[field] == sd[field], field
    assert md["prefetch"] == sd["prefetch"]
    assert md == sd


def test_merge_is_order_independent(pieces):
    single, _, parts = pieces
    want = single.to_dict()
    for perm in itertools.permutations(parts):
        assert merge_pieces(list(perm)).to_dict() == want


def test_merge_is_associative(pieces):
    """Any grouping of adjacent combines collapses to the same piece,
    and merging the collapsed piece equals merging the originals."""
    single, _, parts = pieces
    want = single.to_dict()
    p0, p1, p2, p3 = parts
    left = combine_pieces(combine_pieces(combine_pieces(p0, p1), p2), p3)
    right = combine_pieces(p0, combine_pieces(p1, combine_pieces(p2, p3)))
    inner = combine_pieces(combine_pieces(p0, p1), combine_pieces(p2, p3))
    for whole in (left, right, inner):
        assert whole.start == 0 and whole.finalized
        assert merge_pieces([whole]).to_dict() == want
    # partial grouping mixed with un-combined pieces merges too
    assert merge_pieces([combine_pieces(p1, p2), p3, p0]).to_dict() == want


def test_combine_rejects_non_adjacent(pieces):
    _, _, parts = pieces
    with pytest.raises(SimulationError):
        combine_pieces(parts[0], parts[2])


def test_merge_rejects_gaps(pieces):
    _, _, parts = pieces
    with pytest.raises(SimulationError):
        merge_pieces([parts[0], parts[1], parts[3]])


def test_merge_rejects_unfinalized_tail(pieces):
    _, _, parts = pieces
    broken = copy.deepcopy(parts)
    object.__setattr__(broken[-1], "finalized", False)
    with pytest.raises(SimulationError):
        merge_pieces(broken)


def test_merge_cross_checks_chained_totals(pieces):
    """A tampered delta cannot merge silently: the delta sum no longer
    reproduces the final piece's chained total."""
    _, _, parts = pieces
    broken = copy.deepcopy(parts)
    broken[1].stats_after["demand_misses"] += 1
    with pytest.raises(SimulationError):
        merge_pieces(broken)
    broken = copy.deepcopy(parts)
    for piece in broken[:1]:
        for row in piece.stats_after["prefetch"].values():
            row["issued"] += 1
    with pytest.raises(SimulationError):
        merge_pieces(broken)


def test_merge_requires_pieces():
    with pytest.raises(SimulationError):
        merge_pieces([])


def test_boundaries_snap_to_switches():
    layout = build_layout()
    trace = build_trace(switches=True)
    switch_positions = {
        i for i, kind in enumerate(trace.kinds) if kind == SWITCH
    }
    assert switch_positions  # the trace really is multiprogrammed
    boundaries = shard_boundaries(trace, layout, 4)
    assert boundaries[0] == 0 and boundaries[-1] == len(trace)
    for cut in boundaries[1:-1]:
        assert cut in switch_positions


def test_boundaries_even_split_without_switches():
    layout = build_layout()
    trace = build_trace(switches=False)
    n = len(trace)
    assert shard_boundaries(trace, layout, 4) == [
        0, n // 4, n * 2 // 4, n * 3 // 4, n]


def test_single_shard_degenerates_to_plain_run():
    layout = build_layout()
    trace = build_trace(n=120)
    single = simulate(trace, layout, CONFIG,
                      prefetcher=make_prefetcher(layout), engine="fast")
    sharded = replay_sharded(trace, layout, CONFIG,
                             prefetcher=make_prefetcher(layout), n_shards=1)
    assert sharded.to_dict() == single.to_dict()


def test_sharded_with_switches_equals_single_process():
    layout = build_layout()
    trace = build_trace(switches=True)
    single = simulate(trace, layout, CONFIG,
                      prefetcher=make_prefetcher(layout), engine="fast")
    sharded = replay_sharded(trace, layout, CONFIG,
                             prefetcher=make_prefetcher(layout), n_shards=3)
    assert sharded.to_dict() == single.to_dict()
