"""Next-N-line and run-ahead NL prefetchers."""

import pytest

from repro.errors import ConfigError
from repro.uarch.prefetch.base import NO_PREFETCH
from repro.uarch.prefetch.nl import NextNLinePrefetcher, RunAheadNLPrefetcher


class FakeEngine:
    def __init__(self):
        self.issued = []

    def issue_prefetch(self, line, origin, delay=0):
        self.issued.append(line)
        return True


def test_fan_out_on_jump():
    nl = NextNLinePrefetcher(4)
    engine = FakeEngine()
    nl.on_line_access(100, engine)
    assert engine.issued == [101, 102, 103, 104]


def test_sequential_step_issues_only_leading_edge():
    nl = NextNLinePrefetcher(4)
    engine = FakeEngine()
    nl.on_line_access(100, engine)
    engine.issued.clear()
    nl.on_line_access(101, engine)
    assert engine.issued == [105]


def test_repeated_same_line_is_silent():
    nl = NextNLinePrefetcher(2)
    engine = FakeEngine()
    nl.on_line_access(100, engine)
    engine.issued.clear()
    nl.on_line_access(100, engine)
    assert engine.issued == []


def test_sequential_equivalence_with_naive_fan():
    """Fast-path must issue exactly what a full fan per access would,
    modulo duplicates (which would be squashed anyway)."""
    nl = NextNLinePrefetcher(3)
    engine = FakeEngine()
    for line in range(50, 60):
        nl.on_line_access(line, engine)
    naive = set()
    for line in range(50, 60):
        naive.update(range(line + 1, line + 4))
    assert set(engine.issued) == naive - set()


def test_reset_forgets_last_line():
    nl = NextNLinePrefetcher(2)
    engine = FakeEngine()
    nl.on_line_access(10, engine)
    nl.reset()
    engine.issued.clear()
    nl.on_line_access(11, engine)
    assert engine.issued == [12, 13]  # full fan again


def test_run_ahead_offsets_by_m():
    ra = RunAheadNLPrefetcher(2, 4)
    engine = FakeEngine()
    ra.on_line_access(100, engine)
    assert engine.issued == [105, 106]


def test_run_ahead_sequential_leading_edge():
    ra = RunAheadNLPrefetcher(2, 4)
    engine = FakeEngine()
    ra.on_line_access(100, engine)
    engine.issued.clear()
    ra.on_line_access(101, engine)
    assert engine.issued == [107]


def test_bad_degrees_rejected():
    with pytest.raises(ConfigError):
        NextNLinePrefetcher(0)
    with pytest.raises(ConfigError):
        RunAheadNLPrefetcher(2, -1)


def test_no_prefetch_is_inert():
    engine = FakeEngine()
    NO_PREFETCH.on_line_access(5, engine)
    NO_PREFETCH.on_call(0, 1, True, engine)
    NO_PREFETCH.on_return(1, None, True, engine)
    NO_PREFETCH.reset()
    assert engine.issued == []


def test_names():
    assert NextNLinePrefetcher(4).name == "NL_4"
    assert RunAheadNLPrefetcher(4, 8).name == "RA-NL_4+8"


class FlaggedEngine(FakeEngine):
    def __init__(self, missed=False, first_touch=False):
        super().__init__()
        self.last_access_missed = missed
        self.last_access_first_touch = first_touch


def test_tagged_nl_silent_on_plain_hits():
    from repro.uarch.prefetch.nl import TaggedNLPrefetcher

    tagged = TaggedNLPrefetcher(3)
    engine = FlaggedEngine(missed=False, first_touch=False)
    tagged.on_line_access(100, engine)
    assert engine.issued == []


def test_tagged_nl_fires_on_miss():
    from repro.uarch.prefetch.nl import TaggedNLPrefetcher

    tagged = TaggedNLPrefetcher(3)
    engine = FlaggedEngine(missed=True)
    tagged.on_line_access(100, engine)
    assert engine.issued == [101, 102, 103]


def test_tagged_nl_fires_on_first_touch_of_prefetched_line():
    from repro.uarch.prefetch.nl import TaggedNLPrefetcher

    tagged = TaggedNLPrefetcher(2)
    engine = FlaggedEngine(first_touch=True)
    tagged.on_line_access(50, engine)
    assert engine.issued == [51, 52]


def test_tagged_nl_reduces_traffic_end_to_end():
    """On a looping stream, tagged NL issues far fewer prefetches than
    plain NL while keeping misses comparable."""
    from repro.instrument.codeimage import CodeImage
    from repro.instrument.trace import Trace
    from repro.layout.layouts import AddressMap
    from repro.uarch.config import SimConfig
    from repro.uarch.fetch_engine import simulate
    from repro.uarch.prefetch.nl import TaggedNLPrefetcher

    image = CodeImage()
    image.register_synthetic("f", 4096)
    layout = AddressMap(image, [0], 1.0, 1.0, 1.0, "t")
    trace = Trace()
    for _ in range(5):
        trace.add_exec(0, 0, 4095)
    config = SimConfig()
    plain = simulate(trace, layout, config,
                     prefetcher=NextNLinePrefetcher(4))
    tagged = simulate(trace, layout, config,
                      prefetcher=TaggedNLPrefetcher(4))
    plain_attempts = (plain.prefetch_origin("nl").issued
                      + plain.prefetch_origin("nl").squashed)
    tagged_attempts = (tagged.prefetch_origin("nl").issued
                       + tagged.prefetch_origin("nl").squashed)
    assert tagged_attempts < plain_attempts
    assert tagged.demand_misses <= plain.demand_misses * 1.5
