"""Modified return address stack."""

import pytest

from repro.errors import SimulationError
from repro.uarch.ras import ModifiedReturnAddressStack, RasEntry


def test_push_pop_lifo():
    ras = ModifiedReturnAddressStack(8)
    ras.push(10, 100, 1)
    ras.push(20, 200, 2)
    assert ras.pop() == RasEntry(20, 200, 2)
    assert ras.pop() == RasEntry(10, 100, 1)


def test_entry_carries_caller_start():
    """§3.2: the modification — caller start address rides along."""
    ras = ModifiedReturnAddressStack(4)
    ras.push(return_line=55, caller_start_line=40, caller_fid=7)
    entry = ras.pop()
    assert entry.caller_start_line == 40
    assert entry.caller_fid == 7


def test_underflow_returns_none_and_counts():
    ras = ModifiedReturnAddressStack(4)
    assert ras.pop() is None
    assert ras.underflows == 1


def test_overflow_drops_oldest():
    ras = ModifiedReturnAddressStack(2)
    ras.push(1, 1, 1)
    ras.push(2, 2, 2)
    ras.push(3, 3, 3)  # overwrites entry 1
    assert ras.overflows == 1
    assert ras.pop().caller_fid == 3
    assert ras.pop().caller_fid == 2
    assert ras.pop() is None


def test_peek_does_not_pop():
    ras = ModifiedReturnAddressStack(4)
    ras.push(1, 1, 1)
    assert ras.peek().caller_fid == 1
    assert len(ras) == 1
    assert ras.pop().caller_fid == 1


def test_len_and_clear():
    ras = ModifiedReturnAddressStack(4)
    for i in range(3):
        ras.push(i, i, i)
    assert len(ras) == 3
    ras.clear()
    assert len(ras) == 0
    assert ras.pop() is None


def test_depth_must_be_positive():
    with pytest.raises(SimulationError):
        ModifiedReturnAddressStack(0)


def test_wraparound_behaviour():
    ras = ModifiedReturnAddressStack(3)
    for i in range(10):
        ras.push(i, i, i)
    # only the 3 most recent survive, in LIFO order
    assert [ras.pop().caller_fid for _ in range(3)] == [9, 8, 7]
    assert ras.pop() is None
