"""Cross-engine equivalence: the optimized replay core must be
*bit-identical* to the reference engine, not approximately equal.

``FastFetchEngine`` batches guaranteed hits, inlines the sequential
prefetcher, the CGP/CGHC accesses, the RAS, and the memory system, and
replaces the L1 recency lists with timestamps — every one of those
shortcuts is only sound if ``SimStats.to_dict()`` (floats included)
comes out equal to the reference engine's on the same trace.  These
tests drive both engines over randomized traces crossed with every
prefetcher family, permuted and identity layouts, perfect-icache and
demand-priority configurations, and same-line repeat patterns (the
``OP_EXEC_REP`` fast path).
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CgpPrefetcher
from repro.instrument.codeimage import CodeImage
from repro.instrument.trace import Trace
from repro.layout.layouts import AddressMap
from repro.obsv import AttributionCollector, validate_payload
from repro.uarch.config import CacheConfig, CghcConfig, SimConfig
from repro.uarch.fetch_engine import simulate
from repro.uarch.prefetch.nl import (
    NextNLinePrefetcher,
    RunAheadNLPrefetcher,
    TaggedNLPrefetcher,
)

N_FUNCTIONS = 6
FUNC_SIZE = 120

SMALL_CONFIG = SimConfig(
    l1i=CacheConfig(512, 2),  # tiny L1 so evictions happen constantly
    l2=CacheConfig(4096, 4),
    base_cpi=0.3,
)

PREFETCHERS = [None, "nl", "t-nl", "ra-nl", "cgp", "cgp-xchg"]
LAYOUTS = ["identity", "scrambled"]


def build_image():
    image = CodeImage()
    for i in range(N_FUNCTIONS):
        image.register_synthetic(f"f{i}", FUNC_SIZE)
    return image


def build_layout(kind):
    image = build_image()
    if kind == "identity":
        return AddressMap(image, range(N_FUNCTIONS), 1.0, 1.0, 1.0, "ident")
    # permuted blocks (non-contiguous line runs), inflated sizes, and a
    # float instruction scale: defeats every compile-time fast-path
    # precondition at once
    return AddressMap(
        image, reversed(range(N_FUNCTIONS)), 1.5, 0.3, 1.25, "scram"
    )


def make_prefetcher(name, layout, degree):
    if name is None:
        return None
    if name == "nl":
        return NextNLinePrefetcher(degree)
    if name == "t-nl":
        return TaggedNLPrefetcher(degree)
    if name == "ra-nl":
        return RunAheadNLPrefetcher(degree, 3)
    if name == "cgp-xchg":
        # collision-heavy geometry: a one-entry L1 over a four-entry L2
        # makes nearly every CGHC access an L2 exchange or a miss with
        # victim writeback, hammering the flat kernel's rare path
        return CgpPrefetcher(
            degree, CghcConfig(l1_bytes=1 * 40, l2_bytes=4 * 40), layout
        )
    return CgpPrefetcher(
        degree, CghcConfig(l1_bytes=4 * 40, l2_bytes=16 * 40), layout
    )


@st.composite
def traces(draw):
    """Well-formed traces biased toward the fast paths' edge cases:
    sequential runs (batching), same-line repeats (``OP_EXEC_REP``),
    offsets at the last function's tail (out-of-range prefetches)."""
    trace = Trace()
    stack = []
    for _ in range(draw(st.integers(1, 50))):
        action = draw(st.sampled_from(
            ["exec", "exec", "run", "repeat", "call", "ret"]))
        if action in ("exec", "run", "repeat"):
            fid = stack[-1] if stack else draw(
                st.integers(0, N_FUNCTIONS - 1))
            if action == "run":  # long ascending run: batch candidate
                lo = draw(st.integers(0, FUNC_SIZE - 2))
                hi = draw(st.integers(lo, FUNC_SIZE - 1))
                trace.add_exec(fid, lo, hi)
            elif action == "repeat":  # same single line, twice
                off = draw(st.integers(0, FUNC_SIZE - 1))
                trace.add_exec(fid, off, off)
                trace.add_exec(fid, off, off)
            else:
                trace.add_exec(fid, draw(st.integers(0, FUNC_SIZE - 1)),
                               draw(st.integers(0, FUNC_SIZE - 1)))
        elif action == "call" and len(stack) < 8:
            callee = draw(st.integers(0, N_FUNCTIONS - 1))
            trace.add_call(callee, stack[-1] if stack else -1,
                           draw(st.integers(0, FUNC_SIZE - 1)))
            stack.append(callee)
        elif action == "ret" and stack:
            fid = stack.pop()
            trace.add_return(fid, stack[-1] if stack else -1, 0)
    while stack:
        fid = stack.pop()
        trace.add_return(fid, stack[-1] if stack else -1, 0)
    return trace


def both_engines(trace, layout, config, pf_name, degree):
    """Run both engines with fresh prefetchers; return the two dicts."""
    ref = simulate(trace, layout, config,
                   prefetcher=make_prefetcher(pf_name, layout, degree),
                   engine="reference")
    fast = simulate(trace, layout, config,
                    prefetcher=make_prefetcher(pf_name, layout, degree),
                    engine="fast")
    return ref.to_dict(), fast.to_dict()


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces(), pf=st.sampled_from(PREFETCHERS),
       degree=st.integers(1, 4), layout_kind=st.sampled_from(LAYOUTS))
def test_engines_identical_on_random_traces(trace, pf, degree, layout_kind):
    layout = build_layout(layout_kind)
    ref, fast = both_engines(trace, layout, SMALL_CONFIG, pf, degree)
    assert ref == fast


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces(), pf=st.sampled_from(PREFETCHERS))
def test_engines_identical_under_perfect_icache(trace, pf):
    layout = build_layout("identity")
    config = replace(SMALL_CONFIG, perfect_icache=True)
    ref, fast = both_engines(trace, layout, config, pf, 2)
    assert ref == fast


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces(), pf=st.sampled_from(PREFETCHERS))
def test_engines_identical_under_demand_priority(trace, pf):
    """The ablation flag disables the fast engine's inlined memory
    system; the fallback must stay equivalent too."""
    layout = build_layout("scrambled")
    config = replace(SMALL_CONFIG, l2_demand_priority=True)
    ref, fast = both_engines(trace, layout, config, pf, 3)
    assert ref == fast


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces(), degree=st.integers(1, 4))
def test_fast_engine_rerun_is_deterministic(trace, degree):
    """The compile cache must not leak state between runs: a hot rerun
    (compiled trace reused) equals a cold run exactly."""
    layout = build_layout("identity")
    first = simulate(trace, layout, SMALL_CONFIG,
                     prefetcher=make_prefetcher("cgp", layout, degree),
                     engine="fast")
    second = simulate(trace, layout, SMALL_CONFIG,
                      prefetcher=make_prefetcher("cgp", layout, degree),
                      engine="fast")
    assert first.to_dict() == second.to_dict()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(trace=traces(), pf=st.sampled_from(PREFETCHERS),
       degree=st.integers(1, 4), layout_kind=st.sampled_from(LAYOUTS))
def test_attribution_identical_across_engines(trace, pf, degree,
                                              layout_kind):
    """With collection enabled, both engines must produce the same
    ``SimStats`` as the uninstrumented run AND bit-identical attribution
    payloads (including lifecycle records and interval samples)."""
    layout = build_layout(layout_kind)
    plain = simulate(trace, layout, SMALL_CONFIG,
                     prefetcher=make_prefetcher(pf, layout, degree),
                     engine="fast")
    stats = {}
    collectors = {}
    for engine in ("reference", "fast"):
        collector = AttributionCollector(layout, interval=400, lifecycle=64)
        stats[engine] = simulate(
            trace, layout, SMALL_CONFIG,
            prefetcher=make_prefetcher(pf, layout, degree),
            engine=engine, collector=collector,
        )
        collectors[engine] = collector
    # collection must not perturb the simulation
    assert stats["reference"].to_dict() == plain.to_dict()
    assert stats["fast"].to_dict() == plain.to_dict()
    ref, fast = collectors["reference"], collectors["fast"]
    assert ref.to_dict() == fast.to_dict()
    assert ref.lifecycle.records() == fast.lifecycle.records()
    validate_payload(ref.to_dict())


def test_attribution_totals_reconcile_with_simstats():
    """Per-function attribution sums must equal the engine's own
    aggregate counters — nothing double-counted, nothing missed."""
    trace = Trace()
    for fid in range(N_FUNCTIONS):
        trace.add_call(fid, fid - 1 if fid else -1, 0)
        trace.add_exec(fid, 0, FUNC_SIZE - 1)
    for fid in reversed(range(N_FUNCTIONS)):
        trace.add_return(fid, fid - 1 if fid else -1, 0)
    layout = build_layout("identity")
    collector = AttributionCollector(layout)
    result = simulate(trace, layout, SMALL_CONFIG,
                      prefetcher=make_prefetcher("cgp", layout, 4),
                      engine="fast", collector=collector)
    totals = {}
    for row in collector.function_table().values():
        for key, value in row.items():
            if isinstance(value, int):
                totals[key] = totals.get(key, 0) + value
    assert totals["demand_misses"] == result.demand_misses
    assert totals["memory_fetches"] == result.memory_fetches
    by_origin = {"pref_hits": 0, "delayed_hits": 0, "useless": 0,
                 "squashed": 0, "issued": 0}
    for p in result.prefetch.values():
        for key in by_origin:
            by_origin[key] += getattr(p, key)
    for key, want in by_origin.items():
        assert totals[key] == want
    assert (totals["cghc_l1_hits"] == result.cghc_l1_hits
            and totals["cghc_l2_hits"] == result.cghc_l2_hits
            and totals["cghc_misses"] == result.cghc_misses)


def test_out_of_range_accounted_identically():
    """NL running off the end of the address space must count
    ``out_of_range`` (not issue, not squash) — same in both engines."""
    trace = Trace()
    # execute the tail of the last-placed function so NL targets past
    # the end of the address space
    trace.add_exec(N_FUNCTIONS - 1, FUNC_SIZE - 8, FUNC_SIZE - 1)
    layout = build_layout("identity")
    ref = simulate(trace, layout, SMALL_CONFIG,
                   prefetcher=NextNLinePrefetcher(4), engine="reference")
    fast = simulate(trace, layout, SMALL_CONFIG,
                    prefetcher=NextNLinePrefetcher(4), engine="fast")
    assert ref.to_dict() == fast.to_dict()
    p = fast.prefetch["nl"]
    assert p.out_of_range > 0
    assert p.issued == p.accounted()
    assert fast.bus_transactions == fast.demand_misses + p.issued
