"""Exception hierarchy: every library error is a ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.StorageError,
    errors.PageFullError,
    errors.RecordNotFoundError,
    errors.BufferPoolFullError,
    errors.LockConflictError,
    errors.DeadlockError,
    errors.TransientDiskError,
    errors.TornPageError,
    errors.TransactionError,
    errors.RecoveryError,
    errors.CatalogError,
    errors.SqlError,
    errors.SqlSyntaxError,
    errors.PlanError,
    errors.ExecutionError,
    errors.TraceError,
    errors.LayoutError,
    errors.SimulationError,
    errors.ConfigError,
]


@pytest.mark.parametrize("error_class", ALL_ERRORS)
def test_all_derive_from_repro_error(error_class):
    assert issubclass(error_class, errors.ReproError)


def test_storage_sub_hierarchy():
    for cls in (
        errors.PageFullError,
        errors.BufferPoolFullError,
        errors.DeadlockError,
        errors.RecoveryError,
    ):
        assert issubclass(cls, errors.StorageError)


def test_sql_sub_hierarchy():
    assert issubclass(errors.SqlSyntaxError, errors.SqlError)


def test_one_catch_all():
    with pytest.raises(errors.ReproError):
        raise errors.DeadlockError("cycle")


# ----------------------------------------------------------------------
# transient/fatal partition (drives retry logic in the storage layer)
# ----------------------------------------------------------------------

TRANSIENT = [errors.DeadlockError, errors.TransientDiskError]


@pytest.mark.parametrize("error_class", TRANSIENT)
def test_transient_errors_carry_the_marker(error_class):
    assert issubclass(error_class, errors.TransientError)


@pytest.mark.parametrize(
    "error_class", [cls for cls in ALL_ERRORS if cls not in TRANSIENT]
)
def test_everything_else_is_fatal(error_class):
    assert not issubclass(error_class, errors.TransientError)


def test_transient_marker_is_checked_by_isinstance():
    # retry sites catch Exception and test the marker with isinstance
    # (a bare mixin cannot appear in an except clause)
    try:
        raise errors.TransientDiskError("flaky read")
    except Exception as exc:
        assert isinstance(exc, errors.TransientError)
        assert isinstance(exc, errors.ReproError)


def test_transient_marker_is_not_an_exception_by_itself():
    # the mixin must never be raised bare; it carries no Exception base
    assert not issubclass(errors.TransientError, BaseException)
