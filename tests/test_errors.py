"""Exception hierarchy: every library error is a ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.StorageError,
    errors.PageFullError,
    errors.RecordNotFoundError,
    errors.BufferPoolFullError,
    errors.LockConflictError,
    errors.DeadlockError,
    errors.TransactionError,
    errors.RecoveryError,
    errors.CatalogError,
    errors.SqlError,
    errors.SqlSyntaxError,
    errors.PlanError,
    errors.ExecutionError,
    errors.TraceError,
    errors.LayoutError,
    errors.SimulationError,
    errors.ConfigError,
]


@pytest.mark.parametrize("error_class", ALL_ERRORS)
def test_all_derive_from_repro_error(error_class):
    assert issubclass(error_class, errors.ReproError)


def test_storage_sub_hierarchy():
    for cls in (
        errors.PageFullError,
        errors.BufferPoolFullError,
        errors.DeadlockError,
        errors.RecoveryError,
    ):
        assert issubclass(cls, errors.StorageError)


def test_sql_sub_hierarchy():
    assert issubclass(errors.SqlSyntaxError, errors.SqlError)


def test_one_catch_all():
    with pytest.raises(errors.ReproError):
        raise errors.DeadlockError("cycle")
