"""Interval sampler: window edges, deltas, journal output."""

import pytest

from repro.harness.telemetry import RunJournal, read_journal
from repro.obsv import IntervalSampler
from repro.uarch.stats import SimStats


class _FakeEngine:
    """Just enough engine surface for the sampler."""

    def __init__(self):
        self.stats = SimStats()
        self.cycle = 0.0
        self.prefetcher = None

    def advance(self, instrs, cycles, accesses=0, misses=0,
                issued=0, useful=0):
        self.stats.instructions += instrs
        self.cycle += cycles
        self.stats.line_accesses += accesses
        self.stats.demand_misses += misses
        p = self.stats.prefetch_origin("nl")
        p.issued += issued
        p.pref_hits += useful


def test_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        IntervalSampler(0)


def test_window_deltas_and_rates():
    engine = _FakeEngine()
    sampler = IntervalSampler(100)
    engine.advance(100, 50.0, accesses=40, misses=4, issued=10, useful=5)
    sampler.take(engine)
    engine.advance(100, 25.0, accesses=10, misses=1)
    sampler.take(engine)
    first, second = sampler.samples
    assert first["ipc"] == 2.0
    assert first["miss_rate"] == 0.1
    assert first["prefetch_usefulness"] == 0.5
    assert second["window_instructions"] == 100
    assert second["window_cycles"] == 25.0
    assert second["window_demand_misses"] == 1
    assert second["instructions"] == 200  # cumulative
    assert second["cghc_entries"] is None  # no CGHC attached


def test_large_event_skips_covered_edges():
    # one event covering several window edges yields ONE sample and
    # advances next_at past every covered edge
    engine = _FakeEngine()
    sampler = IntervalSampler(100)
    engine.advance(350, 10.0)
    assert engine.stats.instructions >= sampler.next_at
    sampler.take(engine)
    assert len(sampler.samples) == 1
    assert sampler.next_at == 400


def test_finalize_emits_partial_sample_only_when_needed():
    engine = _FakeEngine()
    sampler = IntervalSampler(100)
    engine.advance(100, 10.0)
    sampler.take(engine)
    sampler.finalize(engine)  # nothing since the last sample
    assert len(sampler.samples) == 1
    engine.advance(30, 5.0)
    sampler.finalize(engine)
    assert len(sampler.samples) == 2
    assert sampler.samples[-1]["partial"] is True
    assert sampler.samples[0]["partial"] is False


def test_write_journal_emits_interval_events(tmp_path):
    engine = _FakeEngine()
    sampler = IntervalSampler(50)
    engine.advance(50, 5.0)
    sampler.take(engine)
    engine.advance(50, 5.0)
    sampler.take(engine)
    path = str(tmp_path / "j.jsonl")
    with RunJournal(path) as journal:
        sampler.write_journal(journal, suite="wisc-prof", config="OM+CGP_4")
    records, corrupt = read_journal(path)
    assert corrupt == 0
    assert [r["event"] for r in records] == ["interval", "interval"]
    assert [r["index"] for r in records] == [0, 1]
    assert all(r["suite"] == "wisc-prof" for r in records)
    assert records[0]["ipc"] == 10.0
