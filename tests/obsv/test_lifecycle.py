"""Prefetch lifecycle ring-buffer tracer."""

from repro.obsv import PrefetchLifecycle, PrefetchRecord


def test_issue_close_produces_full_record():
    lc = PrefetchLifecycle(capacity=8)
    lc.issue(5, "nl", issue_cycle=10.0, arrival_cycle=30.0)
    lc.close(5, "pref_hit", end_cycle=42.0)
    (record,) = lc.records()
    assert record == PrefetchRecord(5, "nl", 10.0, 30.0, "pref_hit", 42.0)
    assert lc.recorded == 1
    assert lc.open_count() == 0


def test_close_of_unknown_line_is_a_noop():
    lc = PrefetchLifecycle(capacity=4)
    lc.close(99, "useless", end_cycle=1.0)
    assert lc.records() == []
    assert lc.recorded == 0


def test_ring_overwrites_oldest_and_counts_drops():
    lc = PrefetchLifecycle(capacity=3)
    for line in range(5):
        lc.issue(line, "cghc", float(line), float(line) + 10.0)
        lc.close(line, "useless", float(line) + 20.0)
    records = lc.records()
    assert [r.line for r in records] == [2, 3, 4]  # oldest-first
    assert lc.recorded == 5
    assert lc.dropped == 2


def test_open_prefetches_counted_until_closed():
    lc = PrefetchLifecycle(capacity=4)
    lc.issue(1, "nl", 0.0, 5.0)
    lc.issue(2, "nl", 1.0, 6.0)
    assert lc.open_count() == 2
    lc.close(1, "delayed_hit", 4.0)
    assert lc.open_count() == 1
    summary = lc.summary()
    assert summary == {"capacity": 4, "recorded": 1, "dropped": 0, "open": 1}


def test_reissue_of_same_line_replaces_open_entry():
    lc = PrefetchLifecycle(capacity=4)
    lc.issue(7, "nl", 0.0, 5.0)
    lc.issue(7, "cghc", 2.0, 9.0)
    lc.close(7, "pref_hit", 12.0)
    (record,) = lc.records()
    assert record.origin == "cghc"
    assert record.issue_cycle == 2.0
