"""AttributionCollector: bucketing, rollups, payload validation."""

import copy

import pytest

from repro.instrument.codeimage import FrozenImage
from repro.layout.layouts import AddressMap
from repro.obsv import (
    ATTRIBUTION_SCHEMA_VERSION,
    AttributionCollector,
    validate_payload,
)

MODULES = ["repro.db.parser.parser", "repro.db.storage.btree", None]


def make_layout():
    image = FrozenImage(["parse", "search", "helper"], [64, 64, 64], MODULES)
    return image, AddressMap(image, range(3), 1.0, 1.0, 1.0, "ident")


def feed(collector, layout):
    """A tiny consistent event stream across all three functions."""
    f0, f1, f2 = layout.base_line  # entry line of each function
    collector.demand_miss(f0, from_mem=True)
    collector.demand_miss(f0 + 1, from_mem=False)
    collector.demand_miss(f1, from_mem=True)
    # function 1: two issued, one of each outcome bucket + one squash
    collector.issued(f1, "nl", cycle=10.0, arrival=20.0)
    collector.pref_hit(f1, "nl", cycle=25.0)
    collector.issued(f1 + 2, "cghc", cycle=12.0, arrival=30.0)
    collector.delayed_hit(f1 + 2, "cghc", stall=6.0, cycle=30.0)
    collector.squashed(f1, "nl")
    # function 2: a useless prefetch and an out-of-range request
    collector.issued(f2, "nl", cycle=14.0, arrival=24.0)
    collector.useless(f2, "nl", cycle=50.0)
    collector.out_of_range("nl")
    collector.cghc_access(f0, 0)
    collector.cghc_access(f1, 2)


def test_function_and_layer_rollups():
    image, layout = make_layout()
    collector = AttributionCollector(layout, image=image)
    feed(collector, layout)
    table = collector.function_table()
    assert table[0]["name"] == "parse"
    assert table[0]["layer"] == "parser"
    assert table[0]["demand_misses"] == 2
    assert table[0]["memory_fetches"] == 1
    assert table[1]["layer"] == "storage"
    assert table[1]["issued"] == 2
    assert table[1]["pref_hits"] == 1
    assert table[1]["delayed_hits"] == 1
    assert table[1]["squashed"] == 1
    assert table[2]["layer"] == "runtime"
    assert table[2]["useless"] == 1
    layers = collector.layer_table()
    assert layers["parser"]["demand_misses"] == 2
    assert layers["storage"]["cghc_misses"] == 1
    assert layers["parser"]["cghc_l1_hits"] == 1
    # sorted by demand misses: parser (2) before storage (1)
    assert list(layers)[0] == "parser"


def test_top_functions_stops_at_zero():
    image, layout = make_layout()
    collector = AttributionCollector(layout, image=image)
    feed(collector, layout)
    top = collector.top_functions(k=10, by="demand_misses")
    # function 2 has zero demand misses: excluded even though k allows it
    assert [entry["fid"] for entry in top] == [0, 1]
    by_useless = collector.top_functions(k=10, by="useless")
    assert [entry["fid"] for entry in by_useless] == [2]


def test_lateness_histogram_buckets_by_power_of_two():
    image, layout = make_layout()
    collector = AttributionCollector(layout, image=image)
    f1 = layout.base_line[1]
    for stall, bucket in ((0.5, 0), (1.0, 1), (3.0, 2), (900.0, 10)):
        collector.issued(f1, "cghc", 0.0, 1.0)
        collector.delayed_hit(f1, "cghc", stall, 1.0)
    assert collector.lateness_histogram() == {
        "cghc": {0: 1, 1: 1, 2: 1, 10: 1}
    }


def test_payload_validates_and_is_versioned():
    image, layout = make_layout()
    collector = AttributionCollector(layout, image=image, interval=100,
                                     lifecycle=16)
    feed(collector, layout)
    payload = collector.to_dict()
    assert payload["schema_version"] == ATTRIBUTION_SCHEMA_VERSION
    assert validate_payload(payload) is payload
    assert payload["out_of_range"] == {"nl": 1}
    assert payload["lifecycle"]["recorded"] == 3


@pytest.mark.parametrize("corrupt", [
    lambda p: p.update(schema_version=99),
    lambda p: p.pop("layers"),
    lambda p: p["functions"]["1"].update(issued=5),  # breaks accounting
    lambda p: p["functions"]["0"].update(demand_misses=-1),
    lambda p: p["layers"]["parser"].update(demand_misses=7),  # rollup
    lambda p: p["lateness"]["cghc"].update({"3": 10}),  # histogram total
])
def test_validate_rejects_corrupted_payloads(corrupt):
    image, layout = make_layout()
    collector = AttributionCollector(layout, image=image)
    feed(collector, layout)
    payload = copy.deepcopy(collector.to_dict())
    corrupt(payload)
    with pytest.raises(ValueError):
        validate_payload(payload)


def test_validate_rejects_unordered_interval_samples():
    image, layout = make_layout()
    collector = AttributionCollector(layout, image=image)
    feed(collector, layout)
    payload = collector.to_dict()
    sample = {"instructions": 100, "cycles": 10.0, "ipc": 1.0,
              "miss_rate": 0.0, "prefetch_usefulness": 0.0,
              "partial": False}
    payload["intervals"] = [dict(sample), dict(sample, instructions=50)]
    with pytest.raises(ValueError):
        validate_payload(payload)


def test_collector_without_image_reports_anonymous_functions():
    _image, layout = make_layout()
    collector = AttributionCollector(layout)
    feed(collector, layout)
    table = collector.function_table()
    assert table[0]["name"] is None
    assert table[0]["layer"] == "runtime"  # no module metadata
    assert validate_payload(collector.to_dict())
