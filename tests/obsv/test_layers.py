"""Module path -> DBMS layer resolution."""

import pytest

from repro.obsv import LAYER_NAMES, layer_of_module


@pytest.mark.parametrize("module,layer", [
    ("repro.db.parser.tokenizer", "parser"),
    ("repro.db.parser", "parser"),
    ("repro.db.optimizer.planner", "optimizer"),
    ("repro.db.exec.operators", "exec"),
    ("repro.db.storage.buffer_pool", "storage"),
    ("repro.db.storage", "storage"),
    ("repro.db.database", "db-core"),
    ("repro.db.scheduler", "db-core"),
    ("repro.db", "db-core"),
    (None, "runtime"),
    ("repro.workloads.suites", "other"),
    ("json", "other"),
])
def test_layer_of_module(module, layer):
    assert layer_of_module(module) == layer


def test_prefix_match_requires_dot_boundary():
    # "repro.db.parserx" is not inside the parser package
    assert layer_of_module("repro.db.parserx") == "db-core"
    assert layer_of_module("repro.dbx") == "other"


def test_every_result_is_a_known_layer():
    modules = ["repro.db.parser.p", "repro.db.optimizer.o", "repro.db.exec.e",
               "repro.db.storage.s", "repro.db.x", None, "elsewhere"]
    for module in modules:
        assert layer_of_module(module) in LAYER_NAMES
