"""The traced crash-recovery workload."""

from repro.workloads.recovery import RecoveryWorkload
from repro.workloads.suites import ALL_SUITE_NAMES, SUITE_NAMES, build_suite


def test_registered_but_not_a_paper_suite():
    assert "recovery" in ALL_SUITE_NAMES
    assert "recovery" not in SUITE_NAMES  # figures keep the paper's set


def test_build_suite_constructs_it():
    suite = build_suite("recovery", scale=0.5, seed=7)
    assert isinstance(suite, RecoveryWorkload)
    assert suite.query_names() == ["recovery"]


def test_run_recovers_and_scans():
    suite = RecoveryWorkload(scale=0.5, seed=3)
    results = suite.run()
    assert set(results) == {"recovery"}
    assert suite.recovery_stats is not None
    assert suite.recovery_stats.winners  # something committed pre-crash
    # rows are (key, value) pairs off the recovered heap
    for key, value in results["recovery"]:
        assert isinstance(key, int) and isinstance(value, int)


def test_same_seed_same_recovery():
    a = RecoveryWorkload(scale=0.5, seed=3).run()
    b = RecoveryWorkload(scale=0.5, seed=3).run()
    assert a == b


def test_database_attribute_exposes_storage():
    # the experiment runner reads suite.database.storage.pool.stats()
    suite = RecoveryWorkload(scale=0.5, seed=3)
    suite.run()
    stats = suite.database.storage.pool.stats()
    assert stats["capacity"] > 0
