"""TPC-H: generator integrity and query results vs naive references."""

import pytest

from repro.db import Database
from repro.db.exec.schema import date_to_int
from repro.workloads import tpch


@pytest.fixture(scope="module")
def db():
    database = Database(pool_pages=2048)
    tpch.setup(database, scale_factor=0.5, seed=42)
    return database


def rows_of(db, table):
    with db.storage.begin() as txn:
        return [row for _rid, row in db.catalog.table(table).scan(txn)]


def test_reference_tables_fixed(db):
    assert len(rows_of(db, "region")) == 5
    assert len(rows_of(db, "nation")) == 25


def test_foreign_keys_valid(db):
    nations = {n[0] for n in rows_of(db, "nation")}
    regions = {r[0] for r in rows_of(db, "region")}
    suppliers = {s[0] for s in rows_of(db, "supplier")}
    parts = {p[0] for p in rows_of(db, "part")}
    orders = {o[0] for o in rows_of(db, "orders")}
    customers = {c[0] for c in rows_of(db, "customer")}
    assert all(n[2] in regions for n in rows_of(db, "nation"))
    assert all(s[2] in nations for s in rows_of(db, "supplier"))
    assert all(c[2] in nations for c in rows_of(db, "customer"))
    assert all(ps[0] in parts and ps[1] in suppliers for ps in rows_of(db, "partsupp"))
    assert all(o[1] in customers for o in rows_of(db, "orders"))
    for line in rows_of(db, "lineitem"):
        assert line[0] in orders
        assert line[1] in parts
        assert line[2] in suppliers


def test_dates_in_tpch_window(db):
    lo = date_to_int("1992-01-01")
    hi = date_to_int("1998-12-31")
    assert all(lo <= o[3] <= hi for o in rows_of(db, "orders"))
    assert all(lo <= l[10] <= hi for l in rows_of(db, "lineitem"))


def test_shipdate_after_orderdate(db):
    orders = {o[0]: o[3] for o in rows_of(db, "orders")}
    assert all(l[10] > orders[l[0]] for l in rows_of(db, "lineitem"))


def test_q1_matches_reference(db):
    lineitem = rows_of(db, "lineitem")
    cutoff = date_to_int("1998-09-02")
    expected = {}
    for l in lineitem:
        if l[10] > cutoff:
            continue
        key = (l[8], l[9])
        acc = expected.setdefault(key, [0.0, 0.0, 0.0, 0.0, 0])
        acc[0] += l[4]
        acc[1] += l[5]
        acc[2] += l[5] * (1 - l[6])
        acc[3] += l[5] * (1 - l[6]) * (1 + l[7])
        acc[4] += 1
    result = db.execute(tpch.QUERY_1)
    assert len(result) == len(expected)
    for row in result.rows:
        key = (row[0], row[1])
        acc = expected[key]
        assert row[2] == pytest.approx(acc[0])
        assert row[3] == pytest.approx(acc[1])
        assert row[4] == pytest.approx(acc[2])
        assert row[5] == pytest.approx(acc[3])
        assert row[9] == acc[4]
        assert row[6] == pytest.approx(acc[0] / acc[4])
    # ordered by returnflag, linestatus
    keys = [(r[0], r[1]) for r in result.rows]
    assert keys == sorted(keys)


def test_q6_matches_reference(db):
    lineitem = rows_of(db, "lineitem")
    lo = date_to_int("1994-01-01")
    hi = date_to_int("1995-01-01")
    expected = sum(
        l[5] * l[6]
        for l in lineitem
        if lo <= l[10] < hi and 0.05 <= l[6] <= 0.07 and l[4] < 24
    )
    result = db.execute(tpch.QUERY_6)
    assert result.rows[0][0] == pytest.approx(expected)


def test_q3_matches_reference(db):
    customers = {c[0] for c in rows_of(db, "customer") if c[3] == "BUILDING"}
    cut = date_to_int("1995-03-15")
    orders = {
        o[0]: o for o in rows_of(db, "orders") if o[1] in customers and o[3] < cut
    }
    agg = {}
    for l in rows_of(db, "lineitem"):
        order = orders.get(l[0])
        if order is None or l[10] <= cut:
            continue
        key = (l[0], order[3], order[4])
        agg[key] = agg.get(key, 0.0) + l[5] * (1 - l[6])
    expected = sorted(
        ((k[0], v, k[1], k[2]) for k, v in agg.items()),
        key=lambda r: (-r[1], r[2]),
    )[:10]
    got = db.execute(tpch.QUERY_3).rows
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert g[0] == e[0]
        assert g[1] == pytest.approx(e[1])


def test_q5_matches_reference(db):
    asia = {r[0] for r in rows_of(db, "region") if r[1] == "ASIA"}
    nation_name = {n[0]: n[1] for n in rows_of(db, "nation") if n[2] in asia}
    lo = date_to_int("1994-01-01")
    hi = date_to_int("1995-01-01")
    orders = {o[0]: o for o in rows_of(db, "orders") if lo <= o[3] < hi}
    suppliers = {s[0]: s for s in rows_of(db, "supplier")}
    customers = {c[0]: c for c in rows_of(db, "customer")}
    revenue = {}
    for l in rows_of(db, "lineitem"):
        order = orders.get(l[0])
        supplier = suppliers.get(l[2])
        if order is None or supplier is None:
            continue
        if supplier[2] not in nation_name:
            continue
        if customers[order[1]][2] != supplier[2]:
            continue
        name = nation_name[supplier[2]]
        revenue[name] = revenue.get(name, 0.0) + l[5] * (1 - l[6])
    expected = sorted(revenue.items(), key=lambda kv: -kv[1])
    got = db.execute(tpch.QUERY_5).rows
    assert [g[0] for g in got] == [e[0] for e in expected]
    for g, e in zip(got, expected):
        assert g[1] == pytest.approx(e[1])


def test_q2_matches_reference(db):
    europe = {r[0] for r in rows_of(db, "region") if r[1] == "EUROPE"}
    eu_nations = {n[0]: n[1] for n in rows_of(db, "nation") if n[2] in europe}
    eu_suppliers = {
        s[0]: s for s in rows_of(db, "supplier") if s[2] in eu_nations
    }
    partsupp = rows_of(db, "partsupp")
    min_cost = {}
    for ps in partsupp:
        if ps[1] in eu_suppliers:
            if ps[0] not in min_cost or ps[3] < min_cost[ps[0]]:
                min_cost[ps[0]] = ps[3]
    parts = {p[0]: p for p in rows_of(db, "part")}
    expected = []
    for ps in partsupp:
        if ps[1] not in eu_suppliers or min_cost.get(ps[0]) != ps[3]:
            continue
        if parts[ps[0]][2] != 15:
            continue
        supplier = eu_suppliers[ps[1]]
        expected.append(
            (supplier[3], supplier[1], eu_nations[supplier[2]], ps[0])
        )
    expected.sort(key=lambda r: (-r[0], r[2], r[1], r[3]))
    got = db.execute(tpch.QUERY_2).rows
    assert got == [
        (pytest.approx(e[0]), e[1], e[2], e[3]) for e in expected
    ]


def test_all_queries_run_under_scheduler(db):
    results = db.run_concurrent(
        [(name, sql) for name, sql, _h in tpch.queries()], quantum_rows=2
    )
    assert set(results) == {q[0] for q in tpch.queries()}


def test_scale_factor_scales_cardinalities():
    small = tpch.table_sizes(0.5)
    large = tpch.table_sizes(2.0)
    assert large["customer"] > small["customer"]
    assert large["part"] > small["part"]
    assert small["region"] == large["region"] == 5
