"""The serving workload: deterministic multi-tenant traffic for tracing."""

from repro.workloads.serving import ServingWorkload
from repro.workloads.suites import ALL_SUITE_NAMES, build_suite


def test_serving_registered_as_a_suite():
    assert "serving" in ALL_SUITE_NAMES
    suite = build_suite("serving", scale=0.25)
    assert suite.name == "serving"
    assert suite.query_names() == ["serving"]


def test_run_is_deterministic_in_scale_and_seed():
    first = ServingWorkload(scale=0.25, seed=9).run()
    second = ServingWorkload(scale=0.25, seed=9).run()
    assert first == second
    other_seed = ServingWorkload(scale=0.25, seed=10).run()
    assert other_seed["serving"] != first["serving"]


def test_streams_exercise_the_serving_machinery():
    workload = ServingWorkload(scale=0.25, seed=1234)
    rows = workload.run()["serving"]
    assert rows  # the verification scan saw the final table
    stats = workload.stats()
    assert stats["failed"] + stats["completed"] == stats["admitted"]
    assert stats["fatal_errors"] == 0
    cache = stats["statement_cache"]
    assert cache["hits"] > 0  # the point-lookup stream reuses statements
    tenants = stats["tenants"]
    assert set(tenants) == {"oltp", "analytics", "batch"}
    assert all(t["quanta"] > 0 for t in tenants.values())


def test_scale_grows_the_workload():
    small = ServingWorkload(scale=0.25, seed=1)
    large = ServingWorkload(scale=1.0, seed=1)
    assert len(large.run()["serving"]) > len(small.run()["serving"])


def test_database_attribute_exposes_storage():
    workload = ServingWorkload(scale=0.25)
    # the experiment runner reads pool stats through suite.database
    assert workload.database.storage.pool.stats()["capacity"] > 0
