"""Workload suites (the paper's four DB workloads)."""

import pytest

from repro.errors import ConfigError
from repro.workloads.suites import SUITE_NAMES, build_suite


def test_unknown_suite_rejected():
    with pytest.raises(ConfigError):
        build_suite("oltp-bank")


def test_wisc_prof_has_three_queries():
    suite = build_suite("wisc-prof", scale=0.15)
    assert suite.query_names() == ["wisc_q1", "wisc_q5", "wisc_q9"]


def test_wisc_large_2_has_eight_queries():
    suite = build_suite("wisc-large-2", scale=0.012)
    assert len(suite.queries) == 8


def test_wisc_tpch_has_thirteen_queries():
    suite = build_suite("wisc+tpch", scale=0.008)
    assert len(suite.queries) == 13
    names = suite.query_names()
    assert "tpch_q2" in names and "wisc_q9" in names


def test_suite_runs_and_produces_rows():
    suite = build_suite("wisc-prof", scale=0.15)
    results = suite.run()
    assert set(results) == {"wisc_q1", "wisc_q5", "wisc_q9"}
    assert all(len(rows) > 0 for rows in results.values())


def test_all_suites_buildable():
    for name in SUITE_NAMES:
        suite = build_suite(name, scale=0.01 if "large" in name or "+" in name else 0.1)
        assert suite.name == name
        assert suite.queries
