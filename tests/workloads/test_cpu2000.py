"""Synthetic CPU2000 workloads."""

import pytest

from repro.instrument.trace import validate_trace
from repro.workloads import cpu2000


@pytest.mark.parametrize("name", cpu2000.BENCHMARK_NAMES)
def test_traces_are_well_formed(name):
    image, trace = cpu2000.build_benchmark(name, target_instructions=100_000)
    depth = validate_trace(trace, image)
    assert depth >= 1
    assert trace.total_instructions() >= 100_000


def test_deterministic_per_name():
    a_image, a_trace = cpu2000.build_benchmark("gzip", target_instructions=50_000)
    b_image, b_trace = cpu2000.build_benchmark("gzip", target_instructions=50_000)
    assert a_trace.kinds == b_trace.kinds
    assert a_trace.a == b_trace.a
    assert a_image.function_count == b_image.function_count


def test_benchmarks_differ():
    _ia, gzip_trace = cpu2000.build_benchmark("gzip", target_instructions=50_000)
    _ib, gcc_trace = cpu2000.build_benchmark("gcc", target_instructions=50_000)
    assert gzip_trace.kinds != gcc_trace.kinds or gzip_trace.a != gcc_trace.a


def test_gcc_has_largest_footprint():
    sizes = {}
    for name in cpu2000.BENCHMARK_NAMES:
        image, _trace = cpu2000.build_benchmark(name, target_instructions=10_000)
        sizes[name] = image.total_instrs()
    assert max(sizes, key=sizes.get) == "gcc"


def test_expected_gap_table_covers_all():
    for name in cpu2000.BENCHMARK_NAMES:
        assert 0.0 <= cpu2000.perfect_gap_expected(name) <= 0.2
