"""Wisconsin benchmark: generator invariants, query result sizes."""

import pytest

from repro.db import Database
from repro.workloads import wisconsin

N = 500


@pytest.fixture(scope="module")
def db():
    database = Database(pool_pages=1024)
    wisconsin.setup(database, n_tuples=N, seed=7)
    return database


def test_generator_unique_columns():
    rows = list(wisconsin.generate_rows(200, seed=1))
    unique1 = [r[0] for r in rows]
    unique2 = [r[1] for r in rows]
    assert sorted(unique1) == list(range(200))
    assert unique2 == list(range(200))  # clustered order


def test_generator_derived_columns():
    for row in wisconsin.generate_rows(100, seed=2):
        u1 = row[0]
        assert row[2] == u1 % 2
        assert row[3] == u1 % 4
        assert row[4] == u1 % 10
        assert row[6] == u1 % 100
        assert row[10] == u1
        assert row[11] == (u1 % 100) * 2
        assert row[12] == (u1 % 100) * 2 + 1
        assert row[15] in ("AAAA", "HHHH", "OOOO", "VVVV")


def test_generator_deterministic_per_seed():
    a = list(wisconsin.generate_rows(50, seed=3))
    b = list(wisconsin.generate_rows(50, seed=3))
    c = list(wisconsin.generate_rows(50, seed=4))
    assert a == b
    assert a != c


def test_setup_creates_three_relations(db):
    for name in ("tenk1", "tenk2", "onek"):
        assert db.catalog.has_table(name)
    assert db.catalog.table("tenk1").row_count == N
    assert db.catalog.table("onek").row_count == N // 10


def test_setup_creates_indexes(db):
    table = db.catalog.table("tenk1")
    assert table.index_on("unique2").clustered
    assert not table.index_on("unique1").clustered


@pytest.mark.parametrize("name", [q[0] for q in wisconsin.queries(N)])
def test_query_result_counts(db, name):
    queries = {q[0]: q for q in wisconsin.queries(N)}
    _name, sql, hints = queries[name]
    result = db.execute(sql, hints=hints)
    assert len(result) == wisconsin.expected_selection_count(name, N)


def test_q1_no_index_q3_index(db):
    queries = {q[0]: q for q in wisconsin.queries(N)}
    _n, sql1, hints1 = queries["wisc_q1"]
    _n, sql3, hints3 = queries["wisc_q3"]
    assert "IndexScan" not in db.explain(sql1, hints=hints1)
    assert "IndexScan" in db.explain(sql3, hints=hints3)


def test_q9_join_plan_uses_index(db):
    queries = {q[0]: q for q in wisconsin.queries(N)}
    _n, sql, hints = queries["wisc_q9"]
    assert "Join" in db.explain(sql, hints=hints)


def test_query_subset_selects_by_name():
    subset = wisconsin.query_subset(("wisc_q1", "wisc_q9"), N)
    assert [q[0] for q in subset] == ["wisc_q1", "wisc_q9"]


def test_query_subset_unknown_raises():
    with pytest.raises(ValueError):
        wisconsin.query_subset(("wisc_q99",), N)
