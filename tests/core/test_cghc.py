"""Call Graph History Cache mechanics — the paper's §3.2 rules."""

import pytest

from repro.core.cghc import CallGraphHistoryCache, CghcEntry, DirectMappedCghc
from repro.errors import ConfigError
from repro.uarch.config import CghcConfig


def one_level(entries=8, slots=8):
    return CallGraphHistoryCache(
        CghcConfig(l1_bytes=entries * 40, l2_bytes=0, slots=slots)
    )


def two_level(l1_entries=2, l2_entries=8):
    return CallGraphHistoryCache(
        CghcConfig(l1_bytes=l1_entries * 40, l2_bytes=l2_entries * 40)
    )


def infinite():
    return CallGraphHistoryCache(CghcConfig(infinite=True))


# ----------------------------------------------------------------------
# entry semantics
# ----------------------------------------------------------------------


def test_new_entry_has_index_one():
    entry = CghcEntry(tag=100)
    assert entry.index == 1
    assert entry.first_callee() is None
    assert entry.predicted_next() is None


def test_record_call_fills_slots_in_order():
    entry = CghcEntry(100)
    for callee in (7, 8, 9):
        entry.record_call(callee, max_slots=8)
    assert entry.seq == [7, 8, 9]
    assert entry.index == 4


def test_index_caps_and_extra_callees_dropped():
    """§3.2: only the first 8 functions invoked are stored."""
    entry = CghcEntry(100)
    for callee in range(12):
        entry.record_call(callee, max_slots=8)
    assert entry.seq == list(range(8))
    assert entry.index == 9  # parked past the last slot


def test_reset_index_enables_overwrite_of_history():
    """A new invocation overwrites the old sequence slot by slot while
    the tail of the previous invocation stays predictable."""
    entry = CghcEntry(100)
    for callee in (1, 2, 3):
        entry.record_call(callee, max_slots=8)
    entry.reset_index()  # the function returned
    assert entry.index == 1
    entry.record_call(9, max_slots=8)
    assert entry.seq == [9, 2, 3]  # slot 1 replaced, old tail intact
    assert entry.predicted_next() == 2  # next return-prefetch target


def test_predicted_next_follows_index():
    entry = CghcEntry(100)
    for callee in (1, 2, 3):
        entry.record_call(callee, max_slots=8)
    entry.reset_index()
    assert entry.predicted_next() == 1
    entry.record_call(1, max_slots=8)
    assert entry.predicted_next() == 2


def test_first_callee_is_slot_one():
    entry = CghcEntry(100)
    entry.record_call(42, max_slots=8)
    entry.record_call(43, max_slots=8)
    assert entry.first_callee() == 42


def test_unbounded_slots_for_infinite_cghc():
    entry = CghcEntry(100)
    for callee in range(20):
        entry.record_call(callee, max_slots=None)
    assert entry.seq == list(range(20))


# ----------------------------------------------------------------------
# direct-mapped level
# ----------------------------------------------------------------------


def test_direct_mapped_probe_and_install():
    level = DirectMappedCghc(4)
    entry = CghcEntry(8)  # set 0
    assert level.install(entry) is None
    assert level.probe(8) is entry
    assert level.probe(12) is None  # same set, different tag
    conflicting = CghcEntry(12)
    victim = level.install(conflicting)
    assert victim is entry
    assert level.probe(8) is None


def test_zero_entries_rejected():
    with pytest.raises(ConfigError):
        DirectMappedCghc(0)


# ----------------------------------------------------------------------
# one-level cache
# ----------------------------------------------------------------------


def test_lookup_miss_then_ensure_creates():
    cghc = one_level()
    entry, latency = cghc.lookup(10)
    assert entry is None
    assert cghc.misses == 1
    entry, _latency = cghc.ensure(10)
    assert entry.tag == 10
    found, _latency = cghc.lookup(10)
    assert found is entry
    assert cghc.l1_hits == 1


def test_conflict_eviction_direct_mapped():
    cghc = one_level(entries=4)
    cghc.ensure(0)
    cghc.ensure(4)  # same set (4 % 4 == 0)
    entry, _lat = cghc.lookup(0)
    assert entry is None  # evicted by the conflicting tag


def test_one_level_latency():
    config = CghcConfig(l1_bytes=4 * 40, l2_bytes=0, l1_latency=1)
    cghc = CallGraphHistoryCache(config)
    cghc.ensure(3)
    _entry, latency = cghc.lookup(3)
    assert latency == 1


# ----------------------------------------------------------------------
# two-level cache
# ----------------------------------------------------------------------


def test_l1_victim_spills_to_l2():
    cghc = two_level(l1_entries=1, l2_entries=8)
    first, _ = cghc.ensure(0)
    cghc.ensure(1)  # evicts tag 0 from the 1-entry L1 into L2
    entry, latency = cghc.lookup(0)
    assert entry is first
    assert latency == cghc.config.l2_latency
    assert cghc.l2_hits == 1


def test_l2_hit_swaps_into_l1():
    cghc = two_level(l1_entries=1, l2_entries=8)
    cghc.ensure(0)
    cghc.ensure(1)
    cghc.lookup(0)  # L2 hit: swap 0 up, 1 down
    _entry, latency = cghc.lookup(0)
    assert latency == cghc.config.l1_latency  # now in L1
    entry1, latency1 = cghc.lookup(1)
    assert entry1 is not None
    assert latency1 == cghc.config.l2_latency  # went down to L2


def test_swap_does_not_duplicate_entries():
    cghc = two_level(l1_entries=1, l2_entries=4)
    a, _ = cghc.ensure(0)
    cghc.ensure(1)
    cghc.lookup(0)  # swap up
    assert cghc.entry_count() == 2


def test_miss_in_both_levels_counts_once():
    cghc = two_level()
    cghc.lookup(5)
    assert cghc.misses == 1
    assert cghc.l1_hits == 0
    assert cghc.l2_hits == 0


# ----------------------------------------------------------------------
# infinite cache
# ----------------------------------------------------------------------


def test_infinite_never_evicts():
    cghc = infinite()
    for tag in range(1000):
        cghc.ensure(tag)
    assert cghc.entry_count() == 1000
    entry, _lat = cghc.lookup(999)
    assert entry is not None
    assert cghc.max_slots is None


def test_entry_count_by_variant():
    cghc = one_level(entries=8)
    cghc.ensure(0)
    cghc.ensure(1)
    assert cghc.entry_count() == 2
