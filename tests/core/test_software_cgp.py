"""Software CGP (the paper's §6 future-work variant)."""

import pytest

from repro.core.software_cgp import (
    ORIGIN_SWCGP,
    SoftwareCgpPrefetcher,
    train_call_sequences,
)
from repro.errors import ConfigError
from repro.instrument.codeimage import CodeImage
from repro.instrument.trace import Trace
from repro.layout.layouts import AddressMap
from repro.uarch.ras import RasEntry


class FakeEngine:
    def __init__(self):
        self.heads = []

    def prefetch_function_head(self, fid, n, origin, delay=0):
        self.heads.append((fid, origin))

    def issue_prefetch(self, line, origin, delay=0):
        return True


def build_layout(n=8):
    image = CodeImage()
    for i in range(n):
        image.register_synthetic(f"f{i}", 100)
    return AddressMap(image, range(n), 1.0, 1.0, 1.0, "t")


def invocation_trace(callee_sequences):
    """Trace where function 0 is invoked once per sequence, calling the
    given callees in order."""
    trace = Trace()
    for sequence in callee_sequences:
        trace.add_call(0, -1, 0)
        offset = 1
        for callee in sequence:
            trace.add_call(callee, 0, offset)
            trace.add_exec(callee, 0, 50)
            trace.add_return(callee, 0, 50)
            offset += 10
        trace.add_return(0, -1, 99)
    return trace


def test_training_takes_modal_sequence():
    trace = invocation_trace([[1, 2, 3], [1, 2, 3], [1, 4, 3]])
    table = train_call_sequences(trace)
    assert table[0] == [1, 2, 3]


def test_training_handles_variable_lengths():
    trace = invocation_trace([[1, 2], [1, 2, 3]])
    table = train_call_sequences(trace)
    assert table[0][:2] == [1, 2]
    assert table[0][2] == 3


def test_training_caps_slots():
    trace = invocation_trace([list(range(1, 7)) * 3])  # 18 calls
    table = train_call_sequences(trace, max_slots=4)
    assert len(table[0]) == 4


def test_prefetches_follow_static_table():
    layout = build_layout()
    table = {0: [1, 2, 3], 1: [5]}
    sw = SoftwareCgpPrefetcher(4, table, layout)
    engine = FakeEngine()
    # enter function 0: prefetch its first static callee (1)
    sw.on_call(-1, 0, True, engine)
    assert (1, ORIGIN_SWCGP) in engine.heads
    # call 1 from 0: prefetch 1's first callee (5)
    sw.on_call(0, 1, True, engine)
    assert (5, ORIGIN_SWCGP) in engine.heads
    # return from 1 into 0: prefetch 0's next slot (2)
    engine.heads.clear()
    sw.on_return(1, RasEntry(0, layout.entry_line(0), 0), True, engine)
    assert engine.heads == [(2, ORIGIN_SWCGP)]


def test_static_table_never_adapts():
    layout = build_layout()
    table = {0: [1]}
    sw = SoftwareCgpPrefetcher(4, table, layout)
    engine = FakeEngine()
    # actual behaviour calls 7, but the table still predicts 1
    for _ in range(5):
        sw.on_call(-1, 0, True, engine)
        sw.on_call(0, 7, True, engine)
        sw.on_return(7, RasEntry(0, layout.entry_line(0), 0), True, engine)
        sw.on_return(0, None, True, engine)
    predicted = {fid for fid, origin in engine.heads if origin == ORIGIN_SWCGP}
    assert predicted == {1}


def test_prefetch_ignores_branch_prediction():
    """Software prefetch instructions always execute."""
    layout = build_layout()
    sw = SoftwareCgpPrefetcher(4, {0: [1]}, layout)
    engine = FakeEngine()
    sw.on_call(-1, 0, False, engine)  # predictor missed: irrelevant
    assert engine.heads


def test_unknown_function_silent():
    layout = build_layout()
    sw = SoftwareCgpPrefetcher(4, {}, layout)
    engine = FakeEngine()
    sw.on_call(-1, 3, True, engine)
    sw.on_return(3, RasEntry(0, 0, 0), True, engine)
    assert engine.heads == []


def test_end_to_end_software_vs_hardware(prof_artifacts, small_runner):
    """Software CGP trained on the same workload should land in the same
    ballpark as hardware CGP; both must beat plain NL's miss count."""
    from repro.uarch import simulate

    layout = prof_artifacts.layout("OM")
    table = train_call_sequences(prof_artifacts.trace)
    sw = SoftwareCgpPrefetcher(4, table, layout)
    sw_stats = simulate(
        prof_artifacts.trace, layout, small_runner.sim_config, prefetcher=sw
    )
    hw_stats = small_runner.run("wisc-prof", "OM", ("cgp", 4))
    nl_stats = small_runner.run("wisc-prof", "OM", ("nl", 4))
    assert sw_stats.demand_misses < nl_stats.demand_misses
    assert sw_stats.cycles < nl_stats.cycles
    assert sw_stats.cycles == pytest.approx(hw_stats.cycles, rel=0.10)


def test_bad_n_rejected():
    layout = build_layout()
    with pytest.raises(ConfigError):
        SoftwareCgpPrefetcher(0, {}, layout)
