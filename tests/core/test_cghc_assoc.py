"""Set-associative CGHC levels (the associativity ablation)."""

import pytest

from repro.core.cghc import CallGraphHistoryCache, CghcEntry, DirectMappedCghc
from repro.errors import ConfigError
from repro.uarch.config import CghcConfig


def test_two_way_set_holds_two_conflicting_tags():
    level = DirectMappedCghc(8, ways=2)  # 4 sets
    a = CghcEntry(0)
    b = CghcEntry(4)  # same set as 0
    assert level.install(a) is None
    assert level.install(b) is None
    assert level.probe(0) is a
    assert level.probe(4) is b


def test_lru_within_set():
    level = DirectMappedCghc(4, ways=2)  # 2 sets
    a, b, c = CghcEntry(0), CghcEntry(2), CghcEntry(4)  # all set 0
    level.install(a)
    level.install(b)
    level.probe(0)  # refresh a
    victim = level.install(c)
    assert victim is b


def test_reinstall_same_tag_replaces_in_place():
    level = DirectMappedCghc(4, ways=2)
    a = CghcEntry(0)
    a2 = CghcEntry(0)
    level.install(a)
    victim = level.install(a2)
    assert victim is a
    assert level.entry_count() == 1
    assert level.probe(0) is a2


def test_remove():
    level = DirectMappedCghc(4, ways=2)
    a = CghcEntry(0)
    level.install(a)
    assert level.remove(0) is a
    assert level.remove(0) is None
    assert level.probe(0) is None


def test_zero_ways_rejected():
    with pytest.raises(ConfigError):
        DirectMappedCghc(4, ways=0)


def test_config_assoc_wires_through():
    cghc = CallGraphHistoryCache(
        CghcConfig(l1_bytes=8 * 40, l2_bytes=0, assoc=2)
    )
    assert cghc.l1.ways == 2
    # two conflicting tags coexist under 2-way
    cghc.ensure(0)
    cghc.ensure(cghc.l1.n_sets)  # same set, different tag
    entry, _lat = cghc.lookup(0)
    assert entry is not None


def test_two_level_swap_with_associativity():
    config = CghcConfig(l1_bytes=2 * 40, l2_bytes=8 * 40, assoc=2)
    cghc = CallGraphHistoryCache(config)
    cghc.ensure(0)
    cghc.ensure(1)
    cghc.ensure(2)  # spills something to L2
    total_before = cghc.entry_count()
    # hit whatever went down; it must swap back without duplication
    for tag in (0, 1, 2):
        entry, _lat = cghc.lookup(tag)
        assert entry is not None
    assert cghc.entry_count() == total_before
