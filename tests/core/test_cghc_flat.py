"""Flat-CGHC oracle: the array representation must match the dict cache.

``FlatCghc`` is the state the optimized replay kernels actually mutate;
``CallGraphHistoryCache`` stays the semantic oracle.  These tests pin the
flat probe/allocate/exchange sequence — and the per-entry operations the
kernels inline — to the dict implementation op by op, with the two-level
invariants (no tag resident in both levels, exchange preserves every
entry field) checked after every step.  The hypothesis stream is biased
collision-heavy: an optional mode multiplies every tag by the L1 set
count so *all* accesses conflict in L1 and the exchange/writeback path
runs continuously.

``REPRO_FUZZ_EXAMPLES`` bounds the example count, as in the engine fuzz
suite (CI smoke sets a small value).
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cghc import CallGraphHistoryCache, FlatCghc
from repro.errors import ConfigError
from repro.uarch.config import CghcConfig
from repro.uarch.fast_engine import (
    _CGHC_SET_CACHE,
    _cghc_set_tables,
    clear_compile_cache,
)

from tests.uarch.test_engine_equivalence import build_layout

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "60"))

FUZZ = settings(max_examples=MAX_EXAMPLES, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

# (l1_entries, l2_entries, slots) — includes one-level (l2 == 0), the
# one-set L2 (every victim aliases the hit entry's set), and small slot
# caps so the index parks past the last slot early
GEOMETRIES = [
    (1, 4, 2),
    (1, 1, 2),
    (2, 8, 4),
    (3, 5, 3),
    (4, 16, 8),
    (4, 0, 8),
]


def build(l1_entries, l2_entries, slots=8):
    return CallGraphHistoryCache(CghcConfig(
        l1_bytes=l1_entries * 40, l2_bytes=l2_entries * 40, slots=slots))


def level_image(level):
    """Canonical per-set image of a direct-mapped dict level."""
    image = []
    for bucket in level._sets:
        if bucket:
            entry = bucket[-1]
            image.append((entry.tag, entry.index, tuple(entry.seq)))
        else:
            image.append(None)
    return image


def flat_level_image(flat, which):
    tags, idxs, lens, seqs = (
        (flat.l1_tag, flat.l1_idx, flat.l1_len, flat.l1_seq) if which == 1
        else (flat.l2_tag, flat.l2_idx, flat.l2_len, flat.l2_seq))
    stride = flat.slots
    image = []
    for s, tag in enumerate(tags):
        if tag >= 0:
            image.append(
                (tag, idxs[s], tuple(seqs[s * stride:s * stride + lens[s]])))
        else:
            image.append(None)
    return image


def check_invariants(flat, cghc):
    """Per-step invariants: residency parity with the oracle and no tag
    in both levels at once."""
    l1_tags = {tag for tag in flat.l1_tag if tag >= 0}
    assert flat_level_image(flat, 1) == level_image(cghc.l1)
    if flat.n2:
        l2_tags = {tag for tag in flat.l2_tag if tag >= 0}
        assert not (l1_tags & l2_tags)
        assert flat_level_image(flat, 2) == level_image(cghc.l2)
    assert flat.entry_count() == cghc.entry_count()


# ----------------------------------------------------------------------
# the oracle fuzz
# ----------------------------------------------------------------------

@st.composite
def op_streams(draw):
    """(kind, tag, aux) triples; every op probes its tag first, exactly
    as the kernels do (probe, then act on the resident entry)."""
    ops = []
    for _ in range(draw(st.integers(1, 100))):
        kind = draw(st.sampled_from(
            ["ensure", "ensure", "ensure", "record", "record",
             "reset", "predict", "first"]))
        ops.append((kind, draw(st.integers(0, 23)),
                    draw(st.integers(0, 9))))
    return ops


def run_against_oracle(l1_entries, l2_entries, slots, ops, collide):
    cghc = build(l1_entries, l2_entries, slots)
    mirror = build(l1_entries, l2_entries, slots)
    flat = FlatCghc.from_cache(mirror)
    n1 = flat.n1
    for kind, raw, aux in ops:
        # collide mode folds every tag onto L1 set 0: each access is an
        # L1 conflict, so the stream is pure exchange/miss traffic
        tag = raw * n1 if collide else raw
        l1_before, l2_before = cghc.l1_hits, cghc.l2_hits
        entry, ref_latency = cghc.ensure(tag)
        if cghc.l1_hits != l1_before:
            ref_level = 0
        elif cghc.l2_hits != l2_before:
            ref_level = 1
        else:
            ref_level = 2
        assert flat.ensure(tag) == (ref_latency, ref_level)
        s1 = tag % n1
        if kind == "record":
            entry.record_call(aux, cghc.max_slots)
            flat.record_call(s1, aux)
        elif kind == "reset":
            entry.reset_index()
            flat.reset_index(s1)
        elif kind == "predict":
            assert flat.predicted_next(s1) == entry.predicted_next()
        elif kind == "first":
            assert flat.first_callee(s1) == entry.first_callee()
        check_invariants(flat, cghc)
    # the arrays must write back to exactly the oracle's dict state, and
    # the counter deltas must fold in exactly once
    flat.write_back(mirror)
    assert level_image(mirror.l1) == level_image(cghc.l1)
    if mirror.l2 is not None:
        assert level_image(mirror.l2) == level_image(cghc.l2)
    assert (mirror.l1_hits, mirror.l2_hits, mirror.misses) == (
        cghc.l1_hits, cghc.l2_hits, cghc.misses)
    assert (flat.l1_hits, flat.l2_hits, flat.misses) == (0, 0, 0)


@FUZZ
@given(geometry=st.sampled_from(GEOMETRIES), ops=op_streams(),
       collide=st.booleans())
def test_flat_matches_dict_oracle(geometry, ops, collide):
    run_against_oracle(*geometry, ops, collide)


# ----------------------------------------------------------------------
# exchange invariants, pinned deterministically
# ----------------------------------------------------------------------

def test_exchange_preserves_entry_fields():
    """§5.3 exchange: the L2-hit entry's index and sequence move to L1
    intact, and the demoted victim keeps its fields in L2.  With one way
    per set, recency order reduces to residency level — the hit entry
    must be the L1 (MRU) resident afterwards."""
    cghc = build(1, 4, slots=4)
    mirror = build(1, 4, slots=4)
    flat = FlatCghc.from_cache(mirror)
    for c in (7, 8):  # history for tag 0
        cghc.ensure(0)[0].record_call(c, cghc.max_slots)
        flat.ensure(0)
        flat.record_call(0, c)
    cghc.ensure(1)[0].record_call(9, cghc.max_slots)  # demotes tag 0
    flat.ensure(1)
    flat.record_call(0, 9)
    cghc.ensure(0)  # L2 hit: exchange 0 up, 1 down
    latency, level = flat.ensure(0)
    assert level == 1
    assert flat.l1_tag[0] == 0
    assert flat.l1_idx[0] == 3
    assert flat.l1_seq[0:flat.l1_len[0]] == [7, 8]
    s2 = 1 % flat.n2
    assert flat.l2_tag[s2] == 1
    assert flat.l2_idx[s2] == 2
    assert flat.l2_seq[s2 * flat.slots:s2 * flat.slots + flat.l2_len[s2]] \
        == [9]
    check_invariants(flat, cghc)


def test_exchange_when_victim_aliases_hit_set():
    """The vacate-first case: the demoted L1 victim maps to the same L2
    set the hit entry occupied.  The hit entry must not be clobbered and
    no tag may end up resident twice."""
    cghc = build(1, 4, slots=4)
    mirror = build(1, 4, slots=4)
    flat = FlatCghc.from_cache(mirror)
    for tag in (0, 4, 0):  # 0 and 4 share L1 set 0 *and* L2 set 0
        cghc.ensure(tag)
        flat.ensure(tag)
    assert flat.l1_tag[0] == 0
    assert flat.l2_tag[0] == 4
    assert flat.entry_count() == 2
    check_invariants(flat, cghc)


def test_one_set_l2_exchange():
    """n2 == 1: every demotion lands where the hit came from."""
    cghc = build(1, 1, slots=2)
    mirror = build(1, 1, slots=2)
    flat = FlatCghc.from_cache(mirror)
    for tag in (0, 1, 2, 0, 1):
        l1_before, l2_before = cghc.l1_hits, cghc.l2_hits
        cghc.ensure(tag)
        if cghc.l1_hits != l1_before:
            want = 0
        elif cghc.l2_hits != l2_before:
            want = 1
        else:
            want = 2
        assert flat.ensure(tag)[1] == want
        check_invariants(flat, cghc)


# ----------------------------------------------------------------------
# round trip
# ----------------------------------------------------------------------

def test_round_trip_is_identity():
    """from_cache -> write_back with no accesses must be a no-op: same
    residency images, counters untouched."""
    cghc = build(2, 8, slots=4)
    for tag, callee in ((0, 3), (1, 4), (2, 5), (9, 6)):
        cghc.ensure(tag)[0].record_call(callee, cghc.max_slots)
    before = (level_image(cghc.l1), level_image(cghc.l2),
              cghc.l1_hits, cghc.l2_hits, cghc.misses)
    FlatCghc.from_cache(cghc).write_back(cghc)
    after = (level_image(cghc.l1), level_image(cghc.l2),
             cghc.l1_hits, cghc.l2_hits, cghc.misses)
    assert after == before


def test_from_cache_rejects_unsupported_shapes():
    with pytest.raises(ConfigError):
        FlatCghc.from_cache(
            CallGraphHistoryCache(CghcConfig(infinite=True)))
    with pytest.raises(ConfigError):
        FlatCghc.from_cache(CallGraphHistoryCache(
            CghcConfig(l1_bytes=4 * 40, l2_bytes=16 * 40, assoc=2)))


def test_live_flat_serves_mid_kernel_occupancy():
    """While a kernel holds the state flat it parks the image on the
    cache; ``entry_count`` (the interval sampler's occupancy read) must
    report the *live* arrays, not the stale dict buckets."""
    cghc = build(2, 8)
    cghc.ensure(0)
    cghc.ensure(1)
    flat = FlatCghc.from_cache(cghc)
    cghc._live_flat = flat
    try:
        flat.ensure(5)  # mutates only the arrays
        assert cghc.entry_count() == flat.entry_count() == 3
    finally:
        cghc._live_flat = None
    assert cghc.entry_count() == 2  # dict view again, still pre-writeback


# ----------------------------------------------------------------------
# compiled set tables
# ----------------------------------------------------------------------

def test_clear_compile_cache_drops_cghc_set_tables():
    """Layout swaps must never read stale compiled tables: tables are
    keyed per layout and rebuilt from the live layout after
    ``clear_compile_cache()``."""
    ident = build_layout("identity")
    scram = build_layout("scrambled")
    t_ident = _cghc_set_tables(ident, 4, 16)
    t_scram = _cghc_set_tables(scram, 4, 16)
    assert t_ident[0] == [line % 4 for line in ident.base_line]
    assert t_ident[1] == [line % 16 for line in ident.base_line]
    assert t_scram[0] == [line % 4 for line in scram.base_line]
    # equal geometry, different layouts: never shared
    assert t_ident is not t_scram
    # memoized per (layout, geometry)
    assert _cghc_set_tables(ident, 4, 16) is t_ident
    assert _cghc_set_tables(ident, 4, 0)[1] is None
    clear_compile_cache()
    assert len(_CGHC_SET_CACHE) == 0
    fresh = _cghc_set_tables(ident, 4, 16)
    assert fresh is not t_ident  # rebuilt, not served stale
    assert fresh[0] == t_ident[0] and fresh[1] == t_ident[1]
