"""CGP prefetcher mechanics against the paper's Create_rec walkthrough."""

import pytest

from repro.core.cgp import ORIGIN_CGHC, CgpPrefetcher
from repro.errors import ConfigError
from repro.instrument.codeimage import CodeImage
from repro.layout.layouts import AddressMap
from repro.uarch.config import CghcConfig
from repro.uarch.ras import RasEntry


class FakeEngine:
    """Records prefetch_function_head calls."""

    def __init__(self):
        self.head_prefetches = []  # (fid, n, origin, delay)
        self.line_prefetches = []

    def prefetch_function_head(self, fid, n_lines, origin, delay=0):
        self.head_prefetches.append((fid, n_lines, origin, delay))

    def issue_prefetch(self, line, origin, delay=0):
        self.line_prefetches.append((line, origin, delay))
        return True


def build_world(n_functions=8, size=160):
    image = CodeImage()
    for i in range(n_functions):
        image.register_synthetic(f"fn{i}", size)
    layout = AddressMap(
        image, range(n_functions), 1.0, 1.0, 1.0, "test"
    )
    cgp = CgpPrefetcher(4, CghcConfig(l1_bytes=64 * 40, l2_bytes=0), layout)
    return layout, cgp


# function ids for the paper's example
CREATE_REC = 0
FIND_PAGE = 1
GETPAGE = 2
LOCK_PAGE = 3
UPDATE_PAGE = 4
UNLOCK_PAGE = 5
INSERT_OP = 6  # some operator that calls Create_rec


def play_invocation(cgp, engine, layout, include_getpage):
    """One full Create_rec invocation as call/return events."""
    ras = []

    def call(caller, callee):
        ras.append(RasEntry(0, layout.entry_line(caller), caller))
        cgp.on_call(caller, callee, True, engine)

    def ret(returning):
        entry = ras.pop()
        cgp.on_return(returning, entry, True, engine)

    call(INSERT_OP, CREATE_REC)
    callees = [FIND_PAGE] + ([GETPAGE] if include_getpage else []) + [
        LOCK_PAGE, UPDATE_PAGE, UNLOCK_PAGE
    ]
    for callee in callees:
        call(CREATE_REC, callee)
        ret(callee)
    ret(CREATE_REC)


def test_first_invocation_trains_no_prefetches_for_create_rec():
    layout, cgp = build_world()
    engine = FakeEngine()
    play_invocation(cgp, engine, layout, include_getpage=False)
    cghc_prefetches = [
        p for p in engine.head_prefetches if p[2] == ORIGIN_CGHC
    ]
    # nothing known about Create_rec's callees on the first run
    assert cghc_prefetches == []


def test_second_invocation_prefetches_recorded_sequence():
    """§3.1: after training, entering Create_rec prefetches Find_page;
    each return prefetches the next recorded callee."""
    layout, cgp = build_world()
    train = FakeEngine()
    play_invocation(cgp, train, layout, include_getpage=False)
    engine = FakeEngine()
    play_invocation(cgp, engine, layout, include_getpage=False)
    targets = [p[0] for p in engine.head_prefetches if p[2] == ORIGIN_CGHC]
    # call prefetch on entering Create_rec: its first recorded callee;
    # return prefetches walk the rest of the sequence
    assert targets[0] == FIND_PAGE
    assert LOCK_PAGE in targets
    assert UPDATE_PAGE in targets
    assert UNLOCK_PAGE in targets
    # the sequence arrives in execution order
    assert targets.index(LOCK_PAGE) < targets.index(UPDATE_PAGE)
    assert targets.index(UPDATE_PAGE) < targets.index(UNLOCK_PAGE)


def test_history_is_last_invocation():
    """Training with Getpage_from_disk then re-running without it: the
    second replay predicts the *most recent* sequence."""
    layout, cgp = build_world()
    play_invocation(cgp, FakeEngine(), layout, include_getpage=True)
    play_invocation(cgp, FakeEngine(), layout, include_getpage=False)
    engine = FakeEngine()
    play_invocation(cgp, engine, layout, include_getpage=False)
    targets = [p[0] for p in engine.head_prefetches if p[2] == ORIGIN_CGHC]
    assert GETPAGE not in targets


def test_mispredicted_call_is_ignored():
    layout, cgp = build_world()
    engine = FakeEngine()
    cgp.on_call(INSERT_OP, CREATE_REC, False, engine)
    assert engine.head_prefetches == []
    # and the CGHC was not polluted either
    entry, _lat = cgp.cghc.lookup(layout.entry_line(INSERT_OP))
    assert entry is None


def test_return_without_ras_entry_skips_prefetch_but_resets_index():
    layout, cgp = build_world()
    engine = FakeEngine()
    cgp.on_call(INSERT_OP, CREATE_REC, True, engine)
    entry, _lat = cgp.cghc.lookup(layout.entry_line(INSERT_OP))
    assert entry.index == 2
    cgp.on_return(INSERT_OP, None, True, engine)
    assert entry.index == 1
    cghc_prefetches = [p for p in engine.head_prefetches if p[2] == ORIGIN_CGHC]
    assert cghc_prefetches == []


def test_call_update_records_in_caller_entry():
    layout, cgp = build_world()
    engine = FakeEngine()
    cgp.on_call(CREATE_REC, FIND_PAGE, True, engine)
    entry, _lat = cgp.cghc.lookup(layout.entry_line(CREATE_REC))
    assert entry is not None
    assert entry.seq == [FIND_PAGE]
    assert entry.index == 2


def test_call_prefetch_uses_callee_first_slot():
    layout, cgp = build_world()
    engine = FakeEngine()
    # teach: Find_page calls some helper (fid 7)
    cgp.on_call(FIND_PAGE, 7, True, engine)
    # now Create_rec calls Find_page: CGP should prefetch fid 7
    engine2 = FakeEngine()
    cgp.on_call(CREATE_REC, FIND_PAGE, True, engine2)
    cghc = [p for p in engine2.head_prefetches if p[2] == ORIGIN_CGHC]
    assert cghc and cghc[0][0] == 7


def test_untracked_caller_skips_update():
    layout, cgp = build_world()
    engine = FakeEngine()
    cgp.on_call(-1, CREATE_REC, True, engine)
    # the prefetch access allocates an (invalid-data) entry for the
    # callee per §3.2, but no caller update happens and nothing is
    # prefetched
    assert cgp.cghc.entry_count() == 1
    entry, _lat = cgp.cghc.lookup(layout.entry_line(CREATE_REC))
    assert entry.seq == []
    assert engine.head_prefetches == []


def test_prefetch_delay_includes_cghc_latency():
    layout, cgp = build_world()
    play_invocation(cgp, FakeEngine(), layout, include_getpage=False)
    engine = FakeEngine()
    play_invocation(cgp, engine, layout, include_getpage=False)
    delays = [p[3] for p in engine.head_prefetches if p[2] == ORIGIN_CGHC]
    assert all(delay >= cgp.cghc.config.l1_latency + 1 for delay in delays)


def test_reset_clears_history():
    layout, cgp = build_world()
    play_invocation(cgp, FakeEngine(), layout, include_getpage=False)
    cgp.reset()
    engine = FakeEngine()
    play_invocation(cgp, engine, layout, include_getpage=False)
    assert [p for p in engine.head_prefetches if p[2] == ORIGIN_CGHC] == []


def test_n_must_be_positive():
    layout, _cgp = build_world()
    with pytest.raises(ConfigError):
        CgpPrefetcher(0, CghcConfig(), layout)


def test_nl_component_forwards_line_accesses():
    layout, cgp = build_world()
    engine = FakeEngine()
    cgp.on_line_access(100, engine)
    lines = [line for line, origin, _d in engine.line_prefetches]
    assert lines == [101, 102, 103, 104]
    assert all(origin == "nl" for _l, origin, _d in engine.line_prefetches)
