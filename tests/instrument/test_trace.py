"""Trace container: events, counting, persistence, validation."""

import pytest

from repro.errors import TraceError
from repro.instrument.codeimage import CodeImage
from repro.instrument.trace import CALL, EXEC, RET, Trace, validate_trace


def image_with(sizes):
    image = CodeImage()
    for i, size in enumerate(sizes):
        image.register_synthetic(f"f{i}", size)
    return image


def test_event_building_and_iteration():
    trace = Trace()
    trace.add_call(1, 0, 5)
    trace.add_exec(1, 0, 9)
    trace.add_return(1, 0, 9)
    events = list(trace.events())
    assert events == [(CALL, 1, 0, 5), (EXEC, 1, 0, 9), (RET, 1, 0, 9)]
    assert len(trace) == 3


def test_counts_by_kind():
    trace = Trace()
    trace.add_exec(0, 0, 1)
    trace.add_exec(0, 1, 2)
    trace.add_call(1, 0, 1)
    trace.add_return(1, 0, 0)
    trace.add_switch(2)
    counts = trace.counts()
    assert counts == {"EXEC": 2, "CALL": 1, "RET": 1, "SWITCH": 1}


def test_total_instructions():
    trace = Trace()
    trace.add_exec(0, 0, 9)  # 10 instructions
    trace.add_call(1, 0, 9)  # overhead 2
    trace.add_exec(1, 5, 0)  # backwards: still 6 instructions
    trace.add_return(1, 0, 0)  # overhead 2
    assert trace.total_instructions(call_overhead=2) == 10 + 2 + 6 + 2
    assert trace.call_count() == 1


def test_extend_concatenates():
    a = Trace()
    a.add_exec(0, 0, 1)
    b = Trace()
    b.add_exec(1, 0, 1)
    a.extend(b)
    assert len(a) == 2
    assert list(a.a) == [0, 1]


def test_save_load_roundtrip(tmp_path):
    trace = Trace()
    trace.add_call(1, 0, 3)
    trace.add_exec(1, 0, 20)
    trace.add_return(1, 0, 20)
    path = tmp_path / "trace.pickle"
    trace.save(path)
    loaded = Trace.load(path)
    assert list(loaded.events()) == list(trace.events())


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.pickle"
    import pickle

    path.write_bytes(pickle.dumps({"kinds": [0], "a": []}))
    with pytest.raises(TraceError):
        Trace.load(path)


def test_save_load_empty_trace(tmp_path):
    path = tmp_path / "empty.trace"
    Trace().save(path)
    loaded = Trace.load(path)
    assert len(loaded) == 0
    assert list(loaded.events()) == []


def test_load_rejects_future_format_version(tmp_path):
    from repro.instrument.trace import TRACE_FORMAT_VERSION

    trace = Trace()
    trace.add_exec(0, 0, 5)
    path = tmp_path / "future.trace"
    trace.save(path)
    blob = bytearray(path.read_bytes())
    # u16 version sits right after the 4-byte magic (little endian)
    blob[4:6] = (TRACE_FORMAT_VERSION + 1).to_bytes(2, "little")
    path.write_bytes(bytes(blob))
    with pytest.raises(TraceError, match="format version"):
        Trace.load(path)


def test_load_rejects_corrupt_payload(tmp_path):
    trace = Trace()
    trace.add_call(1, 0, 3)
    trace.add_exec(1, 0, 20)
    path = tmp_path / "corrupt.trace"
    trace.save(path)
    blob = bytearray(path.read_bytes())
    blob[20] ^= 0xFF  # flip one payload byte; header stays valid
    path.write_bytes(bytes(blob))
    with pytest.raises(TraceError, match="checksum"):
        Trace.load(path)


def test_load_rejects_truncated_file(tmp_path):
    trace = Trace()
    trace.add_exec(0, 0, 9)
    trace.add_exec(0, 10, 19)
    path = tmp_path / "cut.trace"
    trace.save(path)
    blob = path.read_bytes()
    path.write_bytes(blob[:-7])
    with pytest.raises(TraceError, match="truncated"):
        Trace.load(path)


def test_counters_stay_correct_across_appends():
    """counts()/call_count()/total_instructions() are O(1) amortized:
    they must refresh correctly when events are appended after a read."""
    trace = Trace()
    trace.add_exec(0, 0, 9)
    assert trace.counts()["EXEC"] == 1
    assert trace.total_instructions(call_overhead=2) == 10
    trace.add_call(1, 0, 9)
    trace.add_exec(1, 0, 4)
    trace.add_return(1, 0, 4)
    assert trace.counts() == {"EXEC": 2, "CALL": 1, "RET": 1, "SWITCH": 0}
    assert trace.call_count() == 1
    assert trace.total_instructions(call_overhead=2) == 10 + 2 + 5 + 2


def test_validate_balanced_trace():
    image = image_with([32, 32])
    trace = Trace()
    trace.add_exec(0, 0, 10)
    trace.add_call(1, 0, 10)
    trace.add_exec(1, 0, 31)
    trace.add_return(1, 0, 31)
    trace.add_exec(0, 10, 20)
    assert validate_trace(trace, image) == 1


def test_validate_detects_underflow():
    image = image_with([32])
    trace = Trace()
    trace.add_return(0, -1, 0)
    with pytest.raises(TraceError):
        validate_trace(trace, image)


def test_validate_detects_bad_offsets():
    image = image_with([8])
    trace = Trace()
    trace.add_exec(0, 0, 99)
    with pytest.raises(TraceError):
        validate_trace(trace, image)


def test_validate_reports_max_depth():
    image = image_with([32, 32, 32])
    trace = Trace()
    trace.add_call(0, -1, 0)
    trace.add_call(1, 0, 0)
    trace.add_call(2, 1, 0)
    trace.add_return(2, 1, 0)
    trace.add_return(1, 0, 0)
    trace.add_return(0, -1, 0)
    assert validate_trace(trace, image) == 3
