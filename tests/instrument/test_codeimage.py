"""Code image: registration, sizes, offsets, freezing."""

import pytest

from repro.errors import TraceError
from repro.instrument.codeimage import (
    CodeImage,
    build_db_image,
    freeze_image,
)


def sample_function(x):
    total = 0
    for i in range(x):
        total += i
    return total


class SampleClass:
    def method(self):
        return 1

    @staticmethod
    def static_method():
        return 2

    @property
    def prop(self):
        return 3


def test_register_code_assigns_ids_and_sizes():
    image = CodeImage()
    info = image.register_code(sample_function.__code__)
    assert info.fid == 0
    assert info.size_instrs >= 8
    assert image.fid_of(sample_function.__code__) == 0


def test_register_code_idempotent():
    image = CodeImage()
    a = image.register_code(sample_function.__code__)
    b = image.register_code(sample_function.__code__)
    assert a is b
    assert image.function_count == 1


def test_register_module_covers_methods():
    import tests.instrument.test_codeimage as this_module

    image = CodeImage()
    image.register_module(this_module)
    assert image.fid_of(sample_function.__code__) is not None
    assert image.fid_of(SampleClass.method.__code__) is not None
    assert image.fid_of(SampleClass.static_method.__code__) is not None
    assert image.fid_of(SampleClass.prop.fget.__code__) is not None


def test_untracked_code_returns_none():
    image = CodeImage()
    assert image.fid_of(sample_function.__code__) is None


def test_offset_conversion_clamped():
    image = CodeImage(instrs_per_pyop=3)
    info = image.register_code(sample_function.__code__)
    assert image.offset_instr(info.fid, 0) == 0
    assert image.offset_instr(info.fid, -2) == 0
    huge = image.offset_instr(info.fid, 10_000)
    assert huge == info.size_instrs - 1


def test_instrs_per_pyop_scales_sizes():
    small = CodeImage(instrs_per_pyop=1)
    large = CodeImage(instrs_per_pyop=8)
    a = small.register_code(sample_function.__code__)
    b = large.register_code(sample_function.__code__)
    assert b.size_instrs > a.size_instrs


def test_db_image_covers_all_layers():
    image = build_db_image()
    assert image.function_count > 300
    names = {image.name_of(fid) for fid in range(image.function_count)}
    # the paper's Figure 2 entry points must be present by name
    assert any("create_rec" in n for n in names)
    assert any("find_page_in_buffer_pool" in n for n in names)
    assert any("getpage_from_disk" in n for n in names)
    assert any("lock_page" in n for n in names)
    assert any("update_page" in n for n in names)
    assert any("unlock_page" in n for n in names)


def test_fid_by_name():
    image = build_db_image()
    fid = image.fid_by_name("BufferPool.getpage_from_disk")
    assert "getpage_from_disk" in image.name_of(fid)
    with pytest.raises(TraceError):
        image.fid_by_name("no_such_function_anywhere")


def test_register_synthetic():
    image = CodeImage()
    info = image.register_synthetic("rt::helper", 40)
    again = image.register_synthetic("rt::helper", 40)
    assert info is again
    assert info.size_instrs == 40
    assert info.code is None


def test_unknown_fid_raises():
    image = CodeImage()
    with pytest.raises(TraceError):
        image.info(3)


def test_freeze_image_roundtrips_through_pickle():
    import pickle

    image = CodeImage()
    image.register_code(sample_function.__code__)
    image.register_synthetic("rt::x", 24)
    frozen = freeze_image(image)
    clone = pickle.loads(pickle.dumps(frozen))
    assert clone.function_count == image.function_count
    for fid in range(image.function_count):
        assert clone.name_of(fid) == image.name_of(fid)
        assert clone.info(fid).size_instrs == image.info(fid).size_instrs
